//! Connections carrying framed messages.
//!
//! Three client transports implement [`Connection`]:
//!
//! - [`InMemoryConnection`] — frames and marshals like a network
//!   transport but dispatches synchronously (marshalling cost without
//!   socket noise);
//! - [`TcpConnection`] — a serial socket: one in-flight request at a
//!   time, the stream lock held across the write/read exchange;
//! - [`MultiplexedConnection`] — a shared socket driven by the
//!   process-wide [`reactor`](crate::reactor): writers queue frames on
//!   the reactor's per-connection write state machine, the reactor
//!   demultiplexes replies to per-request waiter slots by GIOP request
//!   id and unparks exactly the waiting thread, so N threads pipeline
//!   calls over one connection without a reader thread per socket.
//!
//! Per-call deadlines arrive via [`CallOptions`]: the serial transport
//! maps them onto socket read timeouts scoped to the call, the
//! multiplexed transport onto reactor deadline-wheel entries — per-call
//! state, never a mutation of the shared socket, so concurrent calls
//! cannot observe each other's timeouts.
//!
//! [`TcpServer`] defaults to the same reactor architecture: an
//! acceptor thread registers sockets with a per-server reactor, frames
//! pass admission control into a bounded dispatch queue, and a fixed
//! worker pool sends replies back through the reactor. The legacy
//! thread-per-connection engine remains available via
//! [`ServerConfig::thread_per_connection`] as the scaling baseline.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mockingbird_values::Endian;
use mockingbird_wire::{
    CdrWriter, HandshakeInfo, HandshakeVerdict, Message, MessageKind, ReplyStatus, RequestIds,
    WireDeadline,
};

use mockingbird_artifact::ArtifactStore;

use crate::artifacts::artifact_fetch_reply;
use crate::budget::RetryBudget;
use crate::dispatch::{deadline_expired_reply, Dispatcher};
use crate::error::RuntimeError;
use crate::limiter::{Admission, AimdLimiter};
use crate::metrics::MetricsRegistry;
use crate::options::CallOptions;
use crate::reactor::{
    client_reactor, spawn_reactor, Command, MuxCore, ReactorHandle, ServerCtx, ServerJob, Slot,
};
use crate::sync::{cv_wait, LockExt};

/// How long a client waits for the peer's half of the connect-time
/// handshake before declaring the connection broken.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// The client's half of the connect-time handshake: sends our
/// [`HandshakeInfo`] as a `Hello` proposal and interprets the peer's
/// verdict. Returns whether fused wire programs are allowed on this
/// connection (`false`: the peers' marshal rules disagree, so both
/// sides fall back to the interpretive path while the nominal types
/// still line up).
///
/// Runs serially on the raw (still-blocking) stream *before* the
/// reactor adopts it, so no request can cross a connection whose
/// declarations were never checked.
fn client_handshake(
    stream: &mut TcpStream,
    info: &HandshakeInfo,
    metrics: &MetricsRegistry,
) -> Result<bool, RuntimeError> {
    metrics.add_handshake();
    let hello = Message::hello(*info, HandshakeVerdict::Propose, Endian::Little);
    write_frame(stream, &hello, metrics)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).ok();
    let outcome = read_frame(stream, metrics);
    stream.set_read_timeout(None).ok();
    let reply = outcome?
        .ok_or_else(|| RuntimeError::Transport("connection closed during the handshake".into()))?;
    let MessageKind::Hello {
        info: peer,
        verdict,
    } = reply.kind
    else {
        return Err(RuntimeError::Protocol(
            "expected a Hello reply to the handshake".into(),
        ));
    };
    match verdict {
        HandshakeVerdict::Accept => Ok(true),
        HandshakeVerdict::InterpretiveOnly => {
            metrics.add_handshake_fallback();
            Ok(false)
        }
        HandshakeVerdict::Reject => {
            metrics.add_handshake_reject();
            Err(RuntimeError::VersionSkew(format!(
                "peer speaks protocol {} with interface fingerprint {:032x}; \
                 we speak protocol {} with {:032x}",
                peer.protocol, peer.interface_fp, info.protocol, info.interface_fp
            )))
        }
        HandshakeVerdict::Propose => Err(RuntimeError::Protocol(
            "peer answered the handshake with a proposal".into(),
        )),
    }
}

/// A client-side connection: sends a framed message, returning the reply
/// frame (or `None` for oneway requests).
pub trait Connection: Send + Sync {
    /// Performs one request/response exchange.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] on connection failures.
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError>;

    /// Performs one exchange under per-call options (deadline, retry
    /// hints). Transports without timeout machinery ignore the options.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Timeout`] when the deadline elapses and
    /// [`RuntimeError::Transport`] on connection failures.
    fn call_with(
        &self,
        msg: &Message,
        options: &CallOptions,
    ) -> Result<Option<Message>, RuntimeError> {
        let _ = options;
        self.call(msg)
    }

    /// Whether the connection is still usable. Pools drop unhealthy
    /// connections and reconnect; the default is always-healthy for
    /// transports without liveness tracking.
    fn healthy(&self) -> bool {
        true
    }

    /// Whether fused wire programs may be used over this connection.
    /// The connect-time handshake clears this when the peers' program
    /// caches disagree (rules fingerprint mismatch), forcing the
    /// interpretive marshal path while the nominal types still agree.
    fn fused_allowed(&self) -> bool {
        true
    }

    /// The metrics registry this connection records into, when it has
    /// one. Proxies built over the connection adopt it so client-side
    /// histograms and transport counters land in the same place.
    fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        None
    }

    /// Whether a failed call may be recoverable by *re-routing*: true
    /// only for connections that sit on a dynamic endpoint set (a
    /// resolver-fed [`ConnectionPool`](crate::pool::ConnectionPool)),
    /// where another replica can serve the same object. A
    /// [`RemoteRef`](crate::proxy::RemoteRef) over such a connection
    /// treats connect-time failures like `VersionSkew` as failover
    /// triggers instead of hard errors. Single-socket transports keep
    /// the default: there is nowhere else to go.
    fn supports_failover(&self) -> bool {
        false
    }

    /// The retry budget gating re-sends over this connection, when it
    /// has one. Budgets are a *pool-level* control (they bound the
    /// aggregate retry amplification of many callers sharing the
    /// endpoint set), so single-socket transports keep the default:
    /// their callers retry ungated, as before.
    fn retry_budget(&self) -> Option<Arc<RetryBudget>> {
        None
    }
}

/// An in-process loopback connection: frames and marshals exactly like a
/// network transport but dispatches synchronously, isolating marshalling
/// cost from socket cost (used by the §6 overhead benches).
#[derive(Clone)]
pub struct InMemoryConnection {
    dispatcher: Arc<Dispatcher>,
}

impl InMemoryConnection {
    /// Connects to a dispatcher.
    pub fn new(dispatcher: Arc<Dispatcher>) -> Self {
        InMemoryConnection { dispatcher }
    }
}

impl Connection for InMemoryConnection {
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
        // Serialise and reparse: the bytes really cross a boundary.
        let bytes = msg.to_bytes();
        let parsed =
            Message::from_bytes(&bytes).map_err(|e| RuntimeError::Protocol(e.to_string()))?;
        match self.dispatcher.dispatch(&parsed) {
            Some(reply) => {
                let reply_bytes = reply.to_bytes();
                Ok(Some(
                    Message::from_bytes(&reply_bytes)
                        .map_err(|e| RuntimeError::Protocol(e.to_string()))?,
                ))
            }
            None => Ok(None),
        }
    }

    fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        // The loopback has no transport of its own: client and server
        // share the dispatcher's registry (its counters see both sides).
        Some(Arc::clone(self.dispatcher.metrics()))
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Consecutive read timeouts tolerated once a frame has started before
/// the stream is declared broken: bounds how long a stalled peer can
/// pin a reader that is polling with a short timeout.
const MID_FRAME_PATIENCE: u32 = 40;

/// Reads one frame from a blocking stream (serial transport, handshake,
/// and the thread-per-connection server baseline; the reactor paths use
/// [`crate::reactor::FrameReader`] instead).
pub(crate) fn read_frame(
    stream: &mut TcpStream,
    metrics: &MetricsRegistry,
) -> Result<Option<Message>, RuntimeError> {
    let mut header = [0u8; 12];
    let mut filled = 0usize;
    let mut stalls = 0u32;
    while filled < 12 {
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None), // clean EOF
            Ok(0) => {
                return Err(RuntimeError::Transport(
                    "connection closed mid-frame".into(),
                ))
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if is_timeout(&e) && filled == 0 => {
                return Err(RuntimeError::Timeout(
                    "no frame within the read timeout".into(),
                ))
            }
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MID_FRAME_PATIENCE {
                    return Err(RuntimeError::Transport("read stalled mid-frame".into()));
                }
            }
            Err(e) => return Err(RuntimeError::Transport(e.to_string())),
        }
    }
    // frame_len enforces the MAX_FRAME_LEN cap, so a forged length
    // header is rejected here, before the buffer below is allocated.
    let total = Message::frame_len(&header).map_err(|e| RuntimeError::Protocol(e.to_string()))?;
    let mut buf = vec![0u8; total];
    buf[..12].copy_from_slice(&header);
    let mut filled = 12usize;
    while filled < total {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(RuntimeError::Transport(
                    "connection closed mid-frame".into(),
                ))
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MID_FRAME_PATIENCE {
                    return Err(RuntimeError::Transport("read stalled mid-frame".into()));
                }
            }
            Err(e) => return Err(RuntimeError::Transport(e.to_string())),
        }
    }
    metrics.add_bytes_received(total as u64);
    Message::from_bytes(&buf)
        .map(Some)
        .map_err(|e| RuntimeError::Protocol(e.to_string()))
}

pub(crate) fn write_frame(
    stream: &mut TcpStream,
    msg: &Message,
    metrics: &MetricsRegistry,
) -> Result<(), RuntimeError> {
    write_frame_restamped(stream, msg, None, metrics)
}

/// [`write_frame`] with the deadline slot re-stamped at encode time
/// (see [`Message::write_to_restamped`]).
fn write_frame_restamped(
    stream: &mut TcpStream,
    msg: &Message,
    restamp: Option<WireDeadline>,
    metrics: &MetricsRegistry,
) -> Result<(), RuntimeError> {
    // The preamble+header go into a per-thread scratch buffer and the
    // body is written from its own storage (vectored), so no thread
    // allocates frame memory after its first send.
    thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|s| {
        let mut scratch = s.borrow_mut();
        msg.write_to_restamped(stream, &mut scratch, restamp)
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        metrics.add_bytes_sent((scratch.len() + msg.body.len()) as u64);
        Ok(())
    })
}

/// A serial TCP client connection: one in-flight request at a time, the
/// stream lock held across the whole exchange (the GIOP request id
/// correlates replies).
pub struct TcpConnection {
    stream: Mutex<TcpStream>,
    fused: bool,
    metrics: Arc<MetricsRegistry>,
}

impl TcpConnection {
    /// Connects to a [`TcpServer`] without a handshake (the peers trust
    /// each other's declarations — in-process tests, mostly).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the connect fails.
    pub fn connect(addr: SocketAddr) -> Result<Self, RuntimeError> {
        Self::connect_with(addr, None)
    }

    /// Connects to a [`TcpServer`], performing the fingerprint handshake
    /// when `handshake` is given. Records into a fresh registry; use
    /// [`connect_with_metrics`](Self::connect_with_metrics) to share one.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the connect fails and
    /// [`RuntimeError::VersionSkew`] if the peer's declarations do not
    /// match ours.
    pub fn connect_with(
        addr: SocketAddr,
        handshake: Option<&HandshakeInfo>,
    ) -> Result<Self, RuntimeError> {
        Self::connect_with_metrics(addr, handshake, MetricsRegistry::shared())
    }

    /// Connects, recording transport counters into `metrics`.
    ///
    /// # Errors
    ///
    /// As [`connect_with`](Self::connect_with).
    pub fn connect_with_metrics(
        addr: SocketAddr,
        handshake: Option<&HandshakeInfo>,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<Self, RuntimeError> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| RuntimeError::Transport(e.to_string()))?;
        stream.set_nodelay(true).ok();
        let fused = match handshake {
            Some(info) => client_handshake(&mut stream, info, &metrics)?,
            None => true,
        };
        Ok(TcpConnection {
            stream: Mutex::new(stream),
            fused,
            metrics,
        })
    }
}

/// Stale replies (left over from calls a previous exchange abandoned on
/// timeout) a serial connection will skip before giving up on finding
/// its own.
const STALE_REPLY_PATIENCE: u32 = 32;

impl Connection for TcpConnection {
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
        self.call_with(msg, &CallOptions::default())
    }

    fn call_with(
        &self,
        msg: &Message,
        options: &CallOptions,
    ) -> Result<Option<Message>, RuntimeError> {
        let queued_at = Instant::now();
        let mut stream = self.stream.plock();
        // Time spent waiting for the shared stream (another caller's
        // exchange, an injected delay upstream) already came out of the
        // caller's budget; re-stamp the deadline slot at the actual
        // send instant so the server's view of the remaining time never
        // drifts past the caller's. A budget that died in the wait is
        // refused here without wasting the server's time at all.
        let restamp = match msg.deadline.and_then(|d| d.budget()) {
            Some(budget) => {
                let remaining = budget.saturating_sub(queued_at.elapsed());
                if remaining.is_zero() {
                    return Err(RuntimeError::DeadlineExpired(
                        "budget spent waiting for the connection".into(),
                    ));
                }
                Some(WireDeadline::new(
                    remaining,
                    msg.deadline.is_some_and(|d| d.sheddable),
                ))
            }
            None => None,
        };
        write_frame_restamped(&mut stream, msg, restamp, &self.metrics)?;
        let MessageKind::Request {
            request_id: caller_id,
            response_expected,
            ..
        } = msg.kind
        else {
            return Ok(None);
        };
        if !response_expected {
            return Ok(None);
        }
        // The deadline becomes a socket read timeout scoped to this
        // exchange. Every call sets its own value (including `None`),
        // so no call can inherit the previous caller's deadline.
        stream
            .set_read_timeout(options.deadline.map(|d| d.max(Duration::from_millis(1))))
            .ok();
        let mut stale = 0u32;
        let outcome = loop {
            match read_frame(&mut stream, &self.metrics) {
                Ok(Some(reply)) => {
                    // A reply whose id does not match this exchange is
                    // a leftover from a call that timed out earlier on
                    // this socket: drop it and keep reading, instead of
                    // handing the wrong payload to this caller.
                    match reply.kind {
                        MessageKind::Reply { request_id, .. } if request_id != caller_id => {
                            stale += 1;
                            if stale > STALE_REPLY_PATIENCE {
                                break Err(RuntimeError::Protocol(
                                    "flooded with unmatched replies".into(),
                                ));
                            }
                        }
                        _ => break Ok(Some(reply)),
                    }
                }
                other => break other,
            }
        };
        stream.set_read_timeout(None).ok();
        match outcome {
            Ok(Some(reply)) => Ok(Some(reply)),
            Ok(None) => Err(RuntimeError::Transport(
                "server closed the connection".into(),
            )),
            Err(RuntimeError::Timeout(_)) => {
                self.metrics.add_timeout();
                Err(RuntimeError::Timeout(format!(
                    "no reply within {:?}",
                    options.deadline.unwrap_or_default()
                )))
            }
            Err(e) => Err(e),
        }
    }

    fn fused_allowed(&self) -> bool {
        self.fused
    }

    fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        Some(Arc::clone(&self.metrics))
    }
}

/// How long a parked waiter sleeps between slot re-checks when no
/// unpark arrives. A backstop only: replies, failures, and deadline
/// expiries all unpark the exact waiter immediately.
const WAITER_BACKSTOP: Duration = Duration::from_millis(50);

/// Extra slack past a call's deadline before the waiter concludes the
/// reactor's deadline wheel is not coming and times the call out
/// locally (defence against a wedged reactor thread).
const TIMEOUT_GRACE: Duration = Duration::from_millis(250);

/// A multiplexed TCP client connection: many threads share one socket.
///
/// The process-wide reactor owns the socket. Callers stamp each request
/// with a connection-unique id, register a waiter slot, hand the
/// encoded frame to the reactor, and park; the reactor's read state
/// machine demultiplexes replies back to slots and unparks exactly the
/// owning thread. The caller's own request id is restored on the
/// reply, so [`RemoteRef`](crate::proxy::RemoteRef)'s correlation check
/// is oblivious to the rewrite.
///
/// Deadlines are entries on the reactor's deadline wheel — per-call
/// state, never socket state: one slow call cannot stall the others,
/// concurrent calls cannot observe each other's timeouts, and a reply
/// that arrives after its waiter gave up is dropped.
///
/// Connection death is broadcast synchronously: the reactor fails every
/// registered waiter under the same lock new waiters register under,
/// so no call can slip into the gap between a write failure and the
/// failure broadcast and hang.
pub struct MultiplexedConnection {
    reactor: ReactorHandle,
    conn_id: u64,
    core: Arc<MuxCore>,
    ids: RequestIds,
    closed: AtomicBool,
    fused: bool,
    metrics: Arc<MetricsRegistry>,
}

impl MultiplexedConnection {
    /// Connects to a [`TcpServer`] without a handshake and registers
    /// the socket with the process-wide reactor.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the connect fails.
    pub fn connect(addr: SocketAddr) -> Result<Self, RuntimeError> {
        Self::connect_with(addr, None)
    }

    /// Connects to a [`TcpServer`], performing the fingerprint handshake
    /// when `handshake` is given — serially, on the still-blocking
    /// stream, before the reactor adopts it.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the connect fails and
    /// [`RuntimeError::VersionSkew`] if the peer's declarations do not
    /// match ours.
    pub fn connect_with(
        addr: SocketAddr,
        handshake: Option<&HandshakeInfo>,
    ) -> Result<Self, RuntimeError> {
        Self::connect_with_metrics(addr, handshake, MetricsRegistry::shared())
    }

    /// Connects, recording transport counters into `metrics` (pools use
    /// this so every slot of an endpoint shares the pool's registry).
    ///
    /// # Errors
    ///
    /// As [`connect_with`](Self::connect_with).
    pub fn connect_with_metrics(
        addr: SocketAddr,
        handshake: Option<&HandshakeInfo>,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<Self, RuntimeError> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| RuntimeError::Transport(e.to_string()))?;
        stream.set_nodelay(true).ok();
        let fused = match handshake {
            Some(info) => client_handshake(&mut stream, info, &metrics)?,
            None => true,
        };
        let reactor = client_reactor().clone();
        let conn_id = reactor.alloc_id();
        let core = Arc::new(MuxCore::new());
        reactor.send(Command::RegisterClient {
            id: conn_id,
            stream,
            core: Arc::clone(&core),
            metrics: Arc::clone(&metrics),
        })?;
        Ok(MultiplexedConnection {
            reactor,
            conn_id,
            core,
            ids: RequestIds::new(),
            closed: AtomicBool::new(false),
            fused,
            metrics,
        })
    }

    /// Whether the underlying stream is still usable (pools drop dead
    /// connections and reconnect lazily).
    pub fn is_alive(&self) -> bool {
        !self.closed.load(Ordering::SeqCst) && self.core.state.plock().dead.is_none()
    }

    /// Removes a waiter slot this caller registered but can no longer
    /// wait on.
    fn abandon(&self, wire_id: u32) {
        let mut st = self.core.state.plock();
        if st.pending.remove(&wire_id).is_some() {
            self.core.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn local_timeout(&self, deadline: Option<Duration>) -> RuntimeError {
        self.metrics.add_timeout();
        RuntimeError::Timeout(format!(
            "no reply within {:?}",
            deadline.unwrap_or_default()
        ))
    }
}

fn with_request_id(msg: &Message, id: u32) -> Message {
    let mut m = msg.clone();
    match &mut m.kind {
        MessageKind::Request { request_id, .. }
        | MessageKind::Reply { request_id, .. }
        | MessageKind::Artifact { request_id, .. } => {
            *request_id = id;
        }
        // Handshake frames are exchanged before multiplexing starts and
        // carry no request id.
        MessageKind::Hello { .. } => {}
    }
    m
}

impl Connection for MultiplexedConnection {
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
        self.call_with(msg, &CallOptions::default())
    }

    fn call_with(
        &self,
        msg: &Message,
        options: &CallOptions,
    ) -> Result<Option<Message>, RuntimeError> {
        let MessageKind::Request {
            request_id: caller_id,
            response_expected,
            ..
        } = msg.kind
        else {
            return Err(RuntimeError::Protocol(
                "clients send Request messages".into(),
            ));
        };

        // Rewrite to a connection-unique id: several RemoteRefs (each
        // with its own id counter) may share this socket.
        let wire_id = self.ids.next();
        let rewritten = with_request_id(msg, wire_id);
        let frame = rewritten.to_bytes();

        // Register the waiter *before* the frame is submitted: if the
        // connection dies at any point after this, fail_all resolves
        // this slot under the registration lock — no gap to hang in.
        {
            let mut st = self.core.state.plock();
            if let Some(e) = &st.dead {
                return Err(e.clone());
            }
            if response_expected {
                st.pending
                    .insert(wire_id, Slot::Waiting(std::thread::current()));
                self.core.in_flight.fetch_add(1, Ordering::SeqCst);
            }
        }

        let deadline = options.deadline.map(|d| (wire_id, Instant::now() + d));
        if let Err(e) = self.reactor.send(Command::Submit {
            conn: self.conn_id,
            frame,
            deadline,
        }) {
            if response_expected {
                self.abandon(wire_id);
            }
            return Err(e);
        }
        if !response_expected {
            return Ok(None);
        }

        // Park until the reactor resolves the slot: reply, connection
        // failure, or deadline-wheel expiry. The grace check below is
        // a local backstop in case the reactor itself is wedged.
        let grace = options.deadline.map(|d| Instant::now() + d + TIMEOUT_GRACE);
        loop {
            {
                let mut st = self.core.state.plock();
                match st.pending.get(&wire_id) {
                    Some(Slot::Waiting(_)) => {}
                    Some(_) => {
                        let slot = st.pending.remove(&wire_id);
                        self.core.in_flight.fetch_sub(1, Ordering::SeqCst);
                        drop(st);
                        return match slot {
                            Some(Slot::Ready(reply)) => {
                                Ok(Some(with_request_id(&reply, caller_id)))
                            }
                            Some(Slot::Failed(RuntimeError::Timeout(_))) => {
                                Err(self.local_timeout(options.deadline))
                            }
                            Some(Slot::Failed(e)) => Err(e),
                            _ => Err(RuntimeError::Protocol("waiter slot vanished".into())),
                        };
                    }
                    None => {
                        return Err(RuntimeError::Protocol("waiter slot vanished".into()));
                    }
                }
            }
            std::thread::park_timeout(WAITER_BACKSTOP);
            if let Some(g) = grace {
                if Instant::now() >= g {
                    let mut st = self.core.state.plock();
                    if matches!(st.pending.get(&wire_id), Some(Slot::Waiting(_))) {
                        st.pending.remove(&wire_id);
                        self.core.in_flight.fetch_sub(1, Ordering::SeqCst);
                        drop(st);
                        return Err(self.local_timeout(options.deadline));
                    }
                }
            }
        }
    }

    fn healthy(&self) -> bool {
        self.is_alive()
    }

    fn fused_allowed(&self) -> bool {
        self.fused
    }

    fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        Some(Arc::clone(&self.metrics))
    }
}

impl Drop for MultiplexedConnection {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::SeqCst);
        // The reactor prunes the slot and closes the socket; no thread
        // to join — churn leaves the process thread count flat.
        let _ = self.reactor.send(Command::Close { conn: self.conn_id });
    }
}

/// How often per-connection server threads wake to notice shutdown
/// (thread-per-connection engine only).
const SERVER_POLL: Duration = Duration::from_millis(50);

/// Default dispatch worker count: how many requests make progress
/// concurrently. Multiplexed clients pipeline in-flight requests;
/// without concurrent dispatch they would serialise behind each
/// other's service time.
const DISPATCH_WORKERS: usize = 4;

/// Server-side tuning: handshake policy, overload limits, and engine
/// selection.
#[derive(Clone)]
pub struct ServerConfig {
    /// The server's side of the fingerprint handshake. `None` accepts
    /// every `Hello` by echoing the client's own info (permissive mode
    /// for peers that trust their build system).
    pub handshake: Option<HandshakeInfo>,
    /// Frames one connection may have queued awaiting a dispatch
    /// worker; requests beyond this are shed with an `Overloaded`
    /// reply instead of stalling the socket.
    pub max_queue: usize,
    /// Requests the whole server may have in dispatch at once; beyond
    /// this every connection sheds until workers catch up.
    pub max_in_flight: usize,
    /// Dispatch workers: the size of the server-wide pool under the
    /// reactor engine, or per-connection workers under the
    /// thread-per-connection engine.
    pub workers: usize,
    /// Serve with the legacy thread-per-connection engine instead of
    /// the reactor (the baseline in the connection-scaling
    /// experiments; costs one OS thread per accepted socket).
    pub thread_per_connection: bool,
    /// Adapt the in-flight cap with an AIMD limiter driven by measured
    /// dispatch latency instead of pinning it at `max_in_flight`. Off
    /// by default: the pinned limiter reproduces the historical static
    /// cap exactly.
    pub adaptive_limit: bool,
    /// The dispatch-latency p99 the adaptive limiter steers toward:
    /// windows whose p99 overshoots this cut the limit
    /// multiplicatively; healthy windows raise it by one.
    pub target_p99: Duration,
    /// The artifact store this server answers `MBAR` fetch frames from.
    /// `None` (the default) answers every fetch with an empty reply, so
    /// peers fall back to local compilation.
    pub artifacts: Option<Arc<dyn ArtifactStore>>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("handshake", &self.handshake)
            .field("max_queue", &self.max_queue)
            .field("max_in_flight", &self.max_in_flight)
            .field("workers", &self.workers)
            .field("thread_per_connection", &self.thread_per_connection)
            .field("adaptive_limit", &self.adaptive_limit)
            .field("target_p99", &self.target_p99)
            .field("artifacts", &self.artifacts.as_ref().map(|s| s.len()))
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            handshake: None,
            max_queue: 64,
            max_in_flight: 256,
            workers: DISPATCH_WORKERS,
            thread_per_connection: false,
            adaptive_limit: false,
            target_p99: Duration::from_millis(50),
            artifacts: None,
        }
    }
}

impl ServerConfig {
    /// A config that answers the handshake with `info`'s verdicts.
    #[must_use]
    pub fn with_handshake(mut self, info: HandshakeInfo) -> Self {
        self.handshake = Some(info);
        self
    }

    /// Sets the per-connection dispatch queue bound.
    #[must_use]
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Sets the server-wide in-flight dispatch cap.
    #[must_use]
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Sets the dispatch worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Selects the legacy thread-per-connection engine (the reactor is
    /// the default).
    #[must_use]
    pub fn with_thread_per_connection(mut self, enabled: bool) -> Self {
        self.thread_per_connection = enabled;
        self
    }

    /// Enables (or disables) the adaptive AIMD in-flight limiter.
    #[must_use]
    pub fn with_adaptive_limit(mut self, enabled: bool) -> Self {
        self.adaptive_limit = enabled;
        self
    }

    /// Sets the dispatch-latency target the adaptive limiter steers
    /// toward (ignored while `adaptive_limit` is off).
    #[must_use]
    pub fn with_target_p99(mut self, target: Duration) -> Self {
        self.target_p99 = target;
        self
    }

    /// Serves `MBAR` artifact fetches from `store` (peers whose
    /// fingerprints prove agreement can pull compiled artifacts instead
    /// of recompiling them).
    #[must_use]
    pub fn with_artifact_store(mut self, store: Arc<dyn ArtifactStore>) -> Self {
        self.artifacts = Some(store);
        self
    }

    /// Builds this config's admission limiter: adaptive when asked,
    /// otherwise pinned at `max_in_flight` (byte-for-byte the old
    /// static-cap admission).
    #[must_use]
    pub fn limiter(&self) -> AimdLimiter {
        if self.adaptive_limit {
            AimdLimiter::adaptive(self.max_in_flight, self.target_p99)
        } else {
            AimdLimiter::pinned(self.max_in_flight)
        }
    }
}

/// A closable, bounded queue handing work from connection read paths to
/// dispatch workers.
pub(crate) struct FrameQueue<T> {
    state: Mutex<(VecDeque<T>, bool)>,
    cv: Condvar,
    cap: usize,
}

impl<T> FrameQueue<T> {
    pub(crate) fn new(cap: usize) -> Self {
        FrameQueue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Enqueues unless the queue is at capacity or closed; hands the
    /// item back on refusal so the caller can shed it. The large `Err`
    /// variant is the point: the rejected item is returned by value,
    /// not dropped.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.plock();
        if st.1 || st.0.len() >= self.cap {
            return Err(item);
        }
        st.0.push_back(item);
        drop(st);
        self.cv.notify_one();
        Ok(())
    }

    /// Items currently waiting (admission control reads this as the
    /// queued-work half of the outstanding load).
    pub(crate) fn len(&self) -> usize {
        self.state.plock().0.len()
    }

    pub(crate) fn close(&self) {
        self.state.plock().1 = true;
        self.cv.notify_all();
    }

    /// Next item; drains remaining items after close, then `None` —
    /// this drain is what makes [`TcpServer::shutdown`] graceful:
    /// requests already accepted still get their replies.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut st = self.state.plock();
        loop {
            if let Some(m) = st.0.pop_front() {
                return Some(m);
            }
            if st.1 {
                return None;
            }
            st = cv_wait(&self.cv, st);
        }
    }
}

/// Answers a client's `Hello` on the server side (thread-per-connection
/// engine). Returns `false` when the verdict was `Reject` and the
/// connection must close.
fn serve_hello(
    client: &HandshakeInfo,
    endian: Endian,
    cfg: &ServerConfig,
    writer: &Mutex<TcpStream>,
    metrics: &MetricsRegistry,
) -> bool {
    metrics.add_handshake();
    let (mine, verdict) = match &cfg.handshake {
        Some(mine) => (*mine, mine.evaluate(client)),
        // Permissive mode: echo the client's info back with an Accept.
        None => (*client, HandshakeVerdict::Accept),
    };
    let reply = Message::hello(mine, verdict, endian);
    {
        let mut stream = writer.plock();
        if write_frame(&mut stream, &reply, metrics).is_err() {
            return false;
        }
    }
    match verdict {
        HandshakeVerdict::Reject => {
            metrics.add_handshake_reject();
            false
        }
        HandshakeVerdict::InterpretiveOnly => {
            metrics.add_handshake_fallback();
            true
        }
        _ => true,
    }
}

/// Sheds one request: answers `Overloaded` (response-expected requests
/// only; oneways are silently dropped, as messaging semantics allow).
/// Returns `false` when the reply could not be written.
fn shed(msg: &Message, writer: &Mutex<TcpStream>, metrics: &MetricsRegistry) -> bool {
    metrics.add_shed();
    let MessageKind::Request {
        request_id,
        response_expected: true,
        ..
    } = &msg.kind
    else {
        return true;
    };
    let mut w = CdrWriter::new(msg.endian);
    w.put_bytes(b"dispatch queue full");
    let reply = Message::reply(
        *request_id,
        ReplyStatus::Overloaded,
        msg.endian,
        w.into_bytes(),
    );
    let mut stream = writer.plock();
    write_frame(&mut stream, &reply, metrics).is_ok()
}

/// Refuses one request whose propagated deadline already expired:
/// answers `DeadlineExpired` (oneways are silently dropped). Returns
/// `false` when the reply could not be written.
fn refuse_expired(msg: &Message, writer: &Mutex<TcpStream>, metrics: &MetricsRegistry) -> bool {
    match deadline_expired_reply(msg, metrics) {
        Some(reply) => {
            let mut stream = writer.plock();
            write_frame(&mut stream, &reply, metrics).is_ok()
        }
        None => true,
    }
}

fn serve_connection(
    mut stream: TcpStream,
    dispatcher: Arc<Dispatcher>,
    stop: Arc<AtomicBool>,
    cfg: Arc<ServerConfig>,
    in_flight: Arc<AtomicUsize>,
    limiter: Arc<AimdLimiter>,
) {
    let metrics = Arc::clone(dispatcher.metrics());
    stream.set_read_timeout(Some(SERVER_POLL)).ok();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // A worker stuck replying to a peer that stopped reading must not
    // pin shutdown indefinitely.
    write_half
        .set_write_timeout(Some(Duration::from_secs(5)))
        .ok();
    let writer = Arc::new(Mutex::new(write_half));
    // Entries carry (frame, propagated-deadline expiry, admission
    // instant); the admission instant lets workers report the full
    // sojourn — queue wait plus dispatch — to the limiter.
    let queue = Arc::new(FrameQueue::<(Message, Option<Instant>, Instant)>::new(
        cfg.max_queue,
    ));
    let workers: Vec<_> = (0..cfg.workers.max(1))
        .map(|_| {
            let q = queue.clone();
            let d = dispatcher.clone();
            let w = writer.clone();
            let busy = in_flight.clone();
            let m = Arc::clone(&metrics);
            let lim = limiter.clone();
            std::thread::spawn(move || {
                while let Some((msg, expires_at, admitted)) = q.pop() {
                    // Dequeue-time deadline check: a request whose
                    // budget died waiting in the queue is refused
                    // without occupying a dispatch slot.
                    if expires_at.is_some_and(|at| Instant::now() >= at) {
                        if let Some(reply) = deadline_expired_reply(&msg, &m) {
                            let mut stream = w.plock();
                            if write_frame(&mut stream, &reply, &m).is_err() {
                                break;
                            }
                        }
                        continue;
                    }
                    busy.fetch_add(1, Ordering::SeqCst);
                    let reply = d.dispatch_with_deadline(&msg, expires_at);
                    // Sojourn time (queue wait + dispatch): queueing
                    // delay is the first symptom of overload, so it
                    // must reach the limiter.
                    lim.observe(admitted.elapsed(), &m);
                    busy.fetch_sub(1, Ordering::SeqCst);
                    if let Some(reply) = reply {
                        let mut stream = w.plock();
                        if write_frame(&mut stream, &reply, &m).is_err() {
                            break;
                        }
                    }
                }
            })
        })
        .collect();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match read_frame(&mut stream, &metrics) {
            Ok(Some(msg)) => {
                if let MessageKind::Hello { info, .. } = &msg.kind {
                    if !serve_hello(info, msg.endian, &cfg, &writer, &metrics) {
                        break; // rejected or unwritable: close the link
                    }
                    continue;
                }
                if let MessageKind::Artifact {
                    request_id,
                    reply: false,
                } = &msg.kind
                {
                    // Artifact fetches are answered inline, like Hello:
                    // they read the store without touching the dispatch
                    // path, so admission control stays request-only.
                    let reply = artifact_fetch_reply(
                        *request_id,
                        msg.endian,
                        &msg.body,
                        cfg.artifacts.as_deref(),
                    );
                    let mut stream = writer.plock();
                    if write_frame(&mut stream, &reply, &metrics).is_err() {
                        break;
                    }
                    continue;
                }
                // Admission control: an already-expired deadline is
                // refused at the door, the rest pass the limiter
                // (brownout cuts sheddable traffic first) and the
                // per-connection queue bound — everything sheds rather
                // than stalls, so a flooded server answers fast instead
                // of wedging every socket behind slow dispatches.
                let expires_at = msg
                    .deadline
                    .and_then(|d| d.budget())
                    .map(|b| Instant::now() + b);
                if expires_at.is_some_and(|at| Instant::now() >= at) {
                    if !refuse_expired(&msg, &writer, &metrics) {
                        break;
                    }
                    continue;
                }
                let sheddable = msg.deadline.is_some_and(|d| d.sheddable);
                let admitted =
                    match limiter.admit(in_flight.load(Ordering::SeqCst), queue.len(), sheddable) {
                        Admission::Admit => queue.try_push((msg, expires_at, Instant::now())),
                        Admission::Brownout => {
                            metrics.add_brownout_shed();
                            Err((msg, expires_at, Instant::now()))
                        }
                        Admission::Shed => Err((msg, expires_at, Instant::now())),
                    };
                if let Err((msg, ..)) = admitted {
                    if !shed(&msg, &writer, &metrics) {
                        break;
                    }
                }
            }
            Ok(None) => break,                         // peer disconnected
            Err(RuntimeError::Timeout(_)) => continue, // idle poll; re-check stop
            Err(_) => break,                           // garbage or broken stream
        }
    }
    queue.close();
    for h in workers {
        let _ = h.join();
    }
}

/// Serves the metrics endpoint: a minimal HTTP/1.0 responder answering
/// `/metrics` with the Prometheus text exposition and `/metrics.json`
/// with the JSON snapshot. One request per connection, `Connection:
/// close` — enough for a scraper, deliberately not a web server.
fn serve_metrics(listener: TcpListener, registry: Arc<MetricsRegistry>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
        stream.set_write_timeout(Some(Duration::from_secs(2))).ok();
        // Read the request head (until the blank line); the path is all
        // we look at.
        let mut head = Vec::new();
        let mut buf = [0u8; 512];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    head.extend_from_slice(&buf[..n]);
                    if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let request = String::from_utf8_lossy(&head);
        let path = request
            .lines()
            .next()
            .and_then(|line| line.split_whitespace().nth(1))
            .unwrap_or("/");
        let (status, content_type, body) = match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                registry.prometheus_text(),
            ),
            "/metrics.json" => ("200 OK", "application/json", registry.json_snapshot()),
            _ => ("404 Not Found", "text/plain", String::from("not found\n")),
        };
        let response = format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let _ = stream.write_all(response.as_bytes());
    }
}

/// The serving engine behind a [`TcpServer`].
enum Engine {
    /// Acceptor + reactor + bounded worker pool (the default).
    Reactor {
        handle: ReactorHandle,
        reactor_thread: Option<JoinHandle<()>>,
        queue: Arc<FrameQueue<ServerJob>>,
        ordered: Arc<FrameQueue<ServerJob>>,
        workers: Vec<JoinHandle<()>>,
    },
    /// One OS thread per accepted socket (scaling baseline).
    Threaded,
}

/// A TCP server: accepts connections and dispatches each frame through
/// a [`Dispatcher`]. By default a single reactor thread owns every
/// accepted socket and a bounded worker pool drains the dispatch
/// queue; [`ServerConfig::thread_per_connection`] selects the legacy
/// one-thread-per-socket engine instead. [`shutdown`] is deterministic
/// either way: accepted work drains to real replies before the
/// listener threads are joined.
///
/// Alongside the GIOP listener, every server exposes a metrics listener
/// on an ephemeral port of the same interface: `/metrics` serves the
/// Prometheus text exposition, `/metrics.json` a JSON snapshot. See
/// [`metrics_addr`].
///
/// [`shutdown`]: TcpServer::shutdown
/// [`metrics_addr`]: TcpServer::metrics_addr
pub struct TcpServer {
    addr: SocketAddr,
    metrics_addr: SocketAddr,
    metrics: Arc<MetricsRegistry>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    engine: Engine,
}

impl TcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop, with default limits and no handshake requirement.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the bind fails.
    pub fn bind(addr: &str, dispatcher: Arc<Dispatcher>) -> Result<Self, RuntimeError> {
        Self::bind_with(addr, dispatcher, ServerConfig::default())
    }

    /// Binds to `addr` under an explicit [`ServerConfig`]: handshake
    /// policy, per-connection queue bound, global in-flight cap,
    /// dispatch worker count, and engine selection.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the bind fails.
    pub fn bind_with(
        addr: &str,
        dispatcher: Arc<Dispatcher>,
        config: ServerConfig,
    ) -> Result<Self, RuntimeError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| RuntimeError::Transport(e.to_string()))?;
        let local = listener
            .local_addr()
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        let metrics = Arc::clone(dispatcher.metrics());
        // Metrics listener: same interface, ephemeral port.
        let metrics_listener = TcpListener::bind(SocketAddr::new(local.ip(), 0))
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        let metrics_addr = metrics_listener
            .local_addr()
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let config = Arc::new(config);

        let (engine, accept_thread) = if config.thread_per_connection {
            let flag = shutdown.clone();
            let threads = conn_threads.clone();
            let cfg = config.clone();
            let in_flight = Arc::new(AtomicUsize::new(0));
            let limiter = Arc::new(config.limiter());
            let accept_thread = std::thread::spawn(move || {
                // The listener unblocks when a shutdown probe connects.
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    stream.set_nodelay(true).ok();
                    // Reap finished per-connection threads before
                    // adding another: under churn the handle list
                    // stays proportional to *live* connections
                    // instead of growing without bound.
                    let finished: Vec<JoinHandle<()>> = {
                        let mut guard = threads.plock();
                        let mut live = Vec::with_capacity(guard.len());
                        let mut done = Vec::new();
                        for h in guard.drain(..) {
                            if h.is_finished() {
                                done.push(h);
                            } else {
                                live.push(h);
                            }
                        }
                        *guard = live;
                        done
                    };
                    for h in finished {
                        let _ = h.join();
                    }
                    let d = dispatcher.clone();
                    let stop = flag.clone();
                    let cfg = cfg.clone();
                    let busy = in_flight.clone();
                    let lim = limiter.clone();
                    let handle = std::thread::spawn(move || {
                        serve_connection(stream, d, stop, cfg, busy, lim);
                    });
                    threads.plock().push(handle);
                }
            });
            (Engine::Threaded, accept_thread)
        } else {
            let queue = Arc::new(FrameQueue::<ServerJob>::new(usize::MAX));
            let ordered = Arc::new(FrameQueue::<ServerJob>::new(usize::MAX));
            let in_flight = Arc::new(AtomicUsize::new(0));
            let limiter = Arc::new(config.limiter());
            let ctx = ServerCtx {
                cfg: config.clone(),
                queue: Arc::clone(&queue),
                ordered: Arc::clone(&ordered),
                in_flight: Arc::clone(&in_flight),
                metrics: Arc::clone(&metrics),
                limiter: Arc::clone(&limiter),
            };
            let (handle, reactor_thread) = spawn_reactor("mb-reactor-srv", Some(ctx));
            // The pool drains request/reply work concurrently; one
            // extra worker drains oneways alone, in receipt order
            // (their only delivery guarantee — no reply correlates
            // them for the caller).
            let sources: Vec<Arc<FrameQueue<ServerJob>>> =
                std::iter::repeat_with(|| Arc::clone(&queue))
                    .take(config.workers.max(1))
                    .chain(std::iter::once(Arc::clone(&ordered)))
                    .collect();
            let workers: Vec<JoinHandle<()>> = sources
                .into_iter()
                .map(|q| {
                    let d = dispatcher.clone();
                    let h = handle.clone();
                    let busy = Arc::clone(&in_flight);
                    let lim = Arc::clone(&limiter);
                    let m = Arc::clone(&metrics);
                    std::thread::spawn(move || {
                        while let Some(job) = q.pop() {
                            job.queued.fetch_sub(1, Ordering::SeqCst);
                            // Dequeue-time deadline check: a request
                            // whose budget died waiting in the queue is
                            // refused without occupying a dispatch slot.
                            if job.expires_at.is_some_and(|at| Instant::now() >= at) {
                                if let Some(reply) = deadline_expired_reply(&job.msg, &m) {
                                    let _ = h.send(Command::Reply {
                                        conn: job.conn,
                                        frame: reply.to_bytes(),
                                    });
                                }
                                continue;
                            }
                            busy.fetch_add(1, Ordering::SeqCst);
                            let reply = d.dispatch_with_deadline(&job.msg, job.expires_at);
                            // Sojourn time (queue wait + dispatch):
                            // queueing delay is the first symptom of
                            // overload, so it must reach the limiter.
                            lim.observe(job.admitted.elapsed(), &m);
                            busy.fetch_sub(1, Ordering::SeqCst);
                            if let Some(reply) = reply {
                                let _ = h.send(Command::Reply {
                                    conn: job.conn,
                                    frame: reply.to_bytes(),
                                });
                            }
                        }
                    })
                })
                .collect();
            let flag = shutdown.clone();
            let acceptor_handle = handle.clone();
            let accept_thread = std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    stream.set_nodelay(true).ok();
                    if acceptor_handle
                        .send(Command::RegisterServer { stream })
                        .is_err()
                    {
                        break;
                    }
                }
            });
            (
                Engine::Reactor {
                    handle,
                    reactor_thread: Some(reactor_thread),
                    queue,
                    ordered,
                    workers,
                },
                accept_thread,
            )
        };

        let metrics_registry = Arc::clone(&metrics);
        let metrics_stop = shutdown.clone();
        let metrics_thread = std::thread::spawn(move || {
            serve_metrics(metrics_listener, metrics_registry, metrics_stop);
        });
        Ok(TcpServer {
            addr: local,
            metrics_addr,
            metrics,
            shutdown,
            accept_thread: Some(accept_thread),
            metrics_thread: Some(metrics_thread),
            conn_threads,
            engine,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The address of the metrics listener (`/metrics` and
    /// `/metrics.json`).
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// The metrics registry this server records into — shared with its
    /// dispatcher.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Connections the server currently holds open: reactor slots
    /// under the default engine (pruned the moment a socket closes),
    /// live per-connection threads under the baseline engine. A cheap
    /// RSS proxy for churn and soak tests.
    pub fn open_connections(&self) -> usize {
        match &self.engine {
            Engine::Reactor { handle, .. } => handle.open_conns(),
            Engine::Threaded => self
                .conn_threads
                .plock()
                .iter()
                .filter(|h| !h.is_finished())
                .count(),
        }
    }

    /// Stops accepting, then shuts the engine down deterministically.
    ///
    /// Reactor engine: reads stop first, then the dispatch queue closes
    /// and the worker pool drains (accepted requests still get their
    /// replies), then the reactor flushes pending reply bytes and
    /// exits. Thread-per-connection engine: joins the accept thread and
    /// every per-connection thread (each polls the shutdown flag
    /// between frames, so the join is bounded by the poll interval).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Probe connections to unblock both accept() loops.
        let _ = TcpStream::connect(self.addr);
        let _ = TcpStream::connect(self.metrics_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.metrics_thread.take() {
            let _ = t.join();
        }
        match &mut self.engine {
            Engine::Reactor {
                handle,
                reactor_thread,
                queue,
                ordered,
                workers,
            } => {
                // Phase one: no new frames enter the queues.
                let _ = handle.send(Command::StopReading);
                // Phase two: drain accepted work through the workers.
                queue.close();
                ordered.close();
                for w in workers.drain(..) {
                    let _ = w.join();
                }
                // Phase three: flush replies, close sockets, exit.
                let _ = handle.send(Command::Drain);
                if let Some(t) = reactor_thread.take() {
                    let _ = t.join();
                }
            }
            Engine::Threaded => {
                let handles: Vec<_> = self.conn_threads.plock().drain(..).collect();
                for h in handles {
                    let _ = h.join();
                }
            }
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Servant, WireOp, WireServant};
    use mockingbird_mtype::{IntRange, MtypeGraph};
    use mockingbird_values::{Endian, MValue};
    use mockingbird_wire::{CdrReader, CdrWriter, ReplyStatus};
    use std::collections::HashMap;
    use std::io::Write;
    use std::net::Shutdown;

    fn adder_dispatcher() -> (
        Arc<Dispatcher>,
        Arc<MtypeGraph>,
        mockingbird_mtype::MtypeId,
        mockingbird_mtype::MtypeId,
    ) {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let args = g.record(vec![i, i]);
        let result = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_op: &str, args: MValue| {
            let MValue::Record(items) = args else {
                return Err(RuntimeError::Conversion("bad args".into()));
            };
            let (MValue::Int(a), MValue::Int(b)) = (&items[0], &items[1]) else {
                return Err(RuntimeError::Conversion("bad ints".into()));
            };
            Ok(MValue::Record(vec![MValue::Int(a + b)]))
        });
        let mut ops = HashMap::new();
        ops.insert("add".to_string(), WireOp::new(graph.clone(), args, result));
        let d = Arc::new(Dispatcher::new());
        d.register(b"adder".to_vec(), WireServant::new(servant, ops));
        (d, graph, args, result)
    }

    fn call_add(
        conn: &dyn Connection,
        graph: &MtypeGraph,
        args_ty: mockingbird_mtype::MtypeId,
        result_ty: mockingbird_mtype::MtypeId,
        a: i64,
        b: i64,
    ) -> i128 {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(
            graph,
            args_ty,
            &MValue::Record(vec![MValue::Int(a as i128), MValue::Int(b as i128)]),
        )
        .unwrap();
        let req = Message::request(
            1,
            true,
            b"adder".to_vec(),
            "add",
            Endian::Little,
            w.into_bytes(),
        );
        let reply = conn.call(&req).unwrap().unwrap();
        let MessageKind::Reply { status, .. } = reply.kind else {
            panic!()
        };
        assert_eq!(status, ReplyStatus::NoException);
        let mut r = CdrReader::new(&reply.body, reply.endian);
        let MValue::Record(items) = r.get_value(graph, result_ty).unwrap() else {
            panic!()
        };
        let MValue::Int(v) = items[0] else { panic!() };
        v
    }

    /// A dispatcher whose single op sleeps `ms` then echoes.
    fn sleepy_dispatcher(
        ms: u64,
    ) -> (Arc<Dispatcher>, Arc<MtypeGraph>, mockingbird_mtype::MtypeId) {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(move |_: &str, v: MValue| {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(v)
        });
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph.clone(), rec, rec));
        let d = Arc::new(Dispatcher::new());
        d.register(b"slow".to_vec(), WireServant::new(servant, ops));
        (d, graph, rec)
    }

    fn echo_request(
        graph: &MtypeGraph,
        rec: mockingbird_mtype::MtypeId,
        object: &[u8],
        id: u32,
        v: i64,
    ) -> Message {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(graph, rec, &MValue::Record(vec![MValue::Int(v as i128)]))
            .unwrap();
        Message::request(
            id,
            true,
            object.to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        )
    }

    #[test]
    fn in_memory_connection_round_trip() {
        let (d, graph, args, result) = adder_dispatcher();
        let conn = InMemoryConnection::new(d);
        assert_eq!(call_add(&conn, &graph, args, result, 20, 22), 42);
    }

    #[test]
    fn tcp_connection_round_trip() {
        let (d, graph, args, result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let conn = TcpConnection::connect(server.addr()).unwrap();
        assert_eq!(call_add(&conn, &graph, args, result, 40, 2), 42);
        // Several sequential calls on one connection.
        for k in 0..32 {
            assert_eq!(call_add(&conn, &graph, args, result, k, k), (2 * k) as i128);
        }
        server.shutdown();
    }

    #[test]
    fn tcp_multiple_clients() {
        let (d, graph, args, result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let addr = server.addr();
        let graph2 = graph.clone();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let g = graph2.clone();
                std::thread::spawn(move || {
                    let conn = TcpConnection::connect(addr).unwrap();
                    for k in 0..16i64 {
                        assert_eq!(call_add(&conn, &g, args, result, t, k), (t + k) as i128);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn multiplexed_connection_round_trip() {
        let (d, graph, args, result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let conn = MultiplexedConnection::connect(server.addr()).unwrap();
        assert!(conn.is_alive());
        for k in 0..32 {
            assert_eq!(call_add(&conn, &graph, args, result, k, 1), (k + 1) as i128);
        }
        server.shutdown();
    }

    #[test]
    fn multiplexed_connection_shared_by_threads() {
        let (d, graph, args, result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let conn = Arc::new(MultiplexedConnection::connect(server.addr()).unwrap());
        let handles: Vec<_> = (0..8)
            .map(|t: i64| {
                let c = conn.clone();
                let g = graph.clone();
                std::thread::spawn(move || {
                    for k in 0..32i64 {
                        assert_eq!(
                            call_add(&*c, &g, args, result, t * 100, k),
                            (t * 100 + k) as i128
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn multiplexed_restores_the_caller_request_id() {
        let (d, graph, args, _result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let conn = MultiplexedConnection::connect(server.addr()).unwrap();
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(
            &graph,
            args,
            &MValue::Record(vec![MValue::Int(1), MValue::Int(2)]),
        )
        .unwrap();
        // A caller id far from the connection's own counter.
        let req = Message::request(
            0xBEEF,
            true,
            b"adder".to_vec(),
            "add",
            Endian::Little,
            w.into_bytes(),
        );
        let reply = conn.call(&req).unwrap().unwrap();
        let MessageKind::Reply { request_id, .. } = reply.kind else {
            panic!()
        };
        assert_eq!(request_id, 0xBEEF);
        server.shutdown();
    }

    #[test]
    fn oneway_over_tcp_returns_immediately() {
        let (d, graph, args, _result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let conn = TcpConnection::connect(server.addr()).unwrap();
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(
            &graph,
            args,
            &MValue::Record(vec![MValue::Int(1), MValue::Int(2)]),
        )
        .unwrap();
        let req = Message::request(
            9,
            false,
            b"adder".to_vec(),
            "add",
            Endian::Little,
            w.into_bytes(),
        );
        assert!(conn.call(&req).unwrap().is_none());
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_connection_threads() {
        let (d, graph, args, result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let conn = TcpConnection::connect(server.addr()).unwrap();
        assert_eq!(call_add(&conn, &graph, args, result, 1, 1), 2);
        // The connection is still open; shutdown must not hang on it.
        let start = Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown joined promptly"
        );
        assert!(server.conn_threads.plock().is_empty());
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let (d, graph, args, result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        // A rogue peer declares a ~4 GiB frame; the server must drop the
        // connection (protocol error) instead of allocating.
        {
            let mut rogue = TcpStream::connect(server.addr()).unwrap();
            let mut forged = Vec::new();
            forged.extend_from_slice(b"GIOP");
            forged.extend_from_slice(&[1, 0, 0x01, 0]);
            forged.extend_from_slice(&u32::MAX.to_be_bytes());
            rogue.write_all(&forged).unwrap();
            // The server closes its side once it sees the forged length.
            let mut buf = [0u8; 1];
            let _ = rogue.set_read_timeout(Some(Duration::from_secs(5)));
            assert_eq!(rogue.read(&mut buf).unwrap_or(0), 0, "server hung up");
        }
        // Well-behaved clients are unaffected.
        let conn = TcpConnection::connect(server.addr()).unwrap();
        assert_eq!(call_add(&conn, &graph, args, result, 2, 3), 5);
        server.shutdown();
    }

    #[test]
    fn connect_to_dead_server_fails() {
        assert!(TcpConnection::connect("127.0.0.1:1".parse().unwrap()).is_err());
        assert!(MultiplexedConnection::connect("127.0.0.1:1".parse().unwrap()).is_err());
    }

    #[test]
    fn handshake_accepts_matching_peers() {
        let (d, graph, args, result) = adder_dispatcher();
        let info = HandshakeInfo::new(d.interface_fingerprint(), 7);
        let mut server = TcpServer::bind_with(
            "127.0.0.1:0",
            d,
            ServerConfig::default().with_handshake(info),
        )
        .unwrap();
        let conn = TcpConnection::connect_with(server.addr(), Some(&info)).unwrap();
        assert!(conn.fused_allowed());
        assert_eq!(call_add(&conn, &graph, args, result, 1, 2), 3);
        let mux = MultiplexedConnection::connect_with(server.addr(), Some(&info)).unwrap();
        assert!(mux.fused_allowed());
        assert_eq!(call_add(&mux, &graph, args, result, 2, 2), 4);
        server.shutdown();
    }

    #[test]
    fn handshake_rejects_skewed_peers() {
        let (d, graph, args, result) = adder_dispatcher();
        let mine = HandshakeInfo::new(d.interface_fingerprint(), 7);
        let mut server = TcpServer::bind_with(
            "127.0.0.1:0",
            d,
            ServerConfig::default().with_handshake(mine),
        )
        .unwrap();
        // A peer compiled against different declarations.
        let skewed = HandshakeInfo::new(mine.interface_fp ^ 0xDEAD_BEEF, 7);
        let Err(err) = TcpConnection::connect_with(server.addr(), Some(&skewed)) else {
            panic!("skewed serial connect was accepted")
        };
        assert!(matches!(err, RuntimeError::VersionSkew(_)), "got {err}");
        let Err(err) = MultiplexedConnection::connect_with(server.addr(), Some(&skewed)) else {
            panic!("skewed multiplexed connect was accepted")
        };
        assert!(matches!(err, RuntimeError::VersionSkew(_)), "got {err}");
        // Matching peers still connect after the rejections.
        let conn = TcpConnection::connect_with(server.addr(), Some(&mine)).unwrap();
        assert_eq!(call_add(&conn, &graph, args, result, 3, 4), 7);
        server.shutdown();
    }

    #[test]
    fn handshake_rules_mismatch_forces_the_interpretive_path() {
        let (d, graph, args, result) = adder_dispatcher();
        let mine = HandshakeInfo::new(d.interface_fingerprint(), 7);
        let mut server = TcpServer::bind_with(
            "127.0.0.1:0",
            d,
            ServerConfig::default().with_handshake(mine),
        )
        .unwrap();
        // Same declarations, different marshal-rule caches: connect
        // succeeds but fused programs are off.
        let other_rules = HandshakeInfo::new(mine.interface_fp, 8);
        let conn = TcpConnection::connect_with(server.addr(), Some(&other_rules)).unwrap();
        assert!(!conn.fused_allowed(), "rules skew disables fused programs");
        assert_eq!(call_add(&conn, &graph, args, result, 5, 6), 11);
        server.shutdown();
    }

    #[test]
    fn saturated_server_sheds_with_overloaded_replies() {
        let (d, graph, args, _result) = adder_dispatcher();
        // A zero-length queue sheds every request deterministically.
        let mut server = TcpServer::bind_with(
            "127.0.0.1:0",
            d,
            ServerConfig {
                max_queue: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let conn = TcpConnection::connect(server.addr()).unwrap();
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(
            &graph,
            args,
            &MValue::Record(vec![MValue::Int(1), MValue::Int(2)]),
        )
        .unwrap();
        let req = Message::request(
            11,
            true,
            b"adder".to_vec(),
            "add",
            Endian::Little,
            w.into_bytes(),
        );
        let reply = conn.call(&req).unwrap().unwrap();
        let MessageKind::Reply { status, .. } = reply.kind else {
            panic!()
        };
        assert_eq!(status, ReplyStatus::Overloaded, "request shed, not stalled");
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let (d, graph, rec) = sleepy_dispatcher(150);
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let addr = server.addr();
        let g2 = graph.clone();
        let client = std::thread::spawn(move || {
            let conn = TcpConnection::connect(addr).unwrap();
            let req = echo_request(&g2, rec, b"slow", 1, 9);
            conn.call(&req)
        });
        // Let the request reach the dispatch queue, then shut down
        // while it is still in flight.
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown();
        let reply = client.join().unwrap().unwrap().unwrap();
        let MessageKind::Reply { status, .. } = reply.kind else {
            panic!()
        };
        assert_eq!(
            status,
            ReplyStatus::NoException,
            "in-flight work drains to a real reply, not a dropped socket"
        );
    }

    #[test]
    fn concurrent_deadlines_are_per_call_not_per_socket() {
        // Two calls share one multiplexed socket: a 10 ms deadline and
        // a 5 s deadline, against a servant that takes ~200 ms. The
        // short call must time out; the long call must NOT inherit the
        // short call's deadline (the old transport's shared
        // set_read_timeout bug).
        let (d, graph, rec) = sleepy_dispatcher(200);
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let conn = Arc::new(MultiplexedConnection::connect(server.addr()).unwrap());

        let long_conn = conn.clone();
        let (lg, lr) = (graph.clone(), rec);
        let long_call = std::thread::spawn(move || {
            let req = echo_request(&lg, lr, b"slow", 2, 7);
            let opts = CallOptions::new().with_deadline(Duration::from_secs(5));
            long_conn.call_with(&req, &opts)
        });

        let req = echo_request(&graph, rec, b"slow", 1, 6);
        let opts = CallOptions::new().with_deadline(Duration::from_millis(10));
        let start = Instant::now();
        let short = conn.call_with(&req, &opts);
        let short_elapsed = start.elapsed();
        assert!(
            matches!(short, Err(RuntimeError::Timeout(_))),
            "short call timed out, got {short:?}"
        );
        assert!(
            short_elapsed < Duration::from_millis(150),
            "short deadline fired promptly: {short_elapsed:?}"
        );

        let long = long_call.join().unwrap();
        let reply = long.expect("long call succeeded").expect("reply");
        let MessageKind::Reply { status, .. } = reply.kind else {
            panic!()
        };
        assert_eq!(
            status,
            ReplyStatus::NoException,
            "the 5 s call did not inherit the 10 ms deadline"
        );
        assert!(conn.is_alive(), "timeouts do not kill the connection");
        server.shutdown();
    }

    #[test]
    fn connection_death_fails_every_waiter_synchronously() {
        // A raw server that accepts, reads forever, never replies —
        // then tears the socket down while several calls are parked.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let killer = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(100));
            stream.shutdown(Shutdown::Both).ok();
        });

        let conn = Arc::new(MultiplexedConnection::connect(addr).unwrap());
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let callers: Vec<_> = (0..4)
            .map(|k| {
                let c = conn.clone();
                let g = graph.clone();
                std::thread::spawn(move || {
                    let req = echo_request(&g, rec, b"void", k, 1);
                    let start = Instant::now();
                    let out = c.call(&req);
                    (out, start.elapsed())
                })
            })
            .collect();
        for h in callers {
            let (out, elapsed) = h.join().unwrap();
            assert!(out.is_err(), "waiter failed rather than hanging");
            assert!(
                elapsed < Duration::from_secs(3),
                "death broadcast promptly, not via a poll interval: {elapsed:?}"
            );
        }
        assert!(!conn.is_alive());
        // New calls fail fast on the dead flag, under the same lock the
        // broadcast held — no registration can race past it.
        let req = echo_request(&graph, rec, b"void", 9, 1);
        assert!(conn.call(&req).is_err());
        killer.join().unwrap();
    }

    #[test]
    fn handler_panic_yields_system_exception_for_that_call_only() {
        // A servant that panics on value 13 and echoes otherwise.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| {
            if let MValue::Record(items) = &v {
                if items.first() == Some(&MValue::Int(13)) {
                    panic!("unlucky number");
                }
            }
            Ok(v)
        });
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph.clone(), rec, rec));
        let d = Arc::new(Dispatcher::new());
        d.register(b"moody".to_vec(), WireServant::new(servant, ops));
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let conn = MultiplexedConnection::connect(server.addr()).unwrap();

        let boom = conn
            .call(&echo_request(&graph, rec, b"moody", 1, 13))
            .unwrap()
            .unwrap();
        let MessageKind::Reply { status, .. } = boom.kind else {
            panic!()
        };
        assert_eq!(
            status,
            ReplyStatus::SystemException,
            "the panicking call gets a typed failure, not a dead socket"
        );
        // The same connection, server, and worker pool keep serving.
        for k in 0..8 {
            let ok = conn
                .call(&echo_request(&graph, rec, b"moody", 2 + k, i64::from(k)))
                .unwrap()
                .unwrap();
            let MessageKind::Reply { status, .. } = ok.kind else {
                panic!()
            };
            assert_eq!(status, ReplyStatus::NoException, "call {k} unaffected");
        }
        server.shutdown();
    }

    #[test]
    fn threaded_engine_reaps_finished_connection_threads() {
        let (d, graph, args, result) = adder_dispatcher();
        let mut server = TcpServer::bind_with(
            "127.0.0.1:0",
            d,
            ServerConfig::default().with_thread_per_connection(true),
        )
        .unwrap();
        // Churn: each connection is closed before the next opens, so
        // its serving thread finishes and must be reaped by a later
        // accept, not hoarded until shutdown.
        for k in 0..24 {
            let conn = TcpConnection::connect(server.addr()).unwrap();
            assert_eq!(call_add(&conn, &graph, args, result, k, 1), (k + 1) as i128);
            drop(conn);
            // Give the per-connection thread a moment to notice EOF.
            std::thread::sleep(Duration::from_millis(5));
        }
        let held = server.conn_threads.plock().len();
        assert!(
            held < 12,
            "churned 24 connections but {held} handles are still held"
        );
        server.shutdown();
        assert!(server.conn_threads.plock().is_empty());
    }

    #[test]
    fn reactor_server_prunes_closed_connection_slots() {
        let (d, graph, args, result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        for k in 0..32 {
            let conn = MultiplexedConnection::connect(server.addr()).unwrap();
            assert_eq!(call_add(&conn, &graph, args, result, k, k), (2 * k) as i128);
            drop(conn);
        }
        // The reactor prunes slots as soon as it sees the close; poll
        // briefly rather than racing it.
        let mut open = server.open_connections();
        for _ in 0..100 {
            if open == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
            open = server.open_connections();
        }
        assert_eq!(open, 0, "closed slots pruned, not accumulated");
        server.shutdown();
    }
}
