//! Connections carrying framed messages.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use mockingbird_wire::{Message, MessageKind};

use crate::dispatch::Dispatcher;
use crate::error::RuntimeError;

/// A client-side connection: sends a framed message, returning the reply
/// frame (or `None` for oneway requests).
pub trait Connection: Send + Sync {
    /// Performs one request/response exchange.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] on connection failures.
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError>;
}

/// An in-process loopback connection: frames and marshals exactly like a
/// network transport but dispatches synchronously, isolating marshalling
/// cost from socket cost (used by the §6 overhead benches).
#[derive(Clone)]
pub struct InMemoryConnection {
    dispatcher: Arc<Dispatcher>,
}

impl InMemoryConnection {
    /// Connects to a dispatcher.
    pub fn new(dispatcher: Arc<Dispatcher>) -> Self {
        InMemoryConnection { dispatcher }
    }
}

impl Connection for InMemoryConnection {
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
        // Serialise and reparse: the bytes really cross a boundary.
        let bytes = msg.to_bytes();
        let parsed = Message::from_bytes(&bytes)
            .map_err(|e| RuntimeError::Protocol(e.to_string()))?;
        match self.dispatcher.dispatch(&parsed) {
            Some(reply) => {
                let reply_bytes = reply.to_bytes();
                Ok(Some(
                    Message::from_bytes(&reply_bytes)
                        .map_err(|e| RuntimeError::Protocol(e.to_string()))?,
                ))
            }
            None => Ok(None),
        }
    }
}

fn read_frame(stream: &mut TcpStream) -> Result<Option<Message>, RuntimeError> {
    let mut header = [0u8; 12];
    let mut filled = 0usize;
    while filled < 12 {
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None), // clean EOF
            Ok(0) => return Err(RuntimeError::Transport("connection closed mid-frame".into())),
            Ok(n) => filled += n,
            Err(e) => return Err(RuntimeError::Transport(e.to_string())),
        }
    }
    let total = Message::frame_len(&header).map_err(|e| RuntimeError::Protocol(e.to_string()))?;
    let mut buf = vec![0u8; total];
    buf[..12].copy_from_slice(&header);
    stream
        .read_exact(&mut buf[12..])
        .map_err(|e| RuntimeError::Transport(e.to_string()))?;
    Message::from_bytes(&buf)
        .map(Some)
        .map_err(|e| RuntimeError::Protocol(e.to_string()))
}

fn write_frame(stream: &mut TcpStream, msg: &Message) -> Result<(), RuntimeError> {
    stream
        .write_all(&msg.to_bytes())
        .map_err(|e| RuntimeError::Transport(e.to_string()))
}

/// A TCP client connection (one in-flight request at a time; the GIOP
/// request id correlates replies).
pub struct TcpConnection {
    stream: Mutex<TcpStream>,
}

impl TcpConnection {
    /// Connects to a [`TcpServer`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the connect fails.
    pub fn connect(addr: SocketAddr) -> Result<Self, RuntimeError> {
        let stream = TcpStream::connect(addr).map_err(|e| RuntimeError::Transport(e.to_string()))?;
        stream.set_nodelay(true).ok();
        Ok(TcpConnection { stream: Mutex::new(stream) })
    }
}

impl Connection for TcpConnection {
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
        let mut stream = self.stream.lock();
        write_frame(&mut stream, msg)?;
        let expects_reply = matches!(
            msg.kind,
            MessageKind::Request { response_expected: true, .. }
        );
        if !expects_reply {
            return Ok(None);
        }
        match read_frame(&mut stream)? {
            Some(reply) => Ok(Some(reply)),
            None => Err(RuntimeError::Transport("server closed the connection".into())),
        }
    }
}

/// A TCP server: accepts connections and dispatches each frame through a
/// [`Dispatcher`], one thread per connection.
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the bind fails.
    pub fn bind(addr: &str, dispatcher: Arc<Dispatcher>) -> Result<Self, RuntimeError> {
        let listener = TcpListener::bind(addr).map_err(|e| RuntimeError::Transport(e.to_string()))?;
        let local = listener
            .local_addr()
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let accept_thread = std::thread::spawn(move || {
            // The listener unblocks when a shutdown probe connects.
            for conn in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                stream.set_nodelay(true).ok();
                let d = dispatcher.clone();
                std::thread::spawn(move || {
                    while let Ok(Some(msg)) = read_frame(&mut stream) {
                        if let Some(reply) = d.dispatch(&msg) {
                            if write_frame(&mut stream, &reply).is_err() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        Ok(TcpServer { addr: local, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections. Existing per-connection threads
    /// drain naturally when their peers disconnect.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Probe connection to unblock accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Servant, WireOp, WireServant};
    use mockingbird_mtype::{IntRange, MtypeGraph};
    use mockingbird_values::{Endian, MValue};
    use mockingbird_wire::{CdrReader, CdrWriter, ReplyStatus};
    use std::collections::HashMap;

    fn adder_dispatcher() -> (Arc<Dispatcher>, Arc<MtypeGraph>, mockingbird_mtype::MtypeId, mockingbird_mtype::MtypeId)
    {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let args = g.record(vec![i, i]);
        let result = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_op: &str, args: MValue| {
            let MValue::Record(items) = args else {
                return Err(RuntimeError::Conversion("bad args".into()));
            };
            let (MValue::Int(a), MValue::Int(b)) = (&items[0], &items[1]) else {
                return Err(RuntimeError::Conversion("bad ints".into()));
            };
            Ok(MValue::Record(vec![MValue::Int(a + b)]))
        });
        let mut ops = HashMap::new();
        ops.insert(
            "add".to_string(),
            WireOp { graph: graph.clone(), args_ty: args, result_ty: result },
        );
        let d = Arc::new(Dispatcher::new());
        d.register(b"adder".to_vec(), WireServant::new(servant, ops));
        (d, graph, args, result)
    }

    fn call_add(conn: &dyn Connection, graph: &MtypeGraph, args_ty: mockingbird_mtype::MtypeId, result_ty: mockingbird_mtype::MtypeId, a: i64, b: i64) -> i128 {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(
            graph,
            args_ty,
            &MValue::Record(vec![MValue::Int(a as i128), MValue::Int(b as i128)]),
        )
        .unwrap();
        let req = Message::request(1, true, b"adder".to_vec(), "add", Endian::Little, w.into_bytes());
        let reply = conn.call(&req).unwrap().unwrap();
        let MessageKind::Reply { status, .. } = reply.kind else { panic!() };
        assert_eq!(status, ReplyStatus::NoException);
        let mut r = CdrReader::new(&reply.body, reply.endian);
        let MValue::Record(items) = r.get_value(graph, result_ty).unwrap() else { panic!() };
        let MValue::Int(v) = items[0] else { panic!() };
        v
    }

    #[test]
    fn in_memory_connection_round_trip() {
        let (d, graph, args, result) = adder_dispatcher();
        let conn = InMemoryConnection::new(d);
        assert_eq!(call_add(&conn, &graph, args, result, 20, 22), 42);
    }

    #[test]
    fn tcp_connection_round_trip() {
        let (d, graph, args, result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let conn = TcpConnection::connect(server.addr()).unwrap();
        assert_eq!(call_add(&conn, &graph, args, result, 40, 2), 42);
        // Several sequential calls on one connection.
        for k in 0..32 {
            assert_eq!(call_add(&conn, &graph, args, result, k, k), (2 * k) as i128);
        }
        server.shutdown();
    }

    #[test]
    fn tcp_multiple_clients() {
        let (d, graph, args, result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let addr = server.addr();
        let graph2 = graph.clone();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let g = graph2.clone();
                std::thread::spawn(move || {
                    let conn = TcpConnection::connect(addr).unwrap();
                    for k in 0..16i64 {
                        assert_eq!(call_add(&conn, &g, args, result, t, k), (t + k) as i128);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn oneway_over_tcp_returns_immediately() {
        let (d, graph, args, _result) = adder_dispatcher();
        let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        let conn = TcpConnection::connect(server.addr()).unwrap();
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&graph, args, &MValue::Record(vec![MValue::Int(1), MValue::Int(2)]))
            .unwrap();
        let req = Message::request(9, false, b"adder".to_vec(), "add", Endian::Little, w.into_bytes());
        assert!(conn.call(&req).unwrap().is_none());
        server.shutdown();
    }

    #[test]
    fn connect_to_dead_server_fails() {
        assert!(TcpConnection::connect("127.0.0.1:1".parse().unwrap()).is_err());
    }
}
