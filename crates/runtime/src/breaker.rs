//! Per-endpoint circuit breakers.
//!
//! A [`CircuitBreaker`] watches the outcomes of calls to one endpoint
//! and walks the classic three-state machine:
//!
//! - **Closed** — traffic flows; outcomes are recorded into a sliding
//!   window. Too many consecutive failures, or a failure rate above the
//!   threshold once the window has enough samples, trips the breaker
//!   **open**.
//! - **Open** — calls are refused locally (the pool routes around the
//!   endpoint) until the cooldown elapses, at which point the next
//!   [`allow`](CircuitBreaker::allow) probe moves it **half-open**.
//! - **Half-open** — probe traffic is admitted; a run of consecutive
//!   successes closes the breaker, any failure re-opens it.
//!
//! Every transition is counted both on the breaker itself (for tests
//! and per-endpoint introspection) and in the owning node's
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::MetricsRegistry;
use crate::sync::LockExt;

/// The breaker's position in the closed → open → half-open cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows normally.
    Closed,
    /// The endpoint is quarantined; calls are refused until cooldown.
    Open,
    /// Probe traffic is testing whether the endpoint recovered.
    HalfOpen,
}

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Outcomes remembered for the failure-rate window.
    pub window: usize,
    /// Minimum outcomes in the window before the rate can trip.
    pub min_samples: usize,
    /// Failure rate (0..=1) at or above which the breaker opens.
    pub failure_rate: f64,
    /// Consecutive failures that open the breaker regardless of rate.
    pub consecutive_failures: u32,
    /// How long an open breaker waits before admitting a probe.
    pub cooldown: Duration,
    /// Consecutive half-open successes required to close.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            min_samples: 8,
            failure_rate: 0.5,
            consecutive_failures: 5,
            cooldown: Duration::from_millis(250),
            half_open_successes: 2,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never trips (for baselines and ablations).
    #[must_use]
    pub fn disabled() -> Self {
        BreakerConfig {
            failure_rate: 2.0, // unreachable
            consecutive_failures: u32::MAX,
            ..BreakerConfig::default()
        }
    }
}

/// Counts of the breaker's own state transitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerTransitions {
    /// Trips into the open state.
    pub opened: u64,
    /// Cooldown expiries into the half-open state.
    pub half_opened: u64,
    /// Recoveries back to closed.
    pub closed: u64,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Recent outcomes, `true` = failure.
    window: VecDeque<bool>,
    failures_in_window: usize,
    consecutive: u32,
    opened_at: Option<Instant>,
    half_open_streak: u32,
    transitions: BreakerTransitions,
}

/// A thread-safe circuit breaker for one endpoint.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
    metrics: Arc<MetricsRegistry>,
}

impl CircuitBreaker {
    /// A closed breaker under `cfg`, counting transitions into a
    /// private registry. Pools use
    /// [`with_metrics`](Self::with_metrics) so every endpoint's breaker
    /// shares the pool's registry.
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> Self {
        Self::with_metrics(cfg, MetricsRegistry::shared())
    }

    /// A closed breaker under `cfg` that counts its transitions in
    /// `metrics`.
    #[must_use]
    pub fn with_metrics(cfg: BreakerConfig, metrics: Arc<MetricsRegistry>) -> Self {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                window: VecDeque::new(),
                failures_in_window: 0,
                consecutive: 0,
                opened_at: None,
                half_open_streak: 0,
                transitions: BreakerTransitions::default(),
            }),
            metrics,
        }
    }

    /// The current state (an open breaker past its cooldown still reads
    /// `Open` until an [`allow`](Self::allow) probe promotes it).
    pub fn state(&self) -> BreakerState {
        self.inner.plock().state
    }

    /// The breaker's transition counters.
    pub fn transitions(&self) -> BreakerTransitions {
        self.inner.plock().transitions
    }

    /// Whether a call may proceed now. An open breaker whose cooldown
    /// has elapsed transitions to half-open and admits the call as a
    /// probe.
    pub fn allow(&self) -> bool {
        let mut st = self.inner.plock();
        match st.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let cooled = st
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.cfg.cooldown);
                if cooled {
                    st.state = BreakerState::HalfOpen;
                    st.half_open_streak = 0;
                    st.transitions.half_opened += 1;
                    self.metrics.add_breaker_half_open();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call.
    pub fn record_success(&self) {
        let mut st = self.inner.plock();
        st.consecutive = 0;
        Self::push(&mut st, self.cfg.window, false);
        if st.state == BreakerState::HalfOpen {
            st.half_open_streak += 1;
            if st.half_open_streak >= self.cfg.half_open_successes {
                st.state = BreakerState::Closed;
                st.opened_at = None;
                st.window.clear();
                st.failures_in_window = 0;
                st.transitions.closed += 1;
                self.metrics.add_breaker_close();
            }
        }
    }

    /// Records a failed call (transport error, timeout, overload).
    pub fn record_failure(&self) {
        let mut st = self.inner.plock();
        st.consecutive = st.consecutive.saturating_add(1);
        Self::push(&mut st, self.cfg.window, true);
        let trip = match st.state {
            BreakerState::Open => false,
            // Any failure during probing sends the breaker straight back
            // to open for another cooldown.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => {
                st.consecutive >= self.cfg.consecutive_failures
                    || (st.window.len() >= self.cfg.min_samples
                        && st.failures_in_window as f64 / st.window.len() as f64
                            >= self.cfg.failure_rate)
            }
        };
        if trip {
            st.state = BreakerState::Open;
            st.opened_at = Some(Instant::now());
            st.half_open_streak = 0;
            st.transitions.opened += 1;
            self.metrics.add_breaker_open();
        }
    }

    fn push(st: &mut Inner, cap: usize, failure: bool) {
        if cap == 0 {
            return;
        }
        if st.window.len() == cap && st.window.pop_front() == Some(true) {
            st.failures_in_window -= 1;
        }
        st.window.push_back(failure);
        if failure {
            st.failures_in_window += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> BreakerConfig {
        BreakerConfig {
            cooldown: Duration::from_millis(20),
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn consecutive_failures_trip_the_breaker() {
        let b = CircuitBreaker::new(fast_cfg());
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..4 {
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker refuses before cooldown");
        assert_eq!(b.transitions().opened, 1);
    }

    #[test]
    fn failure_rate_trips_once_window_has_samples() {
        let cfg = BreakerConfig {
            min_samples: 8,
            failure_rate: 0.5,
            consecutive_failures: u32::MAX,
            ..fast_cfg()
        };
        let b = CircuitBreaker::new(cfg);
        // Alternate: never 5 consecutive, but 50% of the window fails.
        for _ in 0..4 {
            b.record_success();
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open, "rate threshold tripped");
    }

    #[test]
    fn successes_keep_the_breaker_closed() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..100 {
            b.record_success();
        }
        // A sprinkle of failures below every threshold changes nothing.
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions(), BreakerTransitions::default());
    }

    #[test]
    fn cooldown_promotes_to_half_open_and_successes_close() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..5 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow(), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(
            b.state(),
            BreakerState::HalfOpen,
            "one success is not enough"
        );
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let t = b.transitions();
        assert_eq!((t.opened, t.half_opened, t.closed), (1, 1, 1));
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..5 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().opened, 2);
        assert!(!b.allow(), "fresh cooldown after the failed probe");
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let b = CircuitBreaker::new(BreakerConfig::disabled());
        for _ in 0..10_000 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn window_evicts_old_outcomes() {
        let cfg = BreakerConfig {
            window: 4,
            min_samples: 4,
            failure_rate: 0.75,
            consecutive_failures: u32::MAX,
            ..fast_cfg()
        };
        let b = CircuitBreaker::new(cfg);
        // Old failures scroll out of the window: 2 failures then 4
        // successes leaves a clean window.
        b.record_failure();
        b.record_failure();
        for _ in 0..4 {
            b.record_success();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // 3 of the last 4 failing trips the 75% threshold.
        b.record_failure();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }
}
