//! Nodes: a dispatcher plus a port table and messaging endpoints.

use std::collections::HashMap;
use std::sync::Arc;

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::RwLock;

use mockingbird_values::{MValue, PortRef};

use crate::dispatch::{Dispatcher, Servant, WireOp, WireServant};
use crate::error::RuntimeError;
use crate::sync::RwLockExt;

/// A handler receiving values sent to a port.
pub trait PortHandler: Send + Sync {
    /// Accepts one delivered value.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if the value cannot be accepted.
    fn deliver(&self, value: MValue) -> Result<(), RuntimeError>;
}

impl<F> PortHandler for F
where
    F: Fn(MValue) -> Result<(), RuntimeError> + Send + Sync,
{
    fn deliver(&self, value: MValue) -> Result<(), RuntimeError> {
        self(value)
    }
}

/// One participant in a Mockingbird system: owns the object registry
/// (for RPC-style stubs) and the port table (for message-passing stubs,
/// the §3.3 `port(τ)` model: "the addresses to which values of Mtype τ
/// may be sent").
pub struct Node {
    name: String,
    dispatcher: Arc<Dispatcher>,
    ports: RwLock<HashMap<u64, Arc<dyn PortHandler>>>,
    next_port: RwLock<u64>,
}

impl Node {
    /// Creates a named node.
    pub fn new(name: impl Into<String>) -> Self {
        Node {
            name: name.into(),
            dispatcher: Arc::new(Dispatcher::new()),
            ports: RwLock::new(HashMap::new()),
            next_port: RwLock::new(1),
        }
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's dispatcher (share with transports/servers).
    pub fn dispatcher(&self) -> Arc<Dispatcher> {
        self.dispatcher.clone()
    }

    /// Registers a servant under an object key.
    pub fn register_object(
        &self,
        object_key: impl Into<Vec<u8>>,
        servant: Arc<dyn Servant>,
        ops: HashMap<String, WireOp>,
    ) {
        self.dispatcher
            .register(object_key, WireServant::new(servant, ops));
    }

    /// Registers a port handler, returning the new port's reference.
    pub fn register_port(&self, handler: Arc<dyn PortHandler>) -> PortRef {
        let mut next = self.next_port.pwrite();
        let id = *next;
        *next += 1;
        self.ports.pwrite().insert(id, handler);
        PortRef(id)
    }

    /// Creates a queue-backed port: values sent to it arrive on the
    /// returned receiver (the paper's `port(Integer)` "queues to which
    /// one can send integers").
    pub fn queue_port(&self) -> (PortRef, Receiver<MValue>) {
        let (tx, rx): (Sender<MValue>, Receiver<MValue>) = channel();
        let port = self.register_port(Arc::new(move |v: MValue| {
            tx.send(v)
                .map_err(|e| RuntimeError::Transport(e.to_string()))
        }));
        (port, rx)
    }

    /// Sends a value to a local port.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownObject`] if the port is not
    /// registered on this node, or the handler's failure.
    pub fn send(&self, port: PortRef, value: MValue) -> Result<(), RuntimeError> {
        let handler = self
            .ports
            .pread()
            .get(&port.0)
            .cloned()
            .ok_or_else(|| RuntimeError::UnknownObject(port.to_string()))?;
        handler.deliver(value)
    }

    /// Closes a port; returns whether it existed.
    pub fn close_port(&self, port: PortRef) -> bool {
        self.ports.pwrite().remove(&port.0).is_some()
    }

    /// Number of open ports.
    pub fn open_ports(&self) -> usize {
        self.ports.pread().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_mtype::{IntRange, MtypeGraph};
    use mockingbird_values::Endian;
    use mockingbird_wire::Message;

    #[test]
    fn queue_ports_deliver_in_order() {
        let node = Node::new("a");
        let (port, rx) = node.queue_port();
        for k in 0..10 {
            node.send(port, MValue::Int(k)).unwrap();
        }
        for k in 0..10 {
            assert_eq!(rx.recv().unwrap(), MValue::Int(k));
        }
    }

    #[test]
    fn unknown_and_closed_ports_error() {
        let node = Node::new("a");
        assert!(node.send(PortRef(99), MValue::Unit).is_err());
        let (port, _rx) = node.queue_port();
        assert_eq!(node.open_ports(), 1);
        assert!(node.close_port(port));
        assert!(!node.close_port(port));
        assert!(node.send(port, MValue::Unit).is_err());
    }

    #[test]
    fn node_objects_dispatch() {
        let node = Node::new("server");
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph.clone(), rec, rec));
        node.register_object(b"echo".to_vec(), servant, ops);

        let op = WireOp::new(graph, rec, rec);
        let body = op
            .encode(rec, &MValue::Record(vec![MValue::Int(5)]), Endian::Little)
            .unwrap();
        let req = Message::request(1, true, b"echo".to_vec(), "echo", Endian::Little, body);
        let reply = node.dispatcher().dispatch(&req).unwrap();
        let out = op.decode(rec, &reply.body, reply.endian).unwrap();
        assert_eq!(out, MValue::Record(vec![MValue::Int(5)]));
    }

    #[test]
    fn port_ids_are_distinct() {
        let node = Node::new("a");
        let (p1, _r1) = node.queue_port();
        let (p2, _r2) = node.queue_port();
        assert_ne!(p1, p2);
    }
}
