//! Client-side remote references.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use mockingbird_values::{Endian, MValue};
use mockingbird_wire::{CdrReader, Message, MessageKind, ReplyStatus};

use crate::dispatch::WireOp;
use crate::error::RuntimeError;
use crate::metrics;
use crate::options::CallOptions;
use crate::transport::Connection;

/// The client side of a remote object: holds a connection, the target's
/// object key, and the wire types of each operation. `invoke` encodes the
/// argument record, frames a GIOP Request, and decodes the Reply.
///
/// A reference carries default [`CallOptions`] (set with
/// [`with_options`](RemoteRef::with_options)); `invoke_with` overrides
/// them per call. When the options hold a retry policy, calls to
/// operations declared [idempotent](WireOp::idempotent) are re-sent
/// after transport failures and expired deadlines, with bounded
/// exponential backoff between attempts.
pub struct RemoteRef {
    connection: Arc<dyn Connection>,
    object_key: Vec<u8>,
    ops: HashMap<String, WireOp>,
    endian: Endian,
    next_request: AtomicU32,
    options: CallOptions,
}

impl RemoteRef {
    /// Builds a reference to `object_key` reachable over `connection`.
    pub fn new(
        connection: Arc<dyn Connection>,
        object_key: impl Into<Vec<u8>>,
        ops: HashMap<String, WireOp>,
        endian: Endian,
    ) -> Self {
        RemoteRef {
            connection,
            object_key: object_key.into(),
            ops,
            endian,
            next_request: AtomicU32::new(1),
            options: CallOptions::default(),
        }
    }

    /// Sets the default per-call options for this reference.
    #[must_use]
    pub fn with_options(mut self, options: CallOptions) -> Self {
        self.options = options;
        self
    }

    /// The default per-call options.
    pub fn options(&self) -> &CallOptions {
        &self.options
    }

    /// The operations this reference can invoke.
    pub fn operations(&self) -> impl Iterator<Item = &str> {
        self.ops.keys().map(String::as_str)
    }

    /// Invokes `operation` with an argument record under the reference's
    /// default options, awaiting the result record.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownOperation`] when the operation is
    /// not declared, [`RuntimeError::Application`] when the remote
    /// servant raised, [`RuntimeError::Timeout`] when the deadline
    /// elapses, and transport/protocol errors otherwise.
    pub fn invoke(&self, operation: &str, args: &MValue) -> Result<MValue, RuntimeError> {
        let options = self.options.clone();
        self.invoke_with(operation, args, &options)
    }

    /// Invokes `operation` under explicit per-call options.
    ///
    /// # Errors
    ///
    /// As [`invoke`](RemoteRef::invoke).
    pub fn invoke_with(
        &self,
        operation: &str,
        args: &MValue,
        options: &CallOptions,
    ) -> Result<MValue, RuntimeError> {
        let op = self
            .ops
            .get(operation)
            .ok_or_else(|| RuntimeError::UnknownOperation(operation.to_string()))?;
        let body = op.encode(op.args_ty, args, self.endian)?;
        // Retries are opt-in twice over: the options must carry a policy
        // and the operation must be declared idempotent.
        let policy = if op.idempotent {
            options.retry.as_ref()
        } else {
            None
        };
        let max_retries = policy.map_or(0, |p| p.max_retries);
        let mut attempt = 0u32;
        loop {
            match self.invoke_once(op, operation, body.clone(), options) {
                Err(RuntimeError::Transport(_) | RuntimeError::Timeout(_))
                    if attempt < max_retries =>
                {
                    metrics::global().add_retry();
                    std::thread::sleep(policy.unwrap().backoff(attempt));
                    attempt += 1;
                }
                outcome => return outcome,
            }
        }
    }

    fn invoke_once(
        &self,
        op: &WireOp,
        operation: &str,
        body: Vec<u8>,
        options: &CallOptions,
    ) -> Result<MValue, RuntimeError> {
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let msg = Message::request(
            request_id,
            true,
            self.object_key.clone(),
            operation,
            self.endian,
            body,
        );
        metrics::global().add_request();
        let reply = self
            .connection
            .call_with(&msg, options)?
            .ok_or_else(|| RuntimeError::Protocol("expected a reply".into()))?;
        let MessageKind::Reply {
            request_id: rid,
            status,
        } = reply.kind
        else {
            return Err(RuntimeError::Protocol("expected a Reply message".into()));
        };
        if rid != request_id {
            return Err(RuntimeError::Protocol(format!(
                "reply correlates to request {rid}, expected {request_id}"
            )));
        }
        metrics::global().add_reply();
        match status {
            ReplyStatus::NoException => op.decode(op.result_ty, &reply.body, reply.endian),
            ReplyStatus::UserException | ReplyStatus::SystemException => {
                let mut r = CdrReader::new(&reply.body, reply.endian);
                let text = r
                    .get_bytes()
                    .map(|b| String::from_utf8_lossy(b).into_owned())
                    .unwrap_or_else(|_| "remote exception".to_string());
                Err(if status == ReplyStatus::UserException {
                    RuntimeError::Application(text)
                } else {
                    RuntimeError::Protocol(text)
                })
            }
        }
    }

    /// Sends a oneway message: no reply is awaited.
    ///
    /// # Errors
    ///
    /// Returns transport failures; remote failures are invisible
    /// (messaging semantics).
    pub fn send(&self, operation: &str, args: &MValue) -> Result<(), RuntimeError> {
        let op = self
            .ops
            .get(operation)
            .ok_or_else(|| RuntimeError::UnknownOperation(operation.to_string()))?;
        let body = op.encode(op.args_ty, args, self.endian)?;
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let msg = Message::request(
            request_id,
            false,
            self.object_key.clone(),
            operation,
            self.endian,
            body,
        );
        metrics::global().add_request();
        self.connection.call_with(&msg, &self.options)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Dispatcher, Servant, WireServant};
    use crate::transport::InMemoryConnection;
    use mockingbird_mtype::{IntRange, MtypeGraph};

    fn setup() -> RemoteRef {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let args = g.record(vec![i, i]);
        let result = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|op: &str, args: MValue| {
            let MValue::Record(items) = args else {
                unreachable!()
            };
            let (MValue::Int(a), MValue::Int(b)) = (&items[0], &items[1]) else {
                unreachable!()
            };
            match op {
                "add" => Ok(MValue::Record(vec![MValue::Int(a + b)])),
                "div" if *b == 0 => Err(RuntimeError::Application("divide by zero".into())),
                "div" => Ok(MValue::Record(vec![MValue::Int(a / b)])),
                other => Err(RuntimeError::UnknownOperation(other.into())),
            }
        });
        let op = WireOp::new(graph, args, result);
        let mut ops = HashMap::new();
        ops.insert("add".to_string(), op.clone());
        ops.insert("div".to_string(), op.clone());
        let d = Arc::new(Dispatcher::new());
        let mut server_ops = HashMap::new();
        server_ops.insert("add".to_string(), op.clone());
        server_ops.insert("div".to_string(), op);
        d.register(b"calc".to_vec(), WireServant::new(servant, server_ops));
        RemoteRef::new(
            Arc::new(InMemoryConnection::new(d)),
            b"calc".to_vec(),
            ops,
            Endian::Little,
        )
    }

    fn args(a: i128, b: i128) -> MValue {
        MValue::Record(vec![MValue::Int(a), MValue::Int(b)])
    }

    #[test]
    fn invoke_round_trip() {
        let r = setup();
        assert_eq!(
            r.invoke("add", &args(20, 22)).unwrap(),
            MValue::Record(vec![MValue::Int(42)])
        );
        assert_eq!(
            r.invoke("div", &args(10, 3)).unwrap(),
            MValue::Record(vec![MValue::Int(3)])
        );
    }

    #[test]
    fn application_exceptions_propagate() {
        let r = setup();
        let e = r.invoke("div", &args(1, 0)).unwrap_err();
        assert!(matches!(e, RuntimeError::Application(m) if m.contains("divide by zero")));
    }

    #[test]
    fn unknown_operation_is_local() {
        let r = setup();
        assert!(matches!(
            r.invoke("pow", &args(1, 2)).unwrap_err(),
            RuntimeError::UnknownOperation(_)
        ));
    }

    #[test]
    fn oneway_send() {
        let r = setup();
        r.send("add", &args(1, 2)).unwrap();
    }

    #[test]
    fn request_ids_increment() {
        let r = setup();
        r.invoke("add", &args(0, 0)).unwrap();
        r.invoke("add", &args(0, 0)).unwrap();
        assert!(r.next_request.load(Ordering::Relaxed) >= 3);
    }
}
