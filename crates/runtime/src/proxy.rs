//! Client-side remote references.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mockingbird_obs::{SpanKind, SpanRecord, TraceContext};
use mockingbird_rng::StdRng;
use mockingbird_values::{Endian, MValue};
use mockingbird_wire::{CdrReader, HandshakeInfo, Message, MessageKind, ReplyStatus, WireDeadline};

use crate::dispatch::{interface_fingerprint, WireOp};
use crate::error::RuntimeError;
use crate::metrics::MetricsRegistry;
use crate::options::{CallOptions, Criticality};
use crate::pool::BufferPool;
use crate::transport::Connection;

/// Per-thread retry-jitter stream. Each thread seeds differently (the
/// golden-ratio stride keeps seeds well spread), so clients that failed
/// at the same instant back off to different points in the window; the
/// stream does not need to be reproducible across runs — chaos tests
/// that want reproducibility disable jitter or pin their own policy.
static RETRY_SEED: AtomicU64 = AtomicU64::new(0x5EED);
thread_local! {
    static RETRY_RNG: RefCell<StdRng> = RefCell::new(StdRng::seed_from_u64(
        RETRY_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed),
    ));
}

/// Failover attempts granted to version-skew failures over a dynamic
/// endpoint set when the caller set no retry policy of their own. Two
/// re-routes cover the common case (one skewed replica out of three)
/// without letting a fully-skewed cluster spin.
const DEFAULT_FAILOVER_RETRIES: u32 = 2;

/// The client side of a remote object: holds a connection, the target's
/// object key, and the wire types of each operation. `invoke` encodes the
/// argument record, frames a GIOP Request, and decodes the Reply.
///
/// A reference carries default [`CallOptions`] (set with
/// [`with_options`](RemoteRef::with_options)); `invoke_with` overrides
/// them per call. When the options hold a retry policy, calls to
/// operations declared [idempotent](WireOp::idempotent) are re-sent
/// after transport failures and expired deadlines, with bounded
/// exponential backoff between attempts.
pub struct RemoteRef {
    connection: Arc<dyn Connection>,
    object_key: Vec<u8>,
    ops: HashMap<String, WireOp>,
    endian: Endian,
    next_request: AtomicU32,
    options: CallOptions,
    buffers: BufferPool,
    metrics: Arc<MetricsRegistry>,
}

impl RemoteRef {
    /// Builds a reference to `object_key` reachable over `connection`.
    /// The reference records into the connection's metrics registry when
    /// it has one (pools and multiplexed links do), otherwise into a
    /// fresh private registry.
    pub fn new(
        connection: Arc<dyn Connection>,
        object_key: impl Into<Vec<u8>>,
        mut ops: HashMap<String, WireOp>,
        endian: Endian,
    ) -> Self {
        let metrics = connection.metrics().unwrap_or_else(MetricsRegistry::shared);
        for op in ops.values_mut() {
            op.attach_metrics(&metrics);
        }
        RemoteRef {
            connection,
            object_key: object_key.into(),
            ops,
            endian,
            next_request: AtomicU32::new(1),
            options: CallOptions::default(),
            buffers: BufferPool::new().with_metrics(&metrics),
            metrics,
        }
    }

    /// The registry this reference records requests, retries, latency
    /// histograms, and spans into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Rebinds the reference (and its operations and buffer pool) to an
    /// explicit registry, overriding the one inherited from the
    /// connection.
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        for op in self.ops.values_mut() {
            op.rebind_metrics(&registry);
        }
        self.buffers = BufferPool::new().with_metrics(&registry);
        self.metrics = registry;
        self
    }

    /// The reference's request-buffer pool. Fused stubs check encoders
    /// out of this pool and return request bodies to it, so a warmed
    /// reference marshals without allocating.
    pub fn buffers(&self) -> &BufferPool {
        &self.buffers
    }

    /// The byte order this reference marshals with.
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// Sets the default per-call options for this reference.
    #[must_use]
    pub fn with_options(mut self, options: CallOptions) -> Self {
        self.options = options;
        self
    }

    /// The default per-call options.
    pub fn options(&self) -> &CallOptions {
        &self.options
    }

    /// The operations this reference can invoke.
    pub fn operations(&self) -> impl Iterator<Item = &str> {
        self.ops.keys().map(String::as_str)
    }

    /// Whether `operation` is declared idempotent (and so participates
    /// in retry policies).
    pub fn is_idempotent(&self, operation: &str) -> bool {
        self.ops.get(operation).is_some_and(|op| op.idempotent)
    }

    /// Whether fused wire programs may be used over this reference's
    /// connection (cleared by the handshake when the peers' program
    /// caches disagree; generated stubs consult this before taking the
    /// fused marshal path).
    pub fn fused_allowed(&self) -> bool {
        self.connection.fused_allowed()
    }

    /// The handshake this reference's declarations imply: the interface
    /// fingerprint of its operation table plus the caller's marshal-rules
    /// fingerprint.
    pub fn handshake_info(&self, rules_fp: u64) -> HandshakeInfo {
        HandshakeInfo::new(interface_fingerprint(&self.ops), rules_fp)
    }

    /// Invokes `operation` with an argument record under the reference's
    /// default options, awaiting the result record.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownOperation`] when the operation is
    /// not declared, [`RuntimeError::Application`] when the remote
    /// servant raised, [`RuntimeError::Timeout`] when the deadline
    /// elapses, and transport/protocol errors otherwise.
    pub fn invoke(&self, operation: &str, args: &MValue) -> Result<MValue, RuntimeError> {
        let options = self.options.clone();
        self.invoke_with(operation, args, &options)
    }

    /// Invokes `operation` under explicit per-call options.
    ///
    /// # Errors
    ///
    /// As [`invoke`](RemoteRef::invoke).
    pub fn invoke_with(
        &self,
        operation: &str,
        args: &MValue,
        options: &CallOptions,
    ) -> Result<MValue, RuntimeError> {
        let op = self
            .ops
            .get(operation)
            .ok_or_else(|| RuntimeError::UnknownOperation(operation.to_string()))?;
        let mut enc = self.buffers.encoder(self.endian);
        op.encode_with(enc.writer(), op.args_ty, args)?;
        let body = enc.finish();
        let (reply_body, reply_endian) =
            self.invoke_body_with(operation, body, op.idempotent, options)?;
        op.decode(op.result_ty, &reply_body, reply_endian)
    }

    /// Invokes `operation` with a pre-encoded CDR request body, returning
    /// the raw reply body and its byte order. This is the entry point of
    /// the fused data plane: compiled stubs marshal straight into a
    /// pooled buffer and hand the bytes here, bypassing the interpretive
    /// value pipeline entirely.
    ///
    /// The body buffer is recycled into [`buffers`](RemoteRef::buffers)
    /// when the call completes (it is reused as-is across retry
    /// attempts — no per-attempt clone).
    ///
    /// # Errors
    ///
    /// As [`invoke`](RemoteRef::invoke), except conversion errors, which
    /// cannot arise from raw bytes.
    pub fn invoke_body_with(
        &self,
        operation: &str,
        body: Vec<u8>,
        idempotent: bool,
        options: &CallOptions,
    ) -> Result<(Vec<u8>, Endian), RuntimeError> {
        // Retries are opt-in twice over: the options must carry a policy
        // and the operation must be declared idempotent.
        let policy = if idempotent {
            options.retry.as_ref()
        } else {
            None
        };
        // Hedging executes the request twice when the race is close, so
        // it is idempotent-only for the same reason retries are.
        let stripped;
        let options = if options.hedge.is_some() && !idempotent {
            stripped = CallOptions {
                hedge: None,
                ..options.clone()
            };
            &stripped
        } else {
            options
        };
        let max_retries = policy.map_or(0, |p| p.max_retries);
        // Over a dynamic endpoint set a failed attempt may succeed on a
        // *different* replica, so connect-time failures get a failover
        // budget even without an explicit retry policy. Version skew in
        // particular: the skewed replica is quarantined by the pool, so
        // the re-resolved retry routes elsewhere — and since the skewed
        // handshake never executed the request, retrying is safe even
        // for non-idempotent operations.
        let failover = self.connection.supports_failover();
        let skew_budget = if failover {
            options
                .retry
                .as_ref()
                .map_or(DEFAULT_FAILOVER_RETRIES, |p| p.max_retries.max(1))
        } else {
            0
        };
        // One logical call mints one trace context; every retry attempt
        // (and any hedged duplicate further down) is a child span of the
        // same trace, so a flaky call reads as one story in the span log.
        let trace = self
            .metrics
            .tracing_enabled()
            .then(TraceContext::root)
            .map(|t| t.with_sampled(true));
        let started = Instant::now();
        let budget = self.connection.retry_budget();
        let mut attempt = 0u32;
        let mut body = body;
        loop {
            let attempt_trace = trace.map(|t| t.child());
            // Deadline deduction: every attempt (the first included) gets
            // only what remains of the caller's budget, so a retry after
            // a slow failure carries a shorter wire deadline than the
            // original send. A spent budget fails fast here instead of
            // shipping work the server is obliged to refuse.
            let restamped;
            let (current, spent) = match options.deadline {
                Some(total) => {
                    let remaining = total.saturating_sub(started.elapsed());
                    if remaining.is_zero() {
                        (options, true)
                    } else {
                        restamped = CallOptions {
                            deadline: Some(remaining),
                            ..options.clone()
                        };
                        (&restamped, false)
                    }
                }
                None => (options, false),
            };
            let (recovered, mut outcome) = if spent {
                (
                    body,
                    Err(RuntimeError::DeadlineExpired(
                        "call budget spent before the attempt could start".into(),
                    )),
                )
            } else {
                self.invoke_once_raw(operation, body, current, attempt_trace)
            };
            // Overloaded sheds are retryable by design: the server
            // answered *instead of executing*, so re-sending after
            // backoff is safe even mid-overload. Expired deadlines are
            // not: the budget is gone, no attempt can still help.
            let transient = attempt < max_retries
                && matches!(
                    outcome,
                    Err(RuntimeError::Transport(_)
                        | RuntimeError::Timeout(_)
                        | RuntimeError::Overloaded(_))
                );
            // Version skew is a connect-time verdict — the request
            // was never executed, so failing over to another replica
            // is safe regardless of idempotence. No backoff either:
            // the pool already quarantined the skewed endpoint, so
            // the retry routes to a different replica immediately.
            let skew =
                attempt < skew_budget && matches!(outcome, Err(RuntimeError::VersionSkew(_)));
            if transient || skew {
                // Every re-send amplifies offered load, so it buys a
                // token from the pool's retry budget first; an empty
                // bucket degrades the call to its single attempt and a
                // distinct fail-fast error.
                if budget.as_ref().is_none_or(|b| b.try_withdraw()) {
                    self.metrics.add_retry();
                    if skew || failover {
                        self.metrics.add_mesh_failover();
                    }
                    if transient {
                        let pause = RETRY_RNG.with(|rng| {
                            policy
                                .unwrap()
                                .jittered_backoff(attempt, &mut rng.borrow_mut())
                        });
                        // Backoff never sleeps past the caller's
                        // deadline: saturate at whatever budget remains.
                        let pause = match options.deadline {
                            Some(total) => pause.min(total.saturating_sub(started.elapsed())),
                            None => pause,
                        };
                        std::thread::sleep(pause);
                    }
                    attempt += 1;
                    body = recovered;
                    continue;
                }
                self.metrics.add_retry_budget_exhausted();
                let cause = outcome
                    .as_ref()
                    .err()
                    .map_or_else(String::new, ToString::to_string);
                outcome = Err(RuntimeError::RetryBudgetExhausted(format!(
                    "no token to retry after: {cause}"
                )));
            }
            let bytes_out = recovered.len() as u64;
            self.buffers.put(recovered);
            let elapsed = started.elapsed();
            self.metrics.record_client(operation, elapsed);
            let duration_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
            if let Some(t) = trace.filter(|t| t.sampled && self.metrics.wants_span(duration_us)) {
                let mut span = SpanRecord::new(t, SpanKind::Client, operation);
                span.start_us = self.metrics.spans().now_us().saturating_sub(duration_us);
                span.duration_us = duration_us;
                span.fused = self.fused_allowed();
                span.bytes_out = bytes_out;
                match &outcome {
                    Ok((reply, _)) => span.bytes_in = reply.len() as u64,
                    Err(e) => span.error = Some(e.to_string()),
                }
                self.metrics.record_span(span);
            }
            return outcome;
        }
    }

    /// One attempt: frames the body, calls, correlates the reply. Always
    /// hands the request body back so the caller can retry or pool it.
    #[allow(clippy::type_complexity)]
    fn invoke_once_raw(
        &self,
        operation: &str,
        body: Vec<u8>,
        options: &CallOptions,
        trace: Option<TraceContext>,
    ) -> (Vec<u8>, Result<(Vec<u8>, Endian), RuntimeError>) {
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let mut msg = Message::request(
            request_id,
            true,
            self.object_key.clone(),
            operation,
            self.endian,
            body,
        );
        if let Some(t) = trace {
            msg = msg.with_trace(t);
        }
        // The deadline context slot rides along only when the caller set
        // a budget or marked the call sheddable, so deadline-free
        // critical traffic stays byte-identical to the pre-deadline wire
        // format.
        let sheddable = options.criticality == Criticality::Sheddable;
        if options.deadline.is_some() || sheddable {
            msg = msg.with_deadline(match options.deadline {
                Some(d) => WireDeadline::new(d, sheddable),
                None => WireDeadline::sheddable_only(),
            });
        }
        self.metrics.add_request();
        let outcome = self.connection.call_with(&msg, options);
        let body = msg.body;
        let result = (|| {
            let reply =
                outcome?.ok_or_else(|| RuntimeError::Protocol("expected a reply".into()))?;
            let MessageKind::Reply {
                request_id: rid,
                status,
            } = reply.kind
            else {
                return Err(RuntimeError::Protocol("expected a Reply message".into()));
            };
            if rid != request_id {
                return Err(RuntimeError::Protocol(format!(
                    "reply correlates to request {rid}, expected {request_id}"
                )));
            }
            self.metrics.add_reply();
            match status {
                ReplyStatus::NoException => Ok((reply.body, reply.endian)),
                ReplyStatus::Overloaded => {
                    self.metrics.add_overload();
                    let mut r = CdrReader::new(&reply.body, reply.endian);
                    let text = r
                        .get_bytes()
                        .map(|b| String::from_utf8_lossy(b).into_owned())
                        .unwrap_or_else(|_| "request shed by the server".to_string());
                    Err(RuntimeError::Overloaded(text))
                }
                ReplyStatus::DeadlineExpired => {
                    let mut r = CdrReader::new(&reply.body, reply.endian);
                    let text = r
                        .get_bytes()
                        .map(|b| String::from_utf8_lossy(b).into_owned())
                        .unwrap_or_else(|_| "deadline expired before dispatch".to_string());
                    Err(RuntimeError::DeadlineExpired(text))
                }
                ReplyStatus::UserException | ReplyStatus::SystemException => {
                    let mut r = CdrReader::new(&reply.body, reply.endian);
                    let text = r
                        .get_bytes()
                        .map(|b| String::from_utf8_lossy(b).into_owned())
                        .unwrap_or_else(|_| "remote exception".to_string());
                    Err(if status == ReplyStatus::UserException {
                        RuntimeError::Application(text)
                    } else {
                        RuntimeError::Protocol(text)
                    })
                }
            }
        })();
        (body, result)
    }

    /// Sends a oneway message: no reply is awaited.
    ///
    /// # Errors
    ///
    /// Returns transport failures; remote failures are invisible
    /// (messaging semantics).
    pub fn send(&self, operation: &str, args: &MValue) -> Result<(), RuntimeError> {
        let op = self
            .ops
            .get(operation)
            .ok_or_else(|| RuntimeError::UnknownOperation(operation.to_string()))?;
        let mut enc = self.buffers.encoder(self.endian);
        op.encode_with(enc.writer(), op.args_ty, args)?;
        self.send_body(operation, enc.finish())
    }

    /// Sends a oneway message with a pre-encoded CDR body (the fused
    /// counterpart of [`send`](RemoteRef::send)); the buffer is pooled
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Returns transport failures.
    pub fn send_body(&self, operation: &str, body: Vec<u8>) -> Result<(), RuntimeError> {
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let msg = Message::request(
            request_id,
            false,
            self.object_key.clone(),
            operation,
            self.endian,
            body,
        );
        self.metrics.add_request();
        let outcome = self.connection.call_with(&msg, &self.options);
        self.buffers.put(msg.body);
        outcome?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Dispatcher, Servant, WireServant};
    use crate::transport::InMemoryConnection;
    use mockingbird_mtype::{IntRange, MtypeGraph};

    fn setup() -> RemoteRef {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let args = g.record(vec![i, i]);
        let result = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|op: &str, args: MValue| {
            let MValue::Record(items) = args else {
                unreachable!()
            };
            let (MValue::Int(a), MValue::Int(b)) = (&items[0], &items[1]) else {
                unreachable!()
            };
            match op {
                "add" => Ok(MValue::Record(vec![MValue::Int(a + b)])),
                "div" if *b == 0 => Err(RuntimeError::Application("divide by zero".into())),
                "div" => Ok(MValue::Record(vec![MValue::Int(a / b)])),
                other => Err(RuntimeError::UnknownOperation(other.into())),
            }
        });
        let op = WireOp::new(graph, args, result);
        let mut ops = HashMap::new();
        ops.insert("add".to_string(), op.clone());
        ops.insert("div".to_string(), op.clone());
        let d = Arc::new(Dispatcher::new());
        let mut server_ops = HashMap::new();
        server_ops.insert("add".to_string(), op.clone());
        server_ops.insert("div".to_string(), op);
        d.register(b"calc".to_vec(), WireServant::new(servant, server_ops));
        RemoteRef::new(
            Arc::new(InMemoryConnection::new(d)),
            b"calc".to_vec(),
            ops,
            Endian::Little,
        )
    }

    fn args(a: i128, b: i128) -> MValue {
        MValue::Record(vec![MValue::Int(a), MValue::Int(b)])
    }

    #[test]
    fn invoke_round_trip() {
        let r = setup();
        assert_eq!(
            r.invoke("add", &args(20, 22)).unwrap(),
            MValue::Record(vec![MValue::Int(42)])
        );
        assert_eq!(
            r.invoke("div", &args(10, 3)).unwrap(),
            MValue::Record(vec![MValue::Int(3)])
        );
    }

    #[test]
    fn application_exceptions_propagate() {
        let r = setup();
        let e = r.invoke("div", &args(1, 0)).unwrap_err();
        assert!(matches!(e, RuntimeError::Application(m) if m.contains("divide by zero")));
    }

    #[test]
    fn unknown_operation_is_local() {
        let r = setup();
        assert!(matches!(
            r.invoke("pow", &args(1, 2)).unwrap_err(),
            RuntimeError::UnknownOperation(_)
        ));
    }

    #[test]
    fn oneway_send() {
        let r = setup();
        r.send("add", &args(1, 2)).unwrap();
    }

    #[test]
    fn version_skew_fails_over_to_another_replica() {
        use crate::pool::{ConnectionPool, Connector};
        use crate::resolver::{ObjectName, ResolvedEndpoint, Resolver};
        use std::net::SocketAddr;

        /// A dynamic directory with a fixed answer — enough to put the
        /// pool (and therefore the reference) into failover mode.
        struct TwoReplicas(Vec<SocketAddr>);
        impl Resolver for TwoReplicas {
            fn resolve(&self, _name: &ObjectName) -> Vec<ResolvedEndpoint> {
                self.0
                    .iter()
                    .copied()
                    .map(ResolvedEndpoint::plain)
                    .collect()
            }
            fn version(&self) -> u64 {
                1
            }
        }

        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let a = g.record(vec![i, i]);
        let res = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| {
            let MValue::Record(items) = v else {
                unreachable!()
            };
            let (MValue::Int(x), MValue::Int(y)) = (&items[0], &items[1]) else {
                unreachable!()
            };
            Ok(MValue::Record(vec![MValue::Int(x + y)]))
        });
        let op = WireOp::new(graph, a, res);
        let mut ops = HashMap::new();
        ops.insert("add".to_string(), op.clone());
        let d = Arc::new(Dispatcher::new());
        let mut server_ops = HashMap::new();
        server_ops.insert("add".to_string(), op);
        d.register(b"calc".to_vec(), WireServant::new(servant, server_ops));

        let skewed: SocketAddr = "127.0.0.1:21".parse().unwrap();
        let good: SocketAddr = "127.0.0.1:22".parse().unwrap();
        let connector: Connector = Arc::new(move |addr| {
            if addr == skewed {
                Err(RuntimeError::VersionSkew(
                    "replica built from older declarations".into(),
                ))
            } else {
                Ok(Arc::new(InMemoryConnection::new(d.clone())) as Arc<dyn Connection>)
            }
        });
        let pool = ConnectionPool::builder(Vec::new())
            .with_slots(1)
            .with_connector(connector)
            .with_resolver(
                Arc::new(TwoReplicas(vec![skewed, good])),
                ObjectName::any("calc"),
            )
            .build()
            .unwrap();
        let r = RemoteRef::new(Arc::new(pool), b"calc".to_vec(), ops, Endian::Little);
        // Routing starts on the skewed replica; the skew verdict must
        // quarantine it and the call fail over — no retry policy needed,
        // and "add" is not even idempotent (skew never executed it).
        assert_eq!(
            r.invoke("add", &args(20, 22)).unwrap(),
            MValue::Record(vec![MValue::Int(42)])
        );
        let s = r.metrics().snapshot();
        assert_eq!(s.mesh_failovers, 1, "exactly one re-route");
        assert_eq!(s.retries, 1);
    }

    #[test]
    fn request_buffers_are_pooled_across_calls() {
        let r = setup();
        r.invoke("add", &args(1, 2)).unwrap();
        // The request body came back to the pool after the first call…
        assert_eq!(r.buffers().idle(), 1);
        r.invoke("add", &args(3, 4)).unwrap();
        r.send("add", &args(5, 6)).unwrap();
        // …and steady state never grows beyond one resting buffer.
        assert_eq!(r.buffers().idle(), 1);
    }

    #[test]
    fn invoke_body_round_trip() {
        let r = setup();
        let op = r.ops.get("add").unwrap();
        let body = op
            .encode(op.args_ty, &args(20, 22), Endian::Little)
            .unwrap();
        let opts = CallOptions::default();
        let (reply, endian) = r.invoke_body_with("add", body, false, &opts).unwrap();
        assert_eq!(
            op.decode(op.result_ty, &reply, endian).unwrap(),
            MValue::Record(vec![MValue::Int(42)])
        );
    }

    /// Sheds the first `sheds` calls with an `Overloaded` reply, then
    /// delegates — the client-visible shape of server load shedding.
    struct ShedFirst {
        inner: Arc<dyn Connection>,
        sheds: AtomicU32,
    }

    impl Connection for ShedFirst {
        fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
            self.call_with(msg, &CallOptions::default())
        }

        fn call_with(
            &self,
            msg: &Message,
            options: &CallOptions,
        ) -> Result<Option<Message>, RuntimeError> {
            let remaining = self.sheds.load(Ordering::SeqCst);
            if remaining > 0 {
                self.sheds.store(remaining - 1, Ordering::SeqCst);
                let MessageKind::Request { request_id, .. } = msg.kind else {
                    panic!("clients send requests")
                };
                return Ok(Some(Message::reply(
                    request_id,
                    ReplyStatus::Overloaded,
                    msg.endian,
                    Vec::new(),
                )));
            }
            self.inner.call_with(msg, options)
        }
    }

    fn shedding_ref(sheds: u32) -> RemoteRef {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let rec = g.record(vec![i, i]);
        let result = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, args: MValue| {
            let MValue::Record(items) = args else {
                unreachable!()
            };
            let (MValue::Int(a), MValue::Int(b)) = (&items[0], &items[1]) else {
                unreachable!()
            };
            Ok(MValue::Record(vec![MValue::Int(a + b)]))
        });
        let op = WireOp::new(graph, rec, result).idempotent();
        let mut ops = HashMap::new();
        ops.insert("add".to_string(), op.clone());
        let d = Arc::new(Dispatcher::new());
        let mut server_ops = HashMap::new();
        server_ops.insert("add".to_string(), op);
        d.register(b"calc".to_vec(), WireServant::new(servant, server_ops));
        RemoteRef::new(
            Arc::new(ShedFirst {
                inner: Arc::new(InMemoryConnection::new(d)),
                sheds: AtomicU32::new(sheds),
            }),
            b"calc".to_vec(),
            ops,
            Endian::Little,
        )
    }

    #[test]
    fn overloaded_reply_is_a_typed_error_without_retry() {
        let r = shedding_ref(1);
        let e = r.invoke("add", &args(1, 2)).unwrap_err();
        assert!(matches!(e, RuntimeError::Overloaded(_)), "got {e}");
    }

    #[test]
    fn overloaded_reply_is_retried_for_idempotent_ops() {
        use crate::options::RetryPolicy;
        let r = shedding_ref(2);
        let opts = CallOptions::new().with_retry(RetryPolicy {
            max_retries: 3,
            initial_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(2),
            jitter: true,
        });
        let v = r.invoke_with("add", &args(20, 22), &opts).unwrap();
        assert_eq!(v, MValue::Record(vec![MValue::Int(42)]));
    }

    #[test]
    fn handshake_info_reflects_the_op_table() {
        let r = setup();
        let info = r.handshake_info(7);
        assert_eq!(info.rules_fp, 7);
        assert_eq!(
            info.interface_fp,
            interface_fingerprint(&r.ops),
            "info carries the table's fingerprint"
        );
        assert!(r.fused_allowed(), "plain transports allow fused programs");
    }

    #[test]
    fn request_ids_increment() {
        let r = setup();
        r.invoke("add", &args(0, 0)).unwrap();
        r.invoke("add", &args(0, 0)).unwrap();
        assert!(r.next_request.load(Ordering::Relaxed) >= 3);
    }
}
