//! Deterministic fault injection for transports.
//!
//! A [`ChaosConnection`] wraps any [`Connection`] and injects faults
//! drawn from a [`ChaosSchedule`] — a seeded stream over a
//! [`ChaosConfig`]'s rates. The schedule is *fully determined by the
//! seed*: replaying the same seed against the same call sequence yields
//! byte-for-byte the same faults, so every chaos test prints its seed
//! and any failure reproduces exactly.
//!
//! The fault model is **detected-at-link**: truncated and corrupted
//! frames surface as [`RuntimeError::Transport`], exactly as a real
//! framing layer rejects a frame whose declared length or payload does
//! not check out. A fault can lose a request, lose or damage a reply,
//! delay an exchange, or tear the connection down — but it can never
//! hand the caller a wrong payload, which is what the GIOP length
//! header and CDR typing buy in the real stack.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mockingbird_rng::StdRng;
use mockingbird_wire::Message;

use crate::error::RuntimeError;
use crate::metrics::MetricsRegistry;
use crate::options::CallOptions;
use crate::sync::LockExt;
use crate::transport::Connection;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The request never reaches the server.
    Drop,
    /// The exchange is delayed by the given duration before proceeding.
    Delay(Duration),
    /// The reply frame is cut short; the link detects the short frame.
    Truncate,
    /// The reply frame is damaged in flight; the link detects it.
    Corrupt,
    /// The connection tears down; this and all later calls fail.
    Disconnect,
}

/// Per-call fault probabilities for a [`ChaosSchedule`].
///
/// Rates are evaluated in order (drop, delay, truncate, corrupt,
/// disconnect) against a single uniform draw, so they partition the
/// unit interval and must sum to at most 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability a request is dropped.
    pub drop_rate: f64,
    /// Probability an exchange is delayed.
    pub delay_rate: f64,
    /// Upper bound on an injected delay (uniform in `0..=max_delay`).
    pub max_delay: Duration,
    /// Probability a reply is truncated.
    pub truncate_rate: f64,
    /// Probability a reply is corrupted.
    pub corrupt_rate: f64,
    /// Probability the connection disconnects.
    pub disconnect_rate: f64,
}

impl ChaosConfig {
    /// No faults at all (the wrapper becomes a passthrough).
    #[must_use]
    pub fn none() -> Self {
        ChaosConfig {
            drop_rate: 0.0,
            delay_rate: 0.0,
            max_delay: Duration::ZERO,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
            disconnect_rate: 0.0,
        }
    }

    /// A mixed workload with total fault probability `rate`, split
    /// 40% drops, 20% delays (up to 2 ms), 15% truncations, 15%
    /// corruptions, and 10% disconnects — the blend the X7 resilience
    /// experiment injects at 5% and 20%.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    #[must_use]
    pub fn fault_rate(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} out of range"
        );
        ChaosConfig {
            drop_rate: rate * 0.40,
            delay_rate: rate * 0.20,
            max_delay: Duration::from_millis(2),
            truncate_rate: rate * 0.15,
            corrupt_rate: rate * 0.15,
            disconnect_rate: rate * 0.10,
        }
    }

    fn total(&self) -> f64 {
        self.drop_rate
            + self.delay_rate
            + self.truncate_rate
            + self.corrupt_rate
            + self.disconnect_rate
    }
}

/// Applies a fault directly to an encoded wire frame, seeded so the
/// same `(fault, seed)` pair always damages the same bytes. The
/// reactor's frame state machines are tested against frames mangled by
/// this helper: truncation must surface as a mid-frame close, byte
/// corruption as a protocol error or a parseable-but-wrong frame —
/// never a panic or an oversized allocation.
///
/// `Delay` and `Disconnect` are timing faults with no byte-level
/// counterpart; they leave the frame untouched.
pub fn wire_fault(frame: &mut Vec<u8>, fault: Fault, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    match fault {
        Fault::Drop => frame.clear(),
        Fault::Truncate => {
            if !frame.is_empty() {
                let keep = rng.gen_range(0..frame.len() as u64) as usize;
                frame.truncate(keep);
            }
        }
        Fault::Corrupt => {
            if !frame.is_empty() {
                let at = rng.gen_range(0..frame.len() as u64) as usize;
                let bit = rng.gen_range(0..8u64) as u8;
                frame[at] ^= 1 << bit;
            }
        }
        Fault::Delay(_) | Fault::Disconnect => {}
    }
}

/// A seeded stream of per-call fault decisions.
///
/// Each [`next_fault`](Self::next_fault) consumes a fixed number of
/// draws from the generator, so the decision for call *k* depends only
/// on the seed and *k* — never on wall-clock time or thread timing.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    rng: StdRng,
    cfg: ChaosConfig,
}

impl ChaosSchedule {
    /// A schedule fully determined by `seed` over `cfg`'s rates.
    ///
    /// # Panics
    ///
    /// Panics if `cfg`'s rates sum above 1.
    #[must_use]
    pub fn new(seed: u64, cfg: ChaosConfig) -> Self {
        assert!(
            cfg.total() <= 1.0 + 1e-9,
            "fault rates sum to {} > 1",
            cfg.total()
        );
        ChaosSchedule {
            rng: StdRng::seed_from_u64(seed),
            cfg,
        }
    }

    /// The fault (if any) for the next call.
    pub fn next_fault(&mut self) -> Option<Fault> {
        // One positional draw decides the fault class, one more the
        // delay magnitude — every call consumes exactly two draws, so
        // the stream position (and thus the whole schedule) depends
        // only on the call index.
        let r: f64 = self.rng.gen_range(0.0..1.0);
        let delay_us = self
            .rng
            .gen_range(0..=self.cfg.max_delay.as_micros().max(1) as u64);
        let c = &self.cfg;
        let mut edge = c.drop_rate;
        if r < edge {
            return Some(Fault::Drop);
        }
        edge += c.delay_rate;
        if r < edge {
            return Some(Fault::Delay(Duration::from_micros(delay_us)));
        }
        edge += c.truncate_rate;
        if r < edge {
            return Some(Fault::Truncate);
        }
        edge += c.corrupt_rate;
        if r < edge {
            return Some(Fault::Corrupt);
        }
        edge += c.disconnect_rate;
        if r < edge {
            return Some(Fault::Disconnect);
        }
        None
    }
}

/// One entry in a [`ChaosConnection`]'s fault trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// 0-based index of the call the fault was injected into.
    pub call: u64,
    /// The injected fault.
    pub fault: Fault,
}

/// A [`Connection`] wrapper injecting faults from a seeded schedule.
///
/// Calls that draw no fault pass straight through to the wrapped
/// connection. Faulted calls fail with [`RuntimeError::Transport`]
/// (drop/truncate/corrupt/disconnect) or proceed after a pause
/// (delay). After a [`Fault::Disconnect`] the connection reports
/// [`healthy`](Connection::healthy)` == false` and every further call
/// fails, so pools and breakers see a genuinely dead endpoint.
pub struct ChaosConnection {
    inner: Arc<dyn Connection>,
    schedule: Mutex<ChaosSchedule>,
    trace: Mutex<Vec<FaultRecord>>,
    calls: AtomicU64,
    dead: AtomicBool,
    metrics: Arc<MetricsRegistry>,
}

impl ChaosConnection {
    /// Wraps `inner`, drawing faults from `schedule`. Injected faults
    /// are counted in the wrapped connection's registry when it has
    /// one, so the node under test sees its own chaos.
    #[must_use]
    pub fn new(inner: Arc<dyn Connection>, schedule: ChaosSchedule) -> Self {
        let metrics = inner.metrics().unwrap_or_else(MetricsRegistry::shared);
        ChaosConnection {
            inner,
            schedule: Mutex::new(schedule),
            trace: Mutex::new(Vec::new()),
            calls: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            metrics,
        }
    }

    /// Wraps `inner` with the standard mixed-fault blend at `rate`,
    /// seeded by `seed`.
    #[must_use]
    pub fn with_fault_rate(inner: Arc<dyn Connection>, seed: u64, rate: f64) -> Self {
        ChaosConnection::new(
            inner,
            ChaosSchedule::new(seed, ChaosConfig::fault_rate(rate)),
        )
    }

    /// Every fault injected so far, in call order.
    pub fn trace(&self) -> Vec<FaultRecord> {
        self.trace.plock().clone()
    }

    /// Calls attempted through this connection (faulted or not).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }
}

impl Connection for ChaosConnection {
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
        self.call_with(msg, &CallOptions::default())
    }

    fn call_with(
        &self,
        msg: &Message,
        options: &CallOptions,
    ) -> Result<Option<Message>, RuntimeError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(RuntimeError::Transport(
                "chaos: connection torn down".into(),
            ));
        }
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        let fault = self.schedule.plock().next_fault();
        let Some(fault) = fault else {
            return self.inner.call_with(msg, options);
        };
        self.trace.plock().push(FaultRecord { call, fault });
        self.metrics.add_fault_injected();
        match fault {
            Fault::Drop => Err(RuntimeError::Transport(
                "chaos: request dropped at the link".into(),
            )),
            Fault::Delay(d) => {
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
                self.inner.call_with(msg, options)
            }
            // The server still executes (the reply was lost after the
            // fact) — the nastier case for retry correctness.
            Fault::Truncate => {
                let _ = self.inner.call_with(msg, options);
                Err(RuntimeError::Transport(
                    "chaos: reply truncated mid-frame".into(),
                ))
            }
            Fault::Corrupt => {
                let _ = self.inner.call_with(msg, options);
                Err(RuntimeError::Transport(
                    "chaos: reply failed frame integrity check".into(),
                ))
            }
            Fault::Disconnect => {
                self.dead.store(true, Ordering::SeqCst);
                Err(RuntimeError::Transport("chaos: peer disconnected".into()))
            }
        }
    }

    fn healthy(&self) -> bool {
        !self.dead.load(Ordering::SeqCst) && self.inner.healthy()
    }

    fn fused_allowed(&self) -> bool {
        self.inner.fused_allowed()
    }

    fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        Some(Arc::clone(&self.metrics))
    }

    fn supports_failover(&self) -> bool {
        self.inner.supports_failover()
    }

    fn retry_budget(&self) -> Option<Arc<crate::budget::RetryBudget>> {
        self.inner.retry_budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Dispatcher, Servant, WireOp, WireServant};
    use crate::transport::InMemoryConnection;
    use mockingbird_mtype::{IntRange, MtypeGraph};
    use mockingbird_values::{Endian, MValue};
    use mockingbird_wire::CdrWriter;
    use std::collections::HashMap;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig::fault_rate(0.3);
        let mut a = ChaosSchedule::new(42, cfg);
        let mut b = ChaosSchedule::new(42, cfg);
        for _ in 0..1000 {
            assert_eq!(a.next_fault(), b.next_fault());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ChaosConfig::fault_rate(0.5);
        let mut a = ChaosSchedule::new(1, cfg);
        let mut b = ChaosSchedule::new(2, cfg);
        let fa: Vec<_> = (0..200).map(|_| a.next_fault()).collect();
        let fb: Vec<_> = (0..200).map(|_| b.next_fault()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn fault_frequency_tracks_the_rate() {
        let mut s = ChaosSchedule::new(7, ChaosConfig::fault_rate(0.2));
        let hits = (0..10_000).filter(|_| s.next_fault().is_some()).count();
        assert!(
            (1_500..2_500).contains(&hits),
            "expected ~2000 faults at 20%, got {hits}"
        );
    }

    #[test]
    fn zero_rate_is_a_passthrough() {
        let mut s = ChaosSchedule::new(9, ChaosConfig::none());
        assert!((0..1000).all(|_| s.next_fault().is_none()));
    }

    fn echo_connection() -> Arc<dyn Connection> {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let args = g.record(vec![i]);
        let result = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_op: &str, args: MValue| Ok(args));
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph, args, result));
        let d = Arc::new(Dispatcher::new());
        d.register(b"echo".to_vec(), WireServant::new(servant, ops));
        Arc::new(InMemoryConnection::new(d))
    }

    fn echo_request(k: i64) -> Message {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let args = g.record(vec![i]);
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&g, args, &MValue::Record(vec![MValue::Int(k as i128)]))
            .unwrap();
        Message::request(
            k as u32,
            true,
            b"echo".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        )
    }

    #[test]
    fn faults_surface_as_transport_errors_and_replay_identically() {
        let run = |seed: u64| {
            let chaos = ChaosConnection::new(
                echo_connection(),
                ChaosSchedule::new(seed, ChaosConfig::fault_rate(0.4)),
            );
            let mut outcomes = Vec::new();
            for k in 0..200 {
                match chaos.call(&echo_request(k)) {
                    Ok(Some(reply)) => outcomes.push(format!("ok:{}", reply.body.len())),
                    Ok(None) => outcomes.push("oneway".into()),
                    Err(RuntimeError::Transport(m)) => outcomes.push(format!("transport:{m}")),
                    Err(e) => panic!("unexpected error class: {e}"),
                }
            }
            (outcomes, chaos.trace())
        };
        let (o1, t1) = run(0xC4A05);
        let (o2, t2) = run(0xC4A05);
        assert_eq!(o1, o2, "client-visible outcomes replay from the seed");
        assert_eq!(t1, t2, "fault traces replay from the seed");
        assert!(!t1.is_empty(), "a 40% rate over 200 calls injects faults");
    }

    #[test]
    fn disconnect_kills_the_connection_for_good() {
        // disconnect-only config: first fault tears the link down.
        let cfg = ChaosConfig {
            disconnect_rate: 1.0,
            ..ChaosConfig::none()
        };
        let chaos = ChaosConnection::new(echo_connection(), ChaosSchedule::new(3, cfg));
        assert!(chaos.healthy());
        assert!(chaos.call(&echo_request(0)).is_err());
        assert!(!chaos.healthy());
        // Later calls fail without consuming schedule draws.
        let trace_len = chaos.trace().len();
        assert!(chaos.call(&echo_request(1)).is_err());
        assert_eq!(chaos.trace().len(), trace_len);
    }

    #[test]
    fn delays_still_deliver_the_reply() {
        let cfg = ChaosConfig {
            delay_rate: 1.0,
            max_delay: Duration::from_micros(100),
            ..ChaosConfig::none()
        };
        let chaos = ChaosConnection::new(echo_connection(), ChaosSchedule::new(5, cfg));
        let reply = chaos.call(&echo_request(7)).unwrap();
        assert!(reply.is_some(), "delayed calls still complete");
        assert_eq!(chaos.trace().len(), 1);
    }
}
