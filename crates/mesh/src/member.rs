//! Membership state: object advertisements and per-member records.

use std::net::SocketAddr;

use mockingbird_wire::HandshakeInfo;

/// One object a node serves, as gossiped to the cluster: everything a
/// client needs to decide whether this replica can serve its compiled
/// stubs (the fingerprints) and how attractive it is (zone and tier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectAd {
    /// The object's name (the resolution key).
    pub name: String,
    /// Fingerprint of the operation table the servant was built from.
    /// A resolver only matches replicas whose fingerprint equals the
    /// caller's — same name under a different fingerprint is a
    /// *different* object.
    pub interface_fp: u128,
    /// Marshal-rules fingerprint. A mismatch is survivable (the dial-
    /// time handshake demotes the connection to the interpretive path),
    /// so it does not gate resolution — it is advertised so callers can
    /// prefer fused-capable replicas.
    pub rules_fp: u64,
    /// Where to dial the replica.
    pub endpoint: SocketAddr,
    /// The zone the serving node sits in.
    pub zone: u32,
    /// Coarse latency tier within the zone (lower is closer).
    pub latency_tier: u8,
}

impl ObjectAd {
    /// An advertisement for `name` served at `endpoint` under the given
    /// fingerprints, in zone 0 / tier 0.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        interface_fp: u128,
        rules_fp: u64,
        endpoint: SocketAddr,
    ) -> Self {
        ObjectAd {
            name: name.into(),
            interface_fp,
            rules_fp,
            endpoint,
            zone: 0,
            latency_tier: 0,
        }
    }

    /// An advertisement built from the same [`HandshakeInfo`] the node
    /// answers dials with — the fingerprints a client will verify at
    /// connect time are exactly the ones gossiped, so resolution and
    /// handshake can never disagree about identity.
    #[must_use]
    pub fn from_handshake(
        name: impl Into<String>,
        info: &HandshakeInfo,
        endpoint: SocketAddr,
    ) -> Self {
        Self::new(name, info.interface_fp, info.rules_fp, endpoint)
    }

    /// Places the advertisement in `zone`.
    #[must_use]
    pub fn in_zone(mut self, zone: u32) -> Self {
        self.zone = zone;
        self
    }

    /// Sets the latency tier.
    #[must_use]
    pub fn with_tier(mut self, tier: u8) -> Self {
        self.latency_tier = tier;
        self
    }
}

/// Whether a member is serving or has announced its departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberStatus {
    /// Serving traffic.
    Alive,
    /// Departed on purpose (a `leave` announcement). Distinct from
    /// failure-detector suspicion: a Left member never comes back under
    /// the same incarnation.
    Left,
}

/// One member's gossiped state: who it is, how fresh the information
/// is, and what it serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberState {
    /// The member's stable node id.
    pub node: u64,
    /// Bumped by the member itself on each leave/rejoin; the strongest
    /// freshness signal.
    pub incarnation: u64,
    /// Monotonic liveness counter within an incarnation; advances every
    /// gossip round the member is up.
    pub heartbeat: u64,
    /// The zone the member claims.
    pub zone: u32,
    /// Alive or departed.
    pub status: MemberStatus,
    /// The objects the member serves.
    pub ads: Vec<ObjectAd>,
    /// Digest of the member's artifact store (0 = no store advertised).
    /// A joining node compares this against its own digest to decide
    /// whether a peer has compiled programs worth fetching; it is
    /// deliberately *not* part of the membership digest — stores warm
    /// and evict without implying membership disagreement.
    pub store_digest: u64,
}

impl MemberState {
    /// Whether `other` carries strictly fresher information than `self`
    /// under the gossip precedence rules: a higher incarnation always
    /// wins; within an incarnation a departure announcement beats
    /// liveness; otherwise the higher heartbeat wins.
    #[must_use]
    pub fn superseded_by(&self, other: &MemberState) -> bool {
        if other.incarnation != self.incarnation {
            return other.incarnation > self.incarnation;
        }
        match (self.status, other.status) {
            (MemberStatus::Alive, MemberStatus::Left) => true,
            (MemberStatus::Left, MemberStatus::Alive) => false,
            _ => other.heartbeat > self.heartbeat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(incarnation: u64, heartbeat: u64, status: MemberStatus) -> MemberState {
        MemberState {
            node: 7,
            incarnation,
            heartbeat,
            zone: 0,
            status,
            ads: Vec::new(),
            store_digest: 0,
        }
    }

    #[test]
    fn precedence_incarnation_then_left_then_heartbeat() {
        let base = member(1, 5, MemberStatus::Alive);
        assert!(base.superseded_by(&member(2, 0, MemberStatus::Alive)));
        assert!(!base.superseded_by(&member(0, 99, MemberStatus::Left)));
        assert!(base.superseded_by(&member(1, 0, MemberStatus::Left)));
        assert!(base.superseded_by(&member(1, 6, MemberStatus::Alive)));
        assert!(!base.superseded_by(&member(1, 5, MemberStatus::Alive)));
        let left = member(1, 5, MemberStatus::Left);
        assert!(!left.superseded_by(&member(1, 99, MemberStatus::Alive)));
    }

    #[test]
    fn ads_from_handshake_share_the_fingerprints() {
        let info = HandshakeInfo {
            protocol: 1,
            interface_fp: 0xFEED,
            rules_fp: 0xBEEF,
        };
        let ad = ObjectAd::from_handshake("calc", &info, "127.0.0.1:80".parse().unwrap())
            .in_zone(3)
            .with_tier(1);
        assert_eq!(ad.interface_fp, 0xFEED);
        assert_eq!(ad.rules_fp, 0xBEEF);
        assert_eq!(ad.zone, 3);
        assert_eq!(ad.latency_tier, 1);
    }
}
