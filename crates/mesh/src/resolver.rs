//! The adapter that plugs a [`MeshNode`] into the runtime's
//! [`Resolver`] slot: resolution answers come from the node's gossip
//! table, and the resolver version is the node's directory version, so
//! a [`ConnectionPool`](mockingbird_runtime::ConnectionPool) built over
//! it re-resolves exactly when membership (not mere heartbeats) moves.

use std::sync::Arc;

use mockingbird_runtime::resolver::{ObjectName, ResolvedEndpoint, Resolver};

use crate::gossip::MeshNode;

/// A [`Resolver`] backed by a mesh node's membership view.
#[derive(Clone)]
pub struct MeshResolver {
    node: Arc<MeshNode>,
}

impl MeshResolver {
    /// A resolver answering from `node`'s view of the cluster.
    #[must_use]
    pub fn new(node: Arc<MeshNode>) -> Self {
        MeshResolver { node }
    }

    /// The mesh node behind this resolver.
    #[must_use]
    pub fn node(&self) -> &Arc<MeshNode> {
        &self.node
    }
}

impl Resolver for MeshResolver {
    fn resolve(&self, name: &ObjectName) -> Vec<ResolvedEndpoint> {
        self.node.lookup(name)
    }

    fn version(&self) -> u64 {
        self.node.version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gossip::{GossipMessage, MeshConfig};
    use crate::member::ObjectAd;

    #[test]
    fn pools_follow_the_mesh_version() {
        let client = MeshNode::new(MeshConfig::new(1, 42));
        let server = MeshNode::new(MeshConfig::new(2, 42));
        server.advertise(ObjectAd::new(
            "calc",
            0xA,
            0,
            "127.0.0.1:9001".parse().unwrap(),
        ));
        let r = MeshResolver::new(Arc::clone(&client));
        assert!(r.is_dynamic());
        let v0 = r.version();
        assert!(r.resolve(&ObjectName::new("calc", 0xA)).is_empty());
        client.receive(&GossipMessage {
            from: 2,
            members: server.members(),
        });
        assert!(r.version() > v0, "membership change moves the version");
        assert_eq!(r.resolve(&ObjectName::new("calc", 0xA)).len(), 1);
    }
}
