//! The mesh node: seeded anti-entropy gossip over member state.
//!
//! A [`MeshNode`] keeps a table of every member it has heard of. Each
//! [`tick`](MeshNode::tick) advances its own heartbeat, ages suspicion
//! over entries that stopped refreshing, and picks a seeded random
//! fanout of peers to push its full view to; [`receive`](MeshNode::receive)
//! merges a peer's view under the precedence rules in
//! [`MemberState::superseded_by`]. All randomness comes from one
//! `StdRng` seeded at construction, so two meshes built from the same
//! seeds trade exactly the same messages in the same order — which is
//! what lets the chaos suite replay a partition history verbatim.
//!
//! The node is transport-free: `tick` returns the messages to deliver
//! and `receive` accepts them. [`SimMesh`](crate::sim::SimMesh)
//! delivers them synchronously for tests; a real deployment would ship
//! them over any messaging channel.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mockingbird_rng::StdRng;
use mockingbird_runtime::metrics::MetricsRegistry;
use mockingbird_runtime::resolver::{ObjectName, ResolvedEndpoint};
use mockingbird_runtime::sync::LockExt;

use crate::member::{MemberState, MemberStatus, ObjectAd};

/// Tuning for one mesh node.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// This node's stable id (must be unique in the mesh).
    pub id: u64,
    /// The zone this node sits in (drives same-zone-first resolution).
    pub zone: u32,
    /// Seed for the node's gossip randomness. Same seeds, same mesh
    /// history.
    pub seed: u64,
    /// Peers pushed to per tick.
    pub fanout: usize,
    /// Ticks without a refresh before a member is suspected (excluded
    /// from resolution, still gossiped).
    pub suspect_after: u64,
    /// Ticks without a refresh before a member is evicted outright.
    pub evict_after: u64,
}

impl MeshConfig {
    /// Defaults for node `id` under `seed`: zone 0, fanout 2, suspect
    /// after 5 quiet ticks, evict after 10.
    #[must_use]
    pub fn new(id: u64, seed: u64) -> Self {
        MeshConfig {
            id,
            zone: 0,
            seed,
            fanout: 2,
            suspect_after: 5,
            evict_after: 10,
        }
    }

    /// Places the node in `zone`.
    #[must_use]
    pub fn in_zone(mut self, zone: u32) -> Self {
        self.zone = zone;
        self
    }

    /// Sets the per-tick gossip fanout.
    #[must_use]
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout.max(1);
        self
    }

    /// Sets the suspicion and eviction horizons (in quiet ticks).
    #[must_use]
    pub fn with_horizons(mut self, suspect_after: u64, evict_after: u64) -> Self {
        self.suspect_after = suspect_after.max(1);
        self.evict_after = evict_after.max(suspect_after.max(1) + 1);
        self
    }
}

/// One gossip push: the sender's full view of the cluster, its own
/// state included.
#[derive(Debug, Clone)]
pub struct GossipMessage {
    /// The sending node.
    pub from: u64,
    /// Every member the sender knows of, itself first.
    pub members: Vec<MemberState>,
}

/// A remembered member plus the local bookkeeping gossip never ships:
/// when we last saw fresh information and whether the failure detector
/// currently doubts the member.
struct Entry {
    state: MemberState,
    last_refresh: u64,
    suspected: bool,
}

struct State {
    rng: StdRng,
    /// Local tick counter (drives suspicion/eviction horizons).
    round: u64,
    /// Everyone else, keyed by node id — a `BTreeMap` so iteration
    /// order (and therefore fanout selection) is deterministic.
    table: BTreeMap<u64, Entry>,
    /// Our own gossiped identity.
    incarnation: u64,
    heartbeat: u64,
    status: MemberStatus,
    ads: Vec<ObjectAd>,
    store_digest: u64,
}

/// One participant in the naming mesh. Cheap to share: resolution state
/// sits behind a mutex, the directory version behind an atomic (pools
/// poll the version before every routed call).
pub struct MeshNode {
    cfg: MeshConfig,
    inner: Mutex<State>,
    /// Bumped whenever anything that could change a resolution changes:
    /// membership, status, suspicion, advertisements. Heartbeat-only
    /// refreshes do not bump it, so steady-state gossip costs pools one
    /// atomic load per call and nothing more.
    version: AtomicU64,
    metrics: Arc<MetricsRegistry>,
}

impl MeshNode {
    /// A node recording into a fresh private registry.
    #[must_use]
    pub fn new(cfg: MeshConfig) -> Arc<Self> {
        Self::with_metrics(cfg, MetricsRegistry::shared())
    }

    /// A node recording mesh counters (members seen, gossip rounds,
    /// evictions) into `metrics`.
    #[must_use]
    pub fn with_metrics(cfg: MeshConfig, metrics: Arc<MetricsRegistry>) -> Arc<Self> {
        let rng = StdRng::seed_from_u64(cfg.seed ^ cfg.id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Arc::new(MeshNode {
            inner: Mutex::new(State {
                rng,
                round: 0,
                table: BTreeMap::new(),
                incarnation: 1,
                heartbeat: 0,
                status: MemberStatus::Alive,
                ads: Vec::new(),
                store_digest: 0,
            }),
            version: AtomicU64::new(1),
            metrics,
            cfg,
        })
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.cfg.id
    }

    /// This node's zone.
    #[must_use]
    pub fn zone(&self) -> u32 {
        self.cfg.zone
    }

    /// The registry this node records into.
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The directory version pools poll. Monotonic; bumps only on
    /// resolution-affecting changes.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn bump(&self) {
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Advertises (or re-advertises) an object this node serves. An ad
    /// with the same name and endpoint replaces the previous one.
    pub fn advertise(&self, ad: ObjectAd) {
        let mut s = self.inner.plock();
        s.ads
            .retain(|a| !(a.name == ad.name && a.endpoint == ad.endpoint));
        s.ads.push(ad);
        drop(s);
        self.bump();
    }

    /// Withdraws every advertisement for `name` at `endpoint` (a single
    /// object going away without the node leaving).
    pub fn withdraw(&self, name: &str, endpoint: std::net::SocketAddr) {
        let mut s = self.inner.plock();
        let before = s.ads.len();
        s.ads
            .retain(|a| !(a.name == name && a.endpoint == endpoint));
        let changed = s.ads.len() != before;
        drop(s);
        if changed {
            self.bump();
        }
    }

    /// Announces departure: the node's state flips to Left under a
    /// fresh incarnation, which gossip then spreads. Peers stop
    /// resolving to it as soon as the announcement reaches them.
    pub fn leave(&self) {
        let mut s = self.inner.plock();
        s.incarnation += 1;
        s.status = MemberStatus::Left;
        drop(s);
        self.bump();
    }

    /// Rejoins after a [`leave`](MeshNode::leave): a fresh incarnation
    /// that supersedes the departure announcement wherever it reached.
    pub fn rejoin(&self) {
        let mut s = self.inner.plock();
        s.incarnation += 1;
        s.status = MemberStatus::Alive;
        s.heartbeat = 0;
        drop(s);
        self.bump();
    }

    fn self_state(cfg: &MeshConfig, s: &State) -> MemberState {
        MemberState {
            node: cfg.id,
            incarnation: s.incarnation,
            heartbeat: s.heartbeat,
            zone: cfg.zone,
            status: s.status,
            ads: s.ads.clone(),
            store_digest: s.store_digest,
        }
    }

    /// Advertises the digest of this node's artifact store. Gossip
    /// carries it to peers on the next tick; a change is resolution-
    /// neutral (no version bump) — only artifact warming reads it.
    pub fn set_store_digest(&self, digest: u64) {
        let mut s = self.inner.plock();
        s.store_digest = digest;
    }

    /// One gossip round: advance the local heartbeat, age suspicion and
    /// eviction over quiet members, and pick a seeded fanout of live
    /// peers to push the full view to. Returns the messages to deliver;
    /// the caller (simulator or transport) owns delivery.
    pub fn tick(&self) -> Vec<(u64, GossipMessage)> {
        let mut s = self.inner.plock();
        s.round += 1;
        s.heartbeat += 1;
        let round = s.round;

        // Age the failure detector. Departed members are on a clock
        // from the moment we learned of the departure; quiet Alive
        // members graduate from suspected to evicted.
        let mut changed = false;
        let mut evicted = 0u64;
        s.table.retain(|_, e| {
            if round.saturating_sub(e.last_refresh) > self.cfg.evict_after {
                evicted += 1;
                return false;
            }
            true
        });
        for e in s.table.values_mut() {
            if e.state.status == MemberStatus::Alive
                && !e.suspected
                && round.saturating_sub(e.last_refresh) > self.cfg.suspect_after
            {
                e.suspected = true;
                changed = true;
            }
        }

        // Seeded fanout over live peers, in deterministic table order.
        let peers: Vec<u64> = s
            .table
            .iter()
            .filter(|(_, e)| e.state.status == MemberStatus::Alive)
            .map(|(id, _)| *id)
            .collect();
        let mut targets: Vec<u64> = Vec::new();
        let want = self.cfg.fanout.min(peers.len());
        let mut candidates = peers;
        for _ in 0..want {
            let idx = s.rng.gen_range(0..candidates.len());
            targets.push(candidates.swap_remove(idx));
        }

        let view: Vec<MemberState> = std::iter::once(Self::self_state(&self.cfg, &s))
            .chain(s.table.values().map(|e| e.state.clone()))
            .collect();
        drop(s);

        self.metrics.add_mesh_gossip_round();
        for _ in 0..evicted {
            self.metrics.add_mesh_eviction();
        }
        if changed || evicted > 0 {
            self.bump();
        }
        targets
            .into_iter()
            .map(|t| {
                (
                    t,
                    GossipMessage {
                        from: self.cfg.id,
                        members: view.clone(),
                    },
                )
            })
            .collect()
    }

    /// Merges a peer's view into ours under the precedence rules.
    pub fn receive(&self, msg: &GossipMessage) {
        let mut s = self.inner.plock();
        let round = s.round;
        let mut changed = false;
        let mut seen = 0u64;
        for m in &msg.members {
            if m.node == self.cfg.id {
                // Someone is spreading our obituary while we are alive:
                // refute it with a fresher incarnation.
                if m.status == MemberStatus::Left
                    && s.status == MemberStatus::Alive
                    && m.incarnation >= s.incarnation
                {
                    s.incarnation = m.incarnation + 1;
                    changed = true;
                }
                continue;
            }
            match s.table.get_mut(&m.node) {
                None => {
                    // Never resurrect a tombstone we already evicted —
                    // an unknown Left member carries no information a
                    // resolver could use.
                    if m.status == MemberStatus::Left {
                        continue;
                    }
                    s.table.insert(
                        m.node,
                        Entry {
                            state: m.clone(),
                            last_refresh: round,
                            suspected: false,
                        },
                    );
                    seen += 1;
                    changed = true;
                }
                Some(e) => {
                    if !e.state.superseded_by(m) {
                        continue;
                    }
                    // A heartbeat-only refresh keeps the entry fresh
                    // (and lifts suspicion) without touching what any
                    // resolution would return.
                    let resolution_shift = e.state.status != m.status
                        || e.state.ads != m.ads
                        || e.state.zone != m.zone
                        || e.suspected;
                    e.state = m.clone();
                    e.last_refresh = round;
                    e.suspected = false;
                    if resolution_shift {
                        changed = true;
                    }
                }
            }
        }
        drop(s);
        for _ in 0..seen {
            self.metrics.add_mesh_member_seen();
        }
        if changed {
            self.bump();
        }
    }

    /// Every member this node currently believes in, itself first.
    #[must_use]
    pub fn members(&self) -> Vec<MemberState> {
        let s = self.inner.plock();
        std::iter::once(Self::self_state(&self.cfg, &s))
            .chain(s.table.values().map(|e| e.state.clone()))
            .collect()
    }

    /// A seed-independent digest of the *resolution-relevant* view:
    /// node ids, incarnations, statuses, and advertisements, in id
    /// order. Heartbeats and suspicion are excluded, so two nodes that
    /// agree on membership agree on the digest even when their local
    /// freshness clocks differ. FNV-1a, stable across platforms.
    #[must_use]
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn fold(h: &mut u64, bytes: &[u8]) {
            for b in bytes {
                *h ^= u64::from(*b);
                *h = h.wrapping_mul(PRIME);
            }
        }
        let mut h = OFFSET;
        let mut members = self.members();
        members.sort_by_key(|m| m.node);
        for m in members.iter() {
            fold(&mut h, &m.node.to_le_bytes());
            fold(&mut h, &m.incarnation.to_le_bytes());
            fold(
                &mut h,
                &[match m.status {
                    MemberStatus::Alive => 1,
                    MemberStatus::Left => 2,
                }],
            );
            let mut ads = m.ads.clone();
            ads.sort_by(|a, b| {
                (a.name.as_str(), a.endpoint.to_string())
                    .cmp(&(b.name.as_str(), b.endpoint.to_string()))
            });
            for ad in ads {
                fold(&mut h, ad.name.as_bytes());
                fold(&mut h, &ad.interface_fp.to_le_bytes());
                fold(&mut h, &ad.rules_fp.to_le_bytes());
                fold(&mut h, ad.endpoint.to_string().as_bytes());
                fold(&mut h, &ad.zone.to_le_bytes());
                fold(&mut h, &[ad.latency_tier]);
            }
        }
        h
    }

    /// The endpoints currently serving `name`, preference-ordered:
    /// same-zone replicas first, then by latency tier, then by address
    /// for a stable total order. Only Alive, unsuspected members whose
    /// advertisement matches the name *and* the interface fingerprint
    /// participate (fingerprint 0 matches anything — the wildcard the
    /// static path uses).
    #[must_use]
    pub fn lookup(&self, name: &ObjectName) -> Vec<ResolvedEndpoint> {
        let s = self.inner.plock();
        let mut out: Vec<ResolvedEndpoint> = Vec::new();
        let mut consider = |m: &MemberState| {
            if m.status != MemberStatus::Alive {
                return;
            }
            for ad in &m.ads {
                if ad.name != name.name {
                    continue;
                }
                if name.interface_fp != 0 && ad.interface_fp != name.interface_fp {
                    continue;
                }
                out.push(ResolvedEndpoint {
                    addr: ad.endpoint,
                    zone: ad.zone,
                    latency_tier: ad.latency_tier,
                    rules_fp: ad.rules_fp,
                });
            }
        };
        consider(&Self::self_state(&self.cfg, &s));
        for e in s.table.values() {
            if e.suspected {
                continue;
            }
            consider(&e.state);
        }
        drop(s);
        let home = self.cfg.zone;
        out.sort_by(|a, b| {
            (a.zone != home, a.latency_tier, a.addr.to_string()).cmp(&(
                b.zone != home,
                b.latency_tier,
                b.addr.to_string(),
            ))
        });
        out.dedup();
        out
    }

    /// The peers worth pulling compiled artifacts from: Alive,
    /// unsuspected members advertising at least one object under
    /// exactly the given interface *and* rules fingerprints — the same
    /// agreement the dial-time handshake would verify — whose store
    /// digest is nonzero and differs from `self_digest` (an identical
    /// digest means an identical store; nothing to fetch). Ordered by
    /// node id for a deterministic fetch sequence.
    #[must_use]
    pub fn artifact_peers(
        &self,
        interface_fp: u128,
        rules_fp: u64,
        self_digest: u64,
    ) -> Vec<ArtifactPeer> {
        let s = self.inner.plock();
        let mut out = Vec::new();
        for e in s.table.values() {
            if e.suspected || e.state.status != MemberStatus::Alive {
                continue;
            }
            if e.state.store_digest == 0 || e.state.store_digest == self_digest {
                continue;
            }
            let Some(ad) = e
                .state
                .ads
                .iter()
                .find(|ad| ad.interface_fp == interface_fp && ad.rules_fp == rules_fp)
            else {
                continue;
            };
            out.push(ArtifactPeer {
                node: e.state.node,
                endpoint: ad.endpoint,
                store_digest: e.state.store_digest,
            });
        }
        out
    }

    /// Starts a background thread that [`tick`](MeshNode::tick)s this
    /// node on a jittered period, handing every emitted gossip message
    /// to `deliver`. The jitter stream is seeded from the node's own
    /// seed — deterministic per node, decorrelated across nodes — so a
    /// fleet brought up together does not gossip in lockstep.
    ///
    /// The thread holds only a weak reference: dropping the last
    /// `Arc<MeshNode>` ends it on its own, and the returned
    /// [`GossipTicker`] stops it promptly (set-flag, unpark, join) on
    /// [`stop`](GossipTicker::stop) or drop.
    pub fn start_ticker<F>(self: &Arc<Self>, period: Duration, mut deliver: F) -> GossipTicker
    where
        F: FnMut(u64, GossipMessage) + Send + 'static,
    {
        let weak = Arc::downgrade(self);
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let mut rng =
            StdRng::seed_from_u64(self.cfg.seed ^ self.cfg.id.rotate_left(17) ^ 0x7469_636b);
        let period = period.max(Duration::from_micros(1));
        let handle = std::thread::spawn(move || loop {
            // One nap of the period plus up to a quarter of jitter,
            // parked (not slept) so a stop request interrupts it.
            let jitter = rng.gen_range(0..=(period.as_micros() as u64 / 4).max(1));
            let wake = Instant::now() + period + Duration::from_micros(jitter);
            loop {
                if flag.load(Ordering::SeqCst) {
                    return;
                }
                let now = Instant::now();
                if now >= wake {
                    break;
                }
                std::thread::park_timeout(wake - now);
            }
            let Some(node) = weak.upgrade() else { return };
            for (peer, msg) in node.tick() {
                deliver(peer, msg);
            }
        });
        GossipTicker {
            stop,
            handle: Some(handle),
        }
    }
}

/// One candidate source for artifact warming, from
/// [`MeshNode::artifact_peers`]: where to dial and what the peer's
/// store looked like when it last gossiped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactPeer {
    /// The advertising node's id.
    pub node: u64,
    /// The endpoint to dial (the same port serves calls and `MBAR`
    /// artifact fetches).
    pub endpoint: std::net::SocketAddr,
    /// The peer's advertised store digest.
    pub store_digest: u64,
}

/// A handle to one background gossip ticker (see
/// [`MeshNode::start_ticker`]). Stops and joins the thread on
/// [`stop`](GossipTicker::stop) or on drop.
pub struct GossipTicker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl GossipTicker {
    /// Signals the ticker thread and joins it; no tick starts after
    /// this returns.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

impl Drop for GossipTicker {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;

    fn ad(name: &str, fp: u128, port: u16) -> ObjectAd {
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        ObjectAd::new(name, fp, 0, addr)
    }

    #[test]
    fn lookup_matches_name_and_fingerprint() {
        let n = MeshNode::new(MeshConfig::new(1, 42));
        n.advertise(ad("calc", 0xA, 100));
        n.advertise(ad("calc", 0xB, 101));
        n.advertise(ad("clock", 0xA, 102));
        let hits = n.lookup(&ObjectName::new("calc", 0xA));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].addr.port(), 100);
        // The wildcard fingerprint matches both calc replicas.
        assert_eq!(n.lookup(&ObjectName::any("calc")).len(), 2);
        assert!(n.lookup(&ObjectName::new("calc", 0xC)).is_empty());
    }

    #[test]
    fn gossip_spreads_membership_and_version_moves() {
        let a = MeshNode::new(MeshConfig::new(1, 7));
        let b = MeshNode::new(MeshConfig::new(2, 7));
        b.advertise(ad("calc", 0xA, 200));
        // Introduce b to a (a seed-list introduction), then let a hear
        // b's view.
        let v0 = a.version();
        a.receive(&GossipMessage {
            from: 2,
            members: b.members(),
        });
        assert!(a.version() > v0, "learning a member bumps the version");
        assert_eq!(a.lookup(&ObjectName::new("calc", 0xA)).len(), 1);
        assert_eq!(a.metrics().snapshot().mesh_members_seen, 1);
        // A heartbeat-only refresh must NOT bump the version.
        b.tick();
        let v1 = a.version();
        a.receive(&GossipMessage {
            from: 2,
            members: b.members(),
        });
        assert_eq!(a.version(), v1, "heartbeat refresh is resolution-neutral");
    }

    #[test]
    fn leave_beats_liveness_and_rejoin_beats_leave() {
        let a = MeshNode::new(MeshConfig::new(1, 7));
        let b = MeshNode::new(MeshConfig::new(2, 7));
        b.advertise(ad("calc", 0xA, 200));
        a.receive(&GossipMessage {
            from: 2,
            members: b.members(),
        });
        assert_eq!(a.lookup(&ObjectName::any("calc")).len(), 1);
        b.leave();
        a.receive(&GossipMessage {
            from: 2,
            members: b.members(),
        });
        assert!(a.lookup(&ObjectName::any("calc")).is_empty());
        b.rejoin();
        a.receive(&GossipMessage {
            from: 2,
            members: b.members(),
        });
        assert_eq!(a.lookup(&ObjectName::any("calc")).len(), 1);
    }

    #[test]
    fn quiet_members_are_suspected_then_evicted() {
        let cfg = MeshConfig::new(1, 7).with_horizons(2, 4);
        let a = MeshNode::with_metrics(cfg, MetricsRegistry::shared());
        let b = MeshNode::new(MeshConfig::new(2, 7));
        b.advertise(ad("calc", 0xA, 200));
        a.receive(&GossipMessage {
            from: 2,
            members: b.members(),
        });
        assert_eq!(a.lookup(&ObjectName::any("calc")).len(), 1);
        // b goes silent: after the suspect horizon it drops out of
        // resolution, after the evict horizon out of the table.
        for _ in 0..3 {
            a.tick();
        }
        assert!(a.lookup(&ObjectName::any("calc")).is_empty(), "suspected");
        assert!(a.members().iter().any(|m| m.node == 2), "still remembered");
        for _ in 0..3 {
            a.tick();
        }
        assert!(!a.members().iter().any(|m| m.node == 2), "evicted");
        assert_eq!(a.metrics().snapshot().mesh_evictions, 1);
        // A late gossip refresh resurrects it (it was only quiet).
        b.tick();
        a.receive(&GossipMessage {
            from: 2,
            members: b.members(),
        });
        assert_eq!(a.lookup(&ObjectName::any("calc")).len(), 1);
    }

    #[test]
    fn a_live_node_refutes_its_own_obituary() {
        let a = MeshNode::new(MeshConfig::new(1, 7));
        let inc0 = a.members()[0].incarnation;
        a.receive(&GossipMessage {
            from: 2,
            members: vec![MemberState {
                node: 1,
                incarnation: inc0,
                heartbeat: 0,
                zone: 0,
                status: MemberStatus::Left,
                ads: Vec::new(),
                store_digest: 0,
            }],
        });
        assert!(a.members()[0].incarnation > inc0, "refuted with a bump");
        assert_eq!(a.members()[0].status, MemberStatus::Alive);
    }

    #[test]
    fn same_seed_same_fanout_choices() {
        let run = |seed: u64| -> Vec<Vec<u64>> {
            let n = MeshNode::new(MeshConfig::new(1, seed).with_fanout(2));
            for peer in 2..8u64 {
                let p = MeshNode::new(MeshConfig::new(peer, seed));
                n.receive(&GossipMessage {
                    from: peer,
                    members: p.members(),
                });
            }
            (0..10)
                .map(|_| n.tick().into_iter().map(|(t, _)| t).collect())
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds pick differently");
    }

    #[test]
    fn background_ticker_gossips_and_stops_cleanly() {
        let a = MeshNode::new(MeshConfig::new(1, 7));
        let b = MeshNode::new(MeshConfig::new(2, 7));
        b.advertise(ad("calc", 0xA, 200));
        a.receive(&GossipMessage {
            from: 2,
            members: b.members(),
        });
        let delivered = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&delivered);
        let ticker = a.start_ticker(Duration::from_millis(1), move |peer, msg| {
            sink.plock().push((peer, msg));
        });
        // The node ticks on its own: wait (bounded) for gossip to flow.
        let deadline = Instant::now() + Duration::from_secs(5);
        while delivered.plock().len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(delivered.plock().len() >= 3, "ticker never gossiped");
        assert!(delivered.plock().iter().all(|(peer, _)| *peer == 2));
        ticker.stop();
        // Stopped means stopped: no tick starts after stop() returns.
        let frozen = delivered.plock().len();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(delivered.plock().len(), frozen, "ticked after stop");
    }

    #[test]
    fn dropping_the_node_ends_its_ticker() {
        let a = MeshNode::new(MeshConfig::new(1, 7));
        let ticker = a.start_ticker(Duration::from_millis(1), |_, _| {});
        drop(a);
        // The ticker thread holds only a weak reference; stop() joins
        // it, which must not hang once the node is gone.
        ticker.stop();
    }

    #[test]
    fn store_digests_gossip_without_bumping_the_version() {
        let a = MeshNode::new(MeshConfig::new(1, 7));
        let b = MeshNode::new(MeshConfig::new(2, 7));
        let c = MeshNode::new(MeshConfig::new(3, 7));
        let mut warm = ad("calc", 0xA, 200);
        warm.rules_fp = 0xBEEF;
        b.advertise(warm);
        let mut other_rules = ad("calc", 0xA, 201);
        other_rules.rules_fp = 0x0BAD;
        c.advertise(other_rules);
        b.set_store_digest(0x5109);
        c.set_store_digest(0x7777);
        a.receive(&GossipMessage {
            from: 2,
            members: b.members(),
        });
        a.receive(&GossipMessage {
            from: 3,
            members: c.members(),
        });

        // Only the fingerprint-agreeing peer is a warming candidate.
        let peers = a.artifact_peers(0xA, 0xBEEF, 0);
        assert_eq!(peers.len(), 1);
        assert_eq!(peers[0].node, 2);
        assert_eq!(peers[0].store_digest, 0x5109);
        assert_eq!(peers[0].endpoint.port(), 200);
        // An identical digest means an identical store: nothing to do.
        assert!(a.artifact_peers(0xA, 0xBEEF, 0x5109).is_empty());

        // A digest change rides heartbeat gossip without a version bump.
        b.set_store_digest(0x6000);
        b.tick();
        let v = a.version();
        a.receive(&GossipMessage {
            from: 2,
            members: b.members(),
        });
        assert_eq!(a.version(), v, "store digest is resolution-neutral");
        assert_eq!(a.artifact_peers(0xA, 0xBEEF, 0)[0].store_digest, 0x6000);
    }

    #[test]
    fn zone_locality_orders_resolution() {
        let n = MeshNode::new(MeshConfig::new(1, 7).in_zone(2));
        let mut far = ad("calc", 0xA, 300);
        far.zone = 1;
        far.latency_tier = 0;
        let mut near = ad("calc", 0xA, 301);
        near.zone = 2;
        near.latency_tier = 3;
        let peer = MeshNode::new(MeshConfig::new(9, 7));
        peer.advertise(far);
        peer.advertise(near);
        n.receive(&GossipMessage {
            from: 9,
            members: peer.members(),
        });
        let hits = n.lookup(&ObjectName::new("calc", 0xA));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].addr.port(), 301, "same zone beats lower tier");
    }
}
