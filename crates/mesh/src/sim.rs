//! A deterministic single-process mesh simulator.
//!
//! [`SimMesh`] owns a set of [`MeshNode`]s and plays postman: each
//! [`step`](SimMesh::step) ticks every node in id order and delivers
//! the produced gossip synchronously — unless a partition blocks the
//! pair. Because node randomness is seeded and delivery order is
//! fixed, a `SimMesh` built from the same seeds replays the identical
//! convergence history every run, which is what the 64-seed chaos
//! suite leans on: partition, converge, heal, converge, byte-for-byte
//! reproducible.

use std::sync::Arc;

use crate::gossip::MeshNode;

/// A set of mesh nodes wired through a deterministic synchronous
/// postman, with partitions imposed and healed on command.
pub struct SimMesh {
    nodes: Vec<Arc<MeshNode>>,
    /// Partition groups by node id; empty means fully connected. A node
    /// in no group is isolated entirely.
    groups: Vec<Vec<u64>>,
    rounds: u64,
}

impl SimMesh {
    /// A simulator over `nodes` (any ids, any configs). Nodes are
    /// sorted by id so delivery order is independent of argument order.
    #[must_use]
    pub fn new(mut nodes: Vec<Arc<MeshNode>>) -> Self {
        nodes.sort_by_key(|n| n.id());
        SimMesh {
            nodes,
            groups: Vec::new(),
            rounds: 0,
        }
    }

    /// Introduces every node to every other, as if each had the full
    /// seed list: each node receives each peer's current self-view
    /// once. Gossip takes over from there.
    pub fn introduce_all(&self) {
        for a in &self.nodes {
            for b in &self.nodes {
                if a.id() != b.id() {
                    a.receive(&crate::gossip::GossipMessage {
                        from: b.id(),
                        members: b.members(),
                    });
                }
            }
        }
    }

    /// The node with `id`.
    ///
    /// # Panics
    ///
    /// Panics when no node has that id.
    #[must_use]
    pub fn node(&self, id: u64) -> &Arc<MeshNode> {
        self.nodes
            .iter()
            .find(|n| n.id() == id)
            .expect("no such node in the sim")
    }

    /// All nodes, in id order.
    #[must_use]
    pub fn nodes(&self) -> &[Arc<MeshNode>] {
        &self.nodes
    }

    /// Gossip rounds stepped so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Imposes a partition: only pairs within the same group can
    /// exchange gossip. Replaces any previous partition.
    pub fn partition(&mut self, groups: &[&[u64]]) {
        self.groups = groups.iter().map(|g| g.to_vec()).collect();
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        self.groups.clear();
    }

    fn can_reach(&self, a: u64, b: u64) -> bool {
        if self.groups.is_empty() {
            return true;
        }
        self.groups.iter().any(|g| g.contains(&a) && g.contains(&b))
    }

    /// One synchronous gossip round: tick every node in id order,
    /// delivering each produced message immediately unless the
    /// partition blocks the pair (the message is then simply lost, as
    /// on a real partitioned link).
    pub fn step(&mut self) {
        self.rounds += 1;
        for i in 0..self.nodes.len() {
            let sender = Arc::clone(&self.nodes[i]);
            for (target, msg) in sender.tick() {
                if !self.can_reach(sender.id(), target) {
                    continue;
                }
                if let Some(t) = self.nodes.iter().find(|n| n.id() == target) {
                    t.receive(&msg);
                }
            }
        }
    }

    /// Whether every node currently reports the same resolution digest.
    #[must_use]
    pub fn converged(&self) -> bool {
        let mut digests = self.nodes.iter().map(|n| n.digest());
        match digests.next() {
            None => true,
            Some(first) => digests.all(|d| d == first),
        }
    }

    /// Every node's digest, in id order (for test assertions and replay
    /// comparisons).
    #[must_use]
    pub fn digests(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.digest()).collect()
    }

    /// Steps until converged, up to `max` rounds. Returns the number of
    /// rounds it took, or `None` when `max` was not enough.
    pub fn run_until_converged(&mut self, max: u64) -> Option<u64> {
        for r in 0..max {
            if self.converged() {
                return Some(r);
            }
            self.step();
        }
        self.converged().then_some(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gossip::MeshConfig;
    use crate::member::ObjectAd;
    use mockingbird_runtime::resolver::ObjectName;

    fn mesh(seed: u64, n: u64) -> SimMesh {
        let nodes = (1..=n)
            .map(|id| {
                let node = MeshNode::new(MeshConfig::new(id, seed));
                node.advertise(ObjectAd::new(
                    "calc",
                    0xA,
                    0,
                    format!("127.0.0.1:{}", 9000 + id).parse().unwrap(),
                ));
                node
            })
            .collect();
        let sim = SimMesh::new(nodes);
        sim.introduce_all();
        sim
    }

    #[test]
    fn a_connected_mesh_converges() {
        let mut sim = mesh(42, 5);
        let took = sim.run_until_converged(50).expect("converged");
        assert!(took <= 50);
        for node in sim.nodes() {
            assert_eq!(node.lookup(&ObjectName::new("calc", 0xA)).len(), 5);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        // A partition plus a departure makes the history nontrivial:
        // *when* each node hears the tombstone depends on the seeded
        // fanout choices, so the digest history exercises the rng.
        let history = |seed: u64| {
            let mut sim = mesh(seed, 5);
            sim.partition(&[&[1, 2, 3], &[4, 5]]);
            sim.node(5).leave();
            let mut h = Vec::new();
            for _ in 0..12 {
                sim.step();
                h.push(sim.digests());
            }
            h
        };
        assert_eq!(history(7), history(7), "same seed, same history");
        let histories: Vec<_> = (0..8).map(history).collect();
        assert!(
            histories.windows(2).any(|w| w[0] != w[1]),
            "across seeds, gossip timing differs"
        );
    }

    #[test]
    fn partition_blocks_and_heal_reconverges() {
        let mut sim = mesh(42, 4);
        sim.run_until_converged(50).expect("initial convergence");
        sim.partition(&[&[1, 2], &[3, 4]]);
        // Node 3 leaves while partitioned: the far side cannot hear the
        // announcement, so the views must disagree.
        sim.node(3).leave();
        for _ in 0..4 {
            sim.step();
        }
        assert!(!sim.converged(), "partitioned sides disagree");
        // Heal and rejoin: gossip reconciles every view, including the
        // fresh incarnation that supersedes the departure.
        sim.heal();
        sim.node(3).rejoin();
        sim.run_until_converged(80)
            .expect("re-convergence after heal");
        for node in sim.nodes() {
            assert_eq!(node.lookup(&ObjectName::any("calc")).len(), 4);
        }
    }
}
