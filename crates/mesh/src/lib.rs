//! A gossip-style membership and naming mesh for Mockingbird nodes.
//!
//! The paper compiles stubs from *pairs of declarations*; this crate
//! supplies the missing half of location transparency: given an object
//! name and the interface fingerprint a stub was compiled against,
//! which live endpoints currently serve it? Each [`MeshNode`]
//! advertises its objects as [`ObjectAd`]s — `(name, interface fp,
//! rules fp, endpoint, zone, latency tier)`, the fingerprints taken
//! from the same handshake material connections exchange at dial time —
//! and spreads its view of the cluster with seeded, deterministic
//! anti-entropy gossip:
//!
//! - [`member`] — advertisements and per-member state (incarnation,
//!   heartbeat, status) with the merge precedence rules;
//! - [`gossip`] — the [`MeshNode`] itself: advertise/leave, a `tick`
//!   that ages suspicion and picks seeded fanout targets, a `receive`
//!   that merges remote views, and a name→endpoints `lookup`;
//! - [`resolver`] — [`MeshResolver`], the adapter that plugs a mesh
//!   node into a [`ConnectionPool`](mockingbird_runtime::ConnectionPool)
//!   as its [`Resolver`](mockingbird_runtime::Resolver);
//! - [`sim`] — [`SimMesh`], a single-process deterministic harness:
//!   synchronous delivery in node order, partitions and heals on
//!   command, so chaos tests replay the same convergence history from
//!   the same seed, every run.
//!
//! Gossip here is deliberately transport-free: `tick` *returns* the
//! messages to send and `receive` accepts them, so the same node code
//! runs under the simulator, over a real transport, or inside a bench
//! harness without caring which.

pub mod gossip;
pub mod member;
pub mod resolver;
pub mod sim;

pub use gossip::{ArtifactPeer, GossipMessage, GossipTicker, MeshConfig, MeshNode};
pub use member::{MemberState, MemberStatus, ObjectAd};
pub use resolver::MeshResolver;
pub use sim::SimMesh;
