//! `mbc` — the Mockingbird stub compiler, as a command-line tool.
//!
//! The paper's prototype was driven through a GUI (Fig. 7); this binary
//! is the batch equivalent, built on the same [`Session`] pipeline:
//!
//! ```text
//! mbc parse <files...>                          list the declarations
//! mbc mtype <files...> --of NAME [--script F]   print a declaration's Mtype
//! mbc dot   <files...> --of NAME [--script F]   Graphviz of the Mtype
//! mbc compare <files...> --left A --right B [--script F] [--subtype]
//! mbc emit  <files...> --left A --right B --script F [--name N]
//! mbc save  <files...> --script F --out P.mbproj.json
//! mbc batch <files...> --pairs F [--jobs N] [--subtype] [--profile] [--out P.mbproj.json]
//! mbc emit-stubs --out generated_stubs.rs
//! ```
//!
//! `batch` compiles many pairs through one shared, content-addressed
//! verdict cache (see [`BatchCompiler`]); `--pairs` names a file of
//! whitespace-separated `LEFT RIGHT` lines (`#` comments). Loading a
//! project file restores any cache it carries, and `--out` saves the
//! warmed cache back for the next run.
//!
//! `emit-stubs` is the build-time half of the second Futamura
//! projection: it compiles the canonical fixture corpus (the same pairs
//! `report x6`/`x11` and the differential property suite reconstruct)
//! into wire programs, specialises each into straight-line native Rust,
//! and writes the module. The output is deterministic — running it
//! twice yields byte-identical source.
//!
//! [`BatchCompiler`]: mockingbird::BatchCompiler
//!
//! File kinds are chosen by extension: `.c`/`.h` C, `.cpp`/`.cc`/`.cxx`
//! C++, `.java` Java source, `.class` Java class files, `.idl` CORBA
//! IDL, `.mbproj.json` project files.

use std::process::ExitCode;

use mockingbird::artifact::SegmentStore;
use mockingbird::stubgen::emit::{emit_c_stub, emit_jni_bridge, emit_rust_adapter};
use mockingbird::stype::project::Project;
use mockingbird::{ArtifactImport, BatchOptions, Mode, PairOutcome, Session, SessionError};

fn usage() -> String {
    "usage: mbc <parse|mtype|dot|compare|emit|save|batch> <files...> [options]\n\
     \x20      mbc emit-stubs --out FILE\n\
     options: --of NAME | --left NAME --right NAME | --script FILE |\n\
     \x20        --subtype | --name STUBNAME | --out FILE |\n\
     \x20        --pairs FILE | --jobs N | --profile | --store DIR"
        .to_string()
}

struct Args {
    command: String,
    files: Vec<String>,
    of: Option<String>,
    left: Option<String>,
    right: Option<String>,
    script: Option<String>,
    name: String,
    out: Option<String>,
    subtype: bool,
    pairs: Option<String>,
    jobs: usize,
    profile: bool,
    store: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter().peekable();
    let command = it.next().ok_or_else(usage)?.clone();
    let mut args = Args {
        command,
        files: Vec::new(),
        of: None,
        left: None,
        right: None,
        script: None,
        name: "stub".to_string(),
        out: None,
        subtype: false,
        pairs: None,
        jobs: 0,
        profile: false,
        store: None,
    };
    while let Some(a) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value\n{}", usage()))
        };
        match a.as_str() {
            "--of" => args.of = Some(take("--of")?),
            "--left" => args.left = Some(take("--left")?),
            "--right" => args.right = Some(take("--right")?),
            "--script" => args.script = Some(take("--script")?),
            "--name" => args.name = take("--name")?,
            "--out" => args.out = Some(take("--out")?),
            "--pairs" => args.pairs = Some(take("--pairs")?),
            "--jobs" => {
                args.jobs = take("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--subtype" => args.subtype = true,
            "--profile" => args.profile = true,
            "--store" => args.store = Some(take("--store")?),
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`\n{}", usage()))
            }
            file => args.files.push(file.to_string()),
        }
    }
    Ok(args)
}

fn load_into(session: &mut Session, path: &str) -> Result<ArtifactImport, String> {
    let fail = |e: SessionError| format!("{path}: {e}");
    if path.ends_with(".class") {
        let blob = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        session.load_java_classes(&[blob]).map_err(fail)?;
        return Ok(ArtifactImport::default());
    }
    if path.ends_with(".mbproj.json") {
        let p = Project::load(path).map_err(|e| format!("{path}: {e}"))?;
        // Absorbing (rather than re-inserting declarations) also restores
        // any compile/program caches the project carries, so batch runs
        // start warm on both the control and the data plane.
        let absorbed = session.absorb_project(p).map_err(fail)?;
        if absorbed.restored() > 0 || absorbed.stale > 0 {
            eprintln!("restored {absorbed} from {path}");
        }
        return Ok(absorbed);
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".c") || path.ends_with(".h") {
        session.load_c(&text).map_err(fail)?;
    } else if path.ends_with(".cpp") || path.ends_with(".cc") || path.ends_with(".cxx") {
        session.load_cxx(&text).map_err(fail)?;
    } else if path.ends_with(".java") {
        session.load_java(&text).map_err(fail)?;
    } else if path.ends_with(".idl") {
        session.load_idl(&text).map_err(fail)?;
    } else {
        return Err(format!(
            "{path}: unknown file kind (expected .c/.h/.cpp/.java/.class/.idl/.mbproj.json)"
        ));
    }
    Ok(ArtifactImport::default())
}

fn run(args: Args) -> Result<(), String> {
    // `emit-stubs` is fixture-driven — it reconstructs the canonical
    // corpus itself and takes no input declarations.
    if args.command == "emit-stubs" {
        let out = args.out.as_deref().ok_or("emit-stubs needs --out FILE")?;
        return emit_stubs(out);
    }
    let mut session = Session::new();
    if args.files.is_empty() {
        return Err(format!("no input files\n{}", usage()));
    }
    let mut restored = ArtifactImport::default();
    for f in &args.files {
        let r = load_into(&mut session, f)?;
        restored.verdicts += r.verdicts;
        restored.programs += r.programs;
        restored.stale += r.stale;
    }
    // A persistent artifact store warms the session before any command
    // runs and captures whatever the command compiled afterwards.
    let store = match &args.store {
        Some(dir) => {
            let s = SegmentStore::open(dir).map_err(|e| format!("{dir}: {e}"))?;
            let r = session.import_artifacts(&s);
            restored.verdicts += r.verdicts;
            restored.programs += r.programs;
            restored.stale += r.stale;
            Some(s)
        }
        None => None,
    };
    if let Some(script_path) = &args.script {
        let text =
            std::fs::read_to_string(script_path).map_err(|e| format!("{script_path}: {e}"))?;
        let n = session.annotate(&text).map_err(|e| e.to_string())?;
        eprintln!("applied {n} annotation statements from {script_path}");
    }
    let result = match args.command.as_str() {
        "parse" => {
            for d in session.universe().iter() {
                println!("{:<12} {}", d.lang.to_string(), d.name);
            }
            Ok(())
        }
        "mtype" => {
            let name = args.of.ok_or("mtype needs --of NAME")?;
            println!(
                "{}",
                session.display_mtype(&name).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        "dot" => {
            let name = args.of.ok_or("dot needs --of NAME")?;
            println!("{}", session.dot(&name).map_err(|e| e.to_string())?);
            Ok(())
        }
        "compare" => {
            let left = args.left.ok_or("compare needs --left NAME")?;
            let right = args.right.ok_or("compare needs --right NAME")?;
            let mode = if args.subtype {
                Mode::Subtype
            } else {
                Mode::Equivalence
            };
            match session.compare(&left, &right, mode) {
                Ok(plan) => {
                    println!(
                        "MATCH ({}): {} node pairs",
                        if args.subtype { "one-way" } else { "two-way" },
                        plan.len()
                    );
                    Ok(())
                }
                Err(e) => Err(format!("NO MATCH\n{e}")),
            }
        }
        "emit" => {
            let left = args.left.ok_or("emit needs --left NAME")?;
            let right = args.right.ok_or("emit needs --right NAME")?;
            let stub = session
                .function_stub(&left, &right)
                .map_err(|e| e.to_string())?;
            println!(
                "{}",
                emit_c_stub(&stub, &args.name, &["args"]).map_err(|e| e.to_string())?
            );
            println!(
                "{}",
                emit_jni_bridge(&stub, &left, &args.name, &args.name).map_err(|e| e.to_string())?
            );
            println!(
                "{}",
                emit_rust_adapter(&stub, &args.name, &["args"]).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        "batch" => {
            let pairs_path = args.pairs.ok_or("batch needs --pairs FILE")?;
            let text =
                std::fs::read_to_string(&pairs_path).map_err(|e| format!("{pairs_path}: {e}"))?;
            let mut names: Vec<(String, String)> = Vec::new();
            for (lineno, line) in text.lines().enumerate() {
                let line = line.split('#').next().unwrap_or("").trim();
                if line.is_empty() {
                    continue;
                }
                let mut parts = line.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some(l), Some(r), None) => names.push((l.to_string(), r.to_string())),
                    _ => {
                        return Err(format!(
                            "{pairs_path}:{}: expected `LEFT RIGHT`, got `{line}`",
                            lineno + 1
                        ))
                    }
                }
            }
            let pairs: Vec<(&str, &str)> = names
                .iter()
                .map(|(l, r)| (l.as_str(), r.as_str()))
                .collect();
            let opts = BatchOptions {
                mode: if args.subtype {
                    Mode::Subtype
                } else {
                    Mode::Equivalence
                },
                jobs: args.jobs,
                // Plans feed the data plane: matched pairs get fused
                // wire programs compiled (and persisted with --out).
                build_plans: true,
                build_programs: true,
            };
            let report = session
                .batch_compile(&pairs, &opts)
                .map_err(|e| e.to_string())?;
            for p in &report.pairs {
                match &p.outcome {
                    PairOutcome::Match {
                        entries,
                        fallback: Some(kind),
                        ..
                    } => println!(
                        "MATCH    {} ~ {} ({entries} node pairs, interpretive: {})",
                        p.left,
                        p.right,
                        kind.label()
                    ),
                    PairOutcome::Match { entries, .. } => {
                        println!("MATCH    {} ~ {} ({entries} node pairs)", p.left, p.right)
                    }
                    PairOutcome::Mismatch(m) => {
                        println!("MISMATCH {} ~ {}: {}", p.left, p.right, m.reason)
                    }
                }
            }
            let s = &report.stats;
            println!(
                "batch: {} pairs ({} unique), {} matched, {} mismatched, \
                 {} workers, {:.1?}",
                s.total_pairs, s.unique_pairs, s.matched, s.mismatched, s.workers, s.wall
            );
            println!(
                "cache: {} hits, {} misses, {} inserts ({} corr hits, {:.0}% hit rate, {} stored)",
                s.cache.hits,
                s.cache.misses,
                s.cache.inserts,
                s.cache.corr_hits,
                s.cache.hit_rate() * 100.0,
                s.cache.verdicts
            );
            println!(
                "programs: {} compiled, {} cache hits, {} interpretive fallbacks",
                s.programs.compiles, s.programs.hits, s.programs.unsupported
            );
            if restored.restored() > 0 || restored.stale > 0 {
                println!("artifacts restored: {restored}");
            }
            let parts: Vec<String> = session
                .wire_programs()
                .fallback_breakdown()
                .into_iter()
                .filter(|&(_, count)| count > 0)
                .map(|(kind, count)| format!("{count} {}", kind.label()))
                .collect();
            if !parts.is_empty() {
                println!("fallback reasons: {}", parts.join(", "));
            }
            if args.profile {
                println!("phase      calls  total_us  p50_us  p95_us  max_us");
                for p in &s.phases {
                    println!(
                        "{:<9} {:>6} {:>9} {:>7} {:>7} {:>7}",
                        p.name, p.calls, p.total_us, p.p50_us, p.p95_us, p.max_us
                    );
                }
            }
            if let Some(out) = &args.out {
                session
                    .save_project(&args.name, out)
                    .map_err(|e| e.to_string())?;
                println!("saved warm cache ({} verdicts) to {out}", s.cache.verdicts);
            }
            Ok(())
        }
        "save" => {
            let out = args.out.ok_or("save needs --out FILE")?;
            session
                .save_project(&args.name, &out)
                .map_err(|e| e.to_string())?;
            println!("saved {} declarations to {out}", session.universe().len());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    if let (Some(store), Ok(())) = (&store, &result) {
        session.export_artifacts(store);
        match store.commit() {
            Ok(n) if n > 0 => eprintln!("store: committed {n} new artifacts"),
            Ok(_) => {}
            Err(e) => return Err(format!("store commit failed: {e}")),
        }
    }
    result
}

/// `emit-stubs --out FILE`: specialise the canonical fixture corpus'
/// wire programs into native Rust marshal stubs (the second Futamura
/// projection). The corpus is seed-pinned and shared with `report
/// x6`/`x11` and the differential property suite, so the emitted
/// functions resolve by nominal fingerprint in those binaries.
fn emit_stubs(out: &str) -> Result<(), String> {
    use mockingbird::comparer::{CacheKey, Comparer, RuleSet};
    use mockingbird::corpus::{
        choice_heavy_pair, deep_list_pair, fitter_pair, marshal_corpus, property_pair,
    };
    use mockingbird::mtype::{MtypeGraph, MtypeId};
    use mockingbird::plan::CoercionPlan;
    use mockingbird::stubgen::{emit_native_module, native_keys_for, FunctionStub};
    use mockingbird::wire::{nominal_fingerprint, NativeKey, NativeProgramKind, WireProgram};
    use mockingbird::{BatchCompiler, BatchOptions};
    use std::sync::Arc;

    let mut entries: Vec<(NativeKey, Arc<WireProgram>)> = Vec::new();

    // The X6/X11 marshal corpus: batch-compile the 200 classes and take
    // every program the shared cache holds — its keys are exactly what
    // the benches derive at run time.
    let corpus = marshal_corpus(200, 42);
    let bc = BatchCompiler::new(corpus.graph.clone());
    let report = bc.compile(&corpus.pairs, &BatchOptions::default());
    let corpus_programs = bc.programs().export().len();
    for (key, prog) in bc.programs().export() {
        entries.push((
            NativeKey {
                pair: key,
                kind: NativeProgramKind::Value,
            },
            prog,
        ));
    }

    // The 64-seed property stream plus the adversarial shapes, each
    // pair across its own two graphs — the layout the differential
    // suite reconstructs.
    let mut fixture_pair = |g: &MtypeGraph, h: &MtypeGraph, ty: MtypeId, var: MtypeId| {
        let Ok(corr) = Comparer::new(g, h).compare(ty, var, Mode::Equivalence) else {
            return;
        };
        let plan = CoercionPlan::new(g, h, corr, RuleSet::full(), Mode::Equivalence);
        // Pairs the program compiler declines stay interpretive.
        let Ok(prog) = WireProgram::compile(&plan) else {
            return;
        };
        let key = CacheKey {
            left_fp: nominal_fingerprint(g, ty),
            right_fp: nominal_fingerprint(h, var),
            mode: Mode::Equivalence,
            rules_fp: RuleSet::full().fingerprint(),
        };
        entries.push((
            NativeKey {
                pair: key,
                kind: NativeProgramKind::Value,
            },
            Arc::new(prog),
        ));
    };
    for seed in 0..64u64 {
        let (g, h, ty, var, _) = property_pair(seed);
        fixture_pair(&g, &h, ty, var);
    }
    let (g, h, ty, var) = choice_heavy_pair();
    fixture_pair(&g, &h, ty, var);
    let (g, h, ty, var) = deep_list_pair();
    fixture_pair(&g, &h, ty, var);

    // The fitter's remote data plane: invocation (encode) and result
    // (decode) programs, keyed the way `RemoteStub::new` resolves them.
    let mut fg = MtypeGraph::new();
    let (java, cfun) = fitter_pair(&mut fg);
    let corr = Comparer::new(&fg, &fg)
        .compare(java, cfun, Mode::Equivalence)
        .map_err(|e| format!("fitter pair does not match: {e}"))?;
    let plan = Arc::new(CoercionPlan::new(
        &fg,
        &fg,
        corr,
        RuleSet::full(),
        Mode::Equivalence,
    ));
    let stub = FunctionStub::new(plan.clone()).map_err(|e| e.to_string())?;
    let (args_key, result_key) = native_keys_for(&stub);
    let (left, right) = (stub.left_shape(), stub.right_shape());
    let inv = WireProgram::compile_invocation(
        &plan,
        left.invocation,
        right.invocation,
        right.reply_index,
    )
    .map_err(|e| format!("fitter invocation program: {e}"))?;
    let res = WireProgram::compile_pair(&plan, left.output, right.output)
        .map_err(|e| format!("fitter result program: {e}"))?;
    entries.push((args_key, Arc::new(inv)));
    entries.push((result_key, Arc::new(res)));

    let total = entries.len();
    let source = emit_native_module(&entries).map_err(|e| e.to_string())?;
    std::fs::write(out, &source).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "emitted {total} native stub programs ({corpus_programs} corpus, \
         {} fixture, 2 fitter; {} of {} corpus pairs interpretive) to {out} ({} bytes)",
        total - corpus_programs - 2,
        report.stats.programs.unsupported,
        report.stats.matched,
        source.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
