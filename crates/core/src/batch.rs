//! Batch compilation: many declaration pairs, one shared cache.
//!
//! The paper's tool compares one pair per Compare click; real interface
//! migrations (§5's VisualAge corpus) compile *hundreds* of pairs whose
//! Mtypes overlap heavily. [`BatchCompiler`] takes a frozen graph
//! snapshot plus a list of root pairs, deduplicates them, fans the
//! unique work out over worker threads that all share one
//! [`CompareCache`], and reports per-pair outcomes alongside cache
//! effectiveness. A failing pair yields a [`PairOutcome::Mismatch`] in
//! its slot; siblings are unaffected.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mockingbird_comparer::{CacheKey, CacheStats, CompareCache, Comparer, Mismatch, Mode, RuleSet};
use mockingbird_mtype::{MtypeGraph, MtypeId};
use mockingbird_obs::Histogram;
use mockingbird_plan::CoercionPlan;
use mockingbird_wire::{
    nominal_fingerprint, FallbackKind, ProgramCache, ProgramStats, WireProgram,
};

/// Knobs for one [`BatchCompiler::compile`] run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Equivalence or subtype, applied to every pair.
    pub mode: Mode,
    /// Worker threads; `0` picks the host's available parallelism.
    pub jobs: usize,
    /// Whether matched pairs also get a [`CoercionPlan`] derived. Turn
    /// off to measure or run the compare stage alone.
    pub build_plans: bool,
    /// Whether matched pairs (with plans) also get fused
    /// [`WireProgram`]s compiled through the shared [`ProgramCache`].
    /// Requires `build_plans`; pairs the program compiler declines run
    /// interpretively and are cached negatively.
    pub build_programs: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            mode: Mode::Equivalence,
            jobs: 0,
            build_plans: true,
            build_programs: true,
        }
    }
}

/// What happened to one pair.
#[derive(Clone)]
pub enum PairOutcome {
    /// The pair compared successfully.
    Match {
        /// The shared coercion plan (when `build_plans` was on).
        plan: Option<Arc<CoercionPlan>>,
        /// The fused wire program (when `build_programs` was on and the
        /// program compiler supported the pair).
        program: Option<Arc<WireProgram>>,
        /// Why the program compiler declined this pair, when it did
        /// (`None` when a program compiled or programs were off) — the
        /// attribution behind every interpretive fallback.
        fallback: Option<FallbackKind>,
        /// Size of the correspondence backing the match.
        entries: usize,
    },
    /// The pair failed with diagnostics; the rest of the batch is
    /// unaffected.
    Mismatch(Box<Mismatch>),
}

impl PairOutcome {
    /// Whether this outcome is a match.
    pub fn is_match(&self) -> bool {
        matches!(self, PairOutcome::Match { .. })
    }
}

/// One pair's slot in a [`BatchReport`].
#[derive(Clone)]
pub struct PairReport {
    /// Position in the input slice.
    pub index: usize,
    /// Left root as submitted.
    pub left: MtypeId,
    /// Right root as submitted.
    pub right: MtypeId,
    /// When the same `(left, right)` pair appeared earlier in the input,
    /// the index of its first occurrence (this slot shares its outcome).
    pub duplicate_of: Option<usize>,
    /// The verdict.
    pub outcome: PairOutcome,
}

/// Whole-batch accounting.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Pairs submitted.
    pub total_pairs: usize,
    /// Pairs actually compiled after exact-pair dedup.
    pub unique_pairs: usize,
    /// Submitted pairs that matched.
    pub matched: usize,
    /// Submitted pairs that mismatched.
    pub mismatched: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Cache counter deltas attributable to this run.
    pub cache: CacheStats,
    /// Program-cache counter deltas attributable to this run.
    pub programs: ProgramStats,
    /// Per-phase timing profile of this run (compare, plan, canonize,
    /// lower), in pipeline order. Phases a run never entered (e.g.
    /// `lower` with programs off) report zero calls.
    pub phases: Vec<PhaseStats>,
}

/// Latency profile of one compile phase across a batch run, distilled
/// from a lock-free [`Histogram`] the workers record into.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase name: `compare`, `plan`, `canonize`, or `lower`.
    pub name: &'static str,
    /// Times the phase ran (once per unique pair that reached it).
    pub calls: u64,
    /// Total time spent in the phase, microseconds.
    pub total_us: u64,
    /// Median per-call time, microseconds.
    pub p50_us: u64,
    /// 95th-percentile per-call time, microseconds.
    pub p95_us: u64,
    /// Worst per-call time, microseconds.
    pub max_us: u64,
}

/// Per-phase histograms shared by every worker of one `compile` run.
#[derive(Default)]
struct PhaseTimings {
    compare: Histogram,
    plan: Histogram,
    canonize: Histogram,
    lower: Histogram,
}

impl PhaseTimings {
    fn stats(&self) -> Vec<PhaseStats> {
        [
            ("compare", &self.compare),
            ("plan", &self.plan),
            ("canonize", &self.canonize),
            ("lower", &self.lower),
        ]
        .into_iter()
        .map(|(name, h)| {
            let s = h.snapshot();
            PhaseStats {
                name,
                calls: s.count(),
                total_us: s.sum(),
                p50_us: s.quantile(0.5),
                p95_us: s.quantile(0.95),
                max_us: s.max(),
            }
        })
        .collect()
    }
}

/// Result of one [`BatchCompiler::compile`] call.
pub struct BatchReport {
    /// One slot per submitted pair, in input order.
    pub pairs: Vec<PairReport>,
    /// Whole-batch accounting.
    pub stats: BatchStats,
}

/// A [`PairReport`] with the declaration names the session resolved.
#[derive(Clone)]
pub struct NamedPairReport {
    /// Left declaration name.
    pub left: String,
    /// Right declaration name.
    pub right: String,
    /// As [`PairReport::duplicate_of`].
    pub duplicate_of: Option<usize>,
    /// The verdict.
    pub outcome: PairOutcome,
}

/// A [`BatchReport`] with names attached (the session-level view).
pub struct NamedBatchReport {
    /// One slot per submitted pair, in input order.
    pub pairs: Vec<NamedPairReport>,
    /// Whole-batch accounting.
    pub stats: BatchStats,
}

impl NamedBatchReport {
    /// Zips a graph-level report with the names it was compiled from.
    pub fn from_report(report: BatchReport, names: Vec<(String, String)>) -> Self {
        debug_assert_eq!(report.pairs.len(), names.len());
        let pairs = report
            .pairs
            .into_iter()
            .zip(names)
            .map(|(p, (left, right))| NamedPairReport {
                left,
                right,
                duplicate_of: p.duplicate_of,
                outcome: p.outcome,
            })
            .collect();
        NamedBatchReport {
            pairs,
            stats: report.stats,
        }
    }
}

/// The graph-level batch engine. Works directly on a frozen
/// [`MtypeGraph`] snapshot so callers that lower declarations themselves
/// (benchmarks, the CLI's project mode) need no [`Session`].
///
/// [`Session`]: crate::Session
pub struct BatchCompiler {
    graph: Arc<MtypeGraph>,
    rules: RuleSet,
    cache: Arc<CompareCache>,
    programs: Arc<ProgramCache>,
}

impl BatchCompiler {
    /// A compiler over `graph` with the full rule set and fresh caches.
    pub fn new(graph: Arc<MtypeGraph>) -> Self {
        BatchCompiler {
            graph,
            rules: RuleSet::full(),
            cache: Arc::new(CompareCache::new()),
            programs: Arc::new(ProgramCache::new()),
        }
    }

    /// Replaces the rule set.
    pub fn with_rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Shares an existing cache (e.g. a session's, or one warmed from a
    /// project file) instead of starting cold.
    pub fn with_cache(mut self, cache: Arc<CompareCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Shares an existing program cache (e.g. a session's, or one warmed
    /// from a project file).
    pub fn with_programs(mut self, programs: Arc<ProgramCache>) -> Self {
        self.programs = programs;
        self
    }

    /// The cache this compiler feeds and reads.
    pub fn cache(&self) -> &Arc<CompareCache> {
        &self.cache
    }

    /// The wire-program cache this compiler feeds and reads.
    pub fn programs(&self) -> &Arc<ProgramCache> {
        &self.programs
    }

    /// The frozen graph snapshot.
    pub fn graph(&self) -> &Arc<MtypeGraph> {
        &self.graph
    }

    fn outcome(
        &self,
        cmp: &Comparer<'_, '_>,
        l: MtypeId,
        r: MtypeId,
        opts: &BatchOptions,
        timers: &PhaseTimings,
    ) -> PairOutcome {
        let t = Instant::now();
        let compared = cmp.compare_arc(l, r, opts.mode);
        timers.compare.record_duration(t.elapsed());
        match compared {
            Ok(corr) => {
                let entries = corr.entries.len();
                let plan = opts.build_plans.then(|| {
                    let t = Instant::now();
                    let plan = Arc::new(CoercionPlan::new_shared(
                        self.graph.clone(),
                        self.graph.clone(),
                        corr,
                        self.rules.clone(),
                        opts.mode,
                    ));
                    timers.plan.record_duration(t.elapsed());
                    plan
                });
                let (program, fallback) = match (&plan, opts.build_programs) {
                    (Some(plan), true) => {
                        let t = Instant::now();
                        let key = CacheKey {
                            left_fp: nominal_fingerprint(&self.graph, l),
                            right_fp: nominal_fingerprint(&self.graph, r),
                            mode: opts.mode,
                            rules_fp: self.rules.fingerprint(),
                        };
                        timers.canonize.record_duration(t.elapsed());
                        let t = Instant::now();
                        let program = self
                            .programs
                            .get_or_compile_reasoned(key, || WireProgram::compile(plan));
                        timers.lower.record_duration(t.elapsed());
                        match program {
                            Ok(p) => (Some(p), None),
                            Err(kind) => (None, Some(kind)),
                        }
                    }
                    _ => (None, None),
                };
                PairOutcome::Match {
                    plan,
                    program,
                    fallback,
                    entries,
                }
            }
            Err(m) => PairOutcome::Mismatch(Box::new(m)),
        }
    }

    fn comparer(&self) -> Comparer<'_, '_> {
        Comparer::with_rules(&self.graph, &self.graph, self.rules.clone())
            .with_shared_cache(self.cache.clone())
    }

    /// Compiles every pair, deduplicating exact `(left, right)` repeats
    /// up front (fingerprint-level duplicates collapse in the cache).
    pub fn compile(&self, pairs: &[(MtypeId, MtypeId)], opts: &BatchOptions) -> BatchReport {
        let before = self.cache.stats();
        let programs_before = self.programs.stats();
        let start = Instant::now();

        // Exact-pair dedup: later occurrences borrow the first's outcome.
        let mut first_at: HashMap<(MtypeId, MtypeId), usize> = HashMap::new();
        let mut duplicate_of: Vec<Option<usize>> = Vec::with_capacity(pairs.len());
        let mut unique: Vec<(MtypeId, MtypeId)> = Vec::new();
        // Maps each input index to its slot in `unique`.
        let mut slot_of: Vec<usize> = Vec::with_capacity(pairs.len());
        for (i, &pair) in pairs.iter().enumerate() {
            match first_at.get(&pair) {
                Some(&j) => {
                    duplicate_of.push(Some(j));
                    slot_of.push(slot_of[j]);
                }
                None => {
                    first_at.insert(pair, i);
                    duplicate_of.push(None);
                    slot_of.push(unique.len());
                    unique.push(pair);
                }
            }
        }

        let workers = if opts.jobs > 0 {
            opts.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
        .clamp(1, unique.len().max(1));

        // Lock-free histograms: every worker records phase timings
        // concurrently with no coordination beyond the atomic buckets.
        let timers = PhaseTimings::default();
        let outcomes: Vec<PairOutcome> = if workers == 1 {
            let cmp = self.comparer();
            unique
                .iter()
                .map(|&(l, r)| self.outcome(&cmp, l, r, opts, &timers))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Mutex<Vec<Option<PairOutcome>>> = Mutex::new(vec![None; unique.len()]);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        // One long-lived comparer per worker: its
                        // fingerprint memo amortises across pairs.
                        let cmp = self.comparer();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(l, r)) = unique.get(i) else { break };
                            let out = self.outcome(&cmp, l, r, opts, &timers);
                            slots.lock().expect("batch slots")[i] = Some(out);
                        }
                    });
                }
            });
            slots
                .into_inner()
                .expect("batch slots")
                .into_iter()
                .map(|o| o.expect("every slot filled"))
                .collect()
        };

        let mut matched = 0usize;
        let mut mismatched = 0usize;
        let reports: Vec<PairReport> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(left, right))| {
                let outcome = outcomes[slot_of[i]].clone();
                if outcome.is_match() {
                    matched += 1;
                } else {
                    mismatched += 1;
                }
                PairReport {
                    index: i,
                    left,
                    right,
                    duplicate_of: duplicate_of[i],
                    outcome,
                }
            })
            .collect();

        BatchReport {
            pairs: reports,
            stats: BatchStats {
                total_pairs: pairs.len(),
                unique_pairs: unique.len(),
                matched,
                mismatched,
                workers,
                wall: start.elapsed(),
                cache: self.cache.stats().since(&before),
                programs: self.programs.stats().since(&programs_before),
                phases: timers.stats(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_mtype::{IntRange, RealPrecision};

    fn small_graph() -> (Arc<MtypeGraph>, MtypeId, MtypeId, MtypeId) {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let nested = {
            let inner = g.record(vec![r, i]);
            g.record(vec![i, inner])
        };
        let flat = g.record(vec![i, i, r]);
        let odd = g.record(vec![r, r]);
        (g.snapshot(), nested, flat, odd)
    }

    #[test]
    fn batch_reports_per_pair_and_dedups() {
        let (g, nested, flat, odd) = small_graph();
        let bc = BatchCompiler::new(g);
        let pairs = [(nested, flat), (nested, odd), (nested, flat)];
        let rep = bc.compile(&pairs, &BatchOptions::default());

        assert_eq!(rep.stats.total_pairs, 3);
        assert_eq!(rep.stats.unique_pairs, 2);
        assert_eq!((rep.stats.matched, rep.stats.mismatched), (2, 1));
        assert!(rep.pairs[0].outcome.is_match());
        assert!(!rep.pairs[1].outcome.is_match(), "odd shape must mismatch");
        assert_eq!(rep.pairs[2].duplicate_of, Some(0));
        assert!(rep.pairs[2].outcome.is_match());
        let PairOutcome::Match {
            plan,
            program,
            fallback,
            entries,
        } = &rep.pairs[0].outcome
        else {
            panic!()
        };
        assert!(plan.is_some() && *entries > 0);
        assert!(
            program.is_some(),
            "the nested/flat record pair compiles to a wire program"
        );
        assert_eq!(*fallback, None, "a compiled pair has no fallback reason");
    }

    #[test]
    fn wire_programs_are_cached_across_runs_and_agree_with_plans() {
        use mockingbird_values::{Endian, MValue};
        use mockingbird_wire::{CdrReader, CdrWriter};

        let (g, nested, flat, _) = small_graph();
        let bc = BatchCompiler::new(g.clone());
        let pairs = [(nested, flat)];
        let cold = bc.compile(&pairs, &BatchOptions::default());
        assert_eq!(cold.stats.programs.compiles, 1, "{:?}", cold.stats.programs);
        let warm = bc.compile(&pairs, &BatchOptions::default());
        assert_eq!(warm.stats.programs.compiles, 0);
        assert!(warm.stats.programs.hits >= 1, "{:?}", warm.stats.programs);

        // The cached program is the real data plane: its output matches
        // the interpretive plan byte for byte.
        let PairOutcome::Match {
            plan: Some(plan),
            program: Some(program),
            ..
        } = &warm.pairs[0].outcome
        else {
            panic!("expected a fused match")
        };
        let v = MValue::Record(vec![
            MValue::Int(1),
            MValue::Record(vec![MValue::Real(0.5), MValue::Int(2)]),
        ]);
        let mut fused = CdrWriter::new(Endian::Little);
        program.encode_value(&mut fused, &v).unwrap();
        let converted = plan.convert(&v).unwrap();
        let mut oracle = CdrWriter::new(Endian::Little);
        oracle.put_value(&g, flat, &converted).unwrap();
        let oracle = oracle.into_bytes();
        assert_eq!(fused.into_bytes(), oracle);
        let mut r = CdrReader::new(&oracle, Endian::Little);
        assert_eq!(program.decode_value(&mut r).unwrap(), v);
    }

    #[test]
    fn failing_pair_does_not_poison_cache_or_siblings() {
        let (g, nested, flat, odd) = small_graph();
        let bc = BatchCompiler::new(g);
        let pairs = [(nested, odd), (nested, flat)];
        let cold = bc.compile(&pairs, &BatchOptions::default());
        assert!(!cold.pairs[0].outcome.is_match());
        assert!(cold.pairs[1].outcome.is_match(), "sibling unaffected");

        // A second run over the same pairs must hit the cache and agree.
        let warm = bc.compile(&pairs, &BatchOptions::default());
        assert!(!warm.pairs[0].outcome.is_match());
        assert!(warm.pairs[1].outcome.is_match());
        assert!(warm.stats.cache.hits >= 2, "{:?}", warm.stats.cache);
        assert_eq!(warm.stats.cache.inserts, 0, "no re-proofs when warm");
    }

    #[test]
    fn phase_timings_cover_the_pipeline() {
        let (g, nested, flat, odd) = small_graph();
        let bc = BatchCompiler::new(g);
        let pairs = [(nested, flat), (nested, odd)];
        let rep = bc.compile(&pairs, &BatchOptions::default());
        let phase = |name: &str| {
            rep.stats
                .phases
                .iter()
                .find(|p| p.name == name)
                .unwrap()
                .clone()
        };
        // Every unique pair is compared; only the matching one goes on
        // to plan, canonize, and lower.
        assert_eq!(phase("compare").calls, 2);
        assert_eq!(phase("plan").calls, 1);
        assert_eq!(phase("canonize").calls, 1);
        assert_eq!(phase("lower").calls, 1);
        for p in &rep.stats.phases {
            assert!(p.p50_us <= p.p95_us && p.p95_us <= p.max_us, "{p:?}");
            assert!(p.total_us >= p.max_us.min(p.total_us), "{p:?}");
        }

        // With plans (and thus programs) off, the later phases never run.
        let rep = bc.compile(
            &pairs,
            &BatchOptions {
                build_plans: false,
                build_programs: false,
                ..BatchOptions::default()
            },
        );
        assert_eq!(rep.stats.phases.iter().map(|p| p.calls).sum::<u64>(), 2);
    }

    #[test]
    fn explicit_jobs_fan_out() {
        let (g, nested, flat, odd) = small_graph();
        let bc = BatchCompiler::new(g);
        let pairs = [(nested, flat), (nested, odd), (flat, odd), (flat, flat)];
        let rep = bc.compile(
            &pairs,
            &BatchOptions {
                jobs: 3,
                ..BatchOptions::default()
            },
        );
        assert_eq!(rep.stats.workers, 3);
        assert_eq!(rep.pairs.len(), 4);
        assert!(rep.pairs[3].outcome.is_match(), "reflexive pair matches");
    }
}
