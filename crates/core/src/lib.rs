//! # Mockingbird
//!
//! A reproduction of *"Mockingbird: Flexible Stub Compilation from Pairs
//! of Declarations"* (IBM T.J. Watson Research Center, ICDCS 1999).
//!
//! Mockingbird compiles each stub from **two** declarations — one per
//! side of a language or process boundary — instead of imposing types
//! generated from a single IDL. Declarations may be C/C++, Java (class
//! files or source), CORBA IDL, or saved project files; they are
//! translated into the language-neutral **Mtype** model, compared by an
//! Amadio–Cardelli algorithm extended with isomorphism rules, and the
//! resulting coercion plan drives generated stubs — local, networked
//! (GIOP/CDR over TCP), or message-passing.
//!
//! This crate is the facade: the [`Session`] type mirrors the tool
//! anatomy of the paper's Fig. 6 (parsers → annotations → Comparer →
//! Stub Generator → project files), and the sub-crates are re-exported
//! under [`mtype`], [`comparer`], [`plan`], and friends.
//!
//! ## Quickstart — the paper's fitter example
//!
//! ```
//! use mockingbird::{Mode, Session};
//!
//! let mut s = Session::new();
//! s.load_c("typedef float point[2];
//!           void fitter(point pts[], int count, point *start, point *end);")?;
//! s.load_java(
//!     "public class Point { private float x; private float y; }
//!      public class Line { private Point start; private Point end; }
//!      public class PointVector extends java.util.Vector;
//!      public interface JavaIdeal { Line fitter(PointVector pts); }",
//! )?;
//! s.annotate(
//!     "annotate fitter.param(pts) length=param(count)
//!      annotate fitter.param(start) direction=out
//!      annotate fitter.param(end) direction=out
//!      annotate Line.field(start) non-null no-alias
//!      annotate Line.field(end) non-null no-alias
//!      annotate PointVector element=Point non-null
//!      annotate JavaIdeal.method(fitter).param(pts) non-null
//!      annotate JavaIdeal.method(fitter).ret non-null",
//! )?;
//! let plan = s.compare("JavaIdeal", "fitter", Mode::Equivalence)?;
//! let stub = s.function_stub("JavaIdeal", "fitter")?;
//! assert!(plan.len() > 0);
//! # Ok::<(), mockingbird::SessionError>(())
//! ```

pub mod batch;
pub mod session;

pub use mockingbird_baselines as baselines;
pub use mockingbird_comparer as comparer;
pub use mockingbird_corpus as corpus;
pub use mockingbird_lang_c as lang_c;
pub use mockingbird_lang_idl as lang_idl;
pub use mockingbird_lang_java as lang_java;
pub use mockingbird_mesh as mesh;
pub use mockingbird_mtype as mtype;
pub use mockingbird_obs as obs;
pub use mockingbird_plan as plan;
pub use mockingbird_runtime as runtime;
pub use mockingbird_stubgen as stubgen;
pub use mockingbird_stype as stype;
pub use mockingbird_values as values;
pub use mockingbird_wire as wire;

pub use batch::{
    BatchCompiler, BatchOptions, BatchReport, BatchStats, NamedBatchReport, NamedPairReport,
    PairOutcome, PairReport, PhaseStats,
};
pub use mockingbird_artifact as artifact;
pub use mockingbird_comparer::{CacheStats, CompareCache, Mode};
pub use mockingbird_plan::CoercionPlan;
pub use mockingbird_values::MValue;
pub use session::{ArtifactImport, Session, SessionError};
