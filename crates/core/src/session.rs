//! The session pipeline (the paper's Fig. 6).
//!
//! A [`Session`] holds the loaded declaration universe and the Mtype
//! graph; its methods mirror the boxes of Fig. 6: parse (C/C++, Java,
//! CORBA IDL, project files), annotate (interactively via selectors or
//! in batch via scripts), compare, and generate stubs. Sessions can be
//! saved to project files and restored.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use mockingbird_artifact::{ArtifactId, ArtifactKind, ArtifactStore, MemoryStore, StoreKey};
use mockingbird_comparer::{CacheStats, CompareCache, Comparer, Mismatch, Mode, RuleSet, Verdict};
use mockingbird_lang_c::{parse_c, parse_cxx, CParseError};
use mockingbird_lang_idl::{parse_idl, IdlParseError};
use mockingbird_lang_java::convert::{load_class_files, JavaLoadError};
use mockingbird_lang_java::source::{parse_java, JavaParseError};
use mockingbird_mtype::{MtypeGraph, MtypeId};
use mockingbird_plan::CoercionPlan;
use mockingbird_runtime::WireOp;
use mockingbird_stubgen::shape::FnShape;
use mockingbird_stubgen::{FunctionStub, InterfaceStub, StubError};
use mockingbird_stype::ast::Universe;
use mockingbird_stype::json::Json;
use mockingbird_stype::lower::{LowerError, Lowerer};
use mockingbird_stype::project::{Project, ProjectError};
use mockingbird_stype::script::{apply_script, ScriptError};
use mockingbird_wire::{ProgramCache, ProgramStats, WireProgram};

use crate::batch::{BatchCompiler, BatchOptions, NamedBatchReport};

/// The project-file section the compile cache persists under.
const CACHE_SECTION: &str = "compile_cache";

/// The project-file section compiled wire programs persist under.
const PROGRAM_SECTION: &str = "wire_programs";

/// What warming a session from artifacts restored — and what it refused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactImport {
    /// Compare verdicts restored into the session's [`CompareCache`].
    pub verdicts: usize,
    /// Fused wire programs restored into the session's [`ProgramCache`].
    pub programs: usize,
    /// Entries skipped because their rules fingerprint does not match
    /// this session's rule set: they were compiled under different
    /// comparison rules and would never be consulted, so loading them
    /// would only hide the mismatch. Reported, not silently dropped.
    pub stale: usize,
}

impl ArtifactImport {
    /// Entries actually restored (verdicts plus programs).
    #[must_use]
    pub fn restored(&self) -> usize {
        self.verdicts + self.programs
    }
}

impl fmt::Display for ArtifactImport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} verdicts, {} programs ({} stale skipped)",
            self.verdicts, self.programs, self.stale
        )
    }
}

/// Everything that can go wrong driving a session.
#[derive(Debug)]
pub enum SessionError {
    /// A frontend rejected its input.
    Parse(String),
    /// Translation to Mtypes failed.
    Lower(LowerError),
    /// An annotation script failed.
    Script(ScriptError),
    /// The Comparer rejected the pair.
    Compare(Box<Mismatch>),
    /// Project save/load failed.
    Project(ProjectError),
    /// Stub construction failed.
    Stub(StubError),
    /// A name did not resolve.
    Unknown(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(m) => write!(f, "{m}"),
            SessionError::Lower(e) => write!(f, "{e}"),
            SessionError::Script(e) => write!(f, "{e}"),
            SessionError::Compare(m) => write!(f, "{m}"),
            SessionError::Project(e) => write!(f, "{e}"),
            SessionError::Stub(e) => write!(f, "{e}"),
            SessionError::Unknown(n) => write!(f, "unknown declaration `{n}`"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<CParseError> for SessionError {
    fn from(e: CParseError) -> Self {
        SessionError::Parse(e.to_string())
    }
}
impl From<JavaParseError> for SessionError {
    fn from(e: JavaParseError) -> Self {
        SessionError::Parse(e.to_string())
    }
}
impl From<JavaLoadError> for SessionError {
    fn from(e: JavaLoadError) -> Self {
        SessionError::Parse(e.to_string())
    }
}
impl From<IdlParseError> for SessionError {
    fn from(e: IdlParseError) -> Self {
        SessionError::Parse(e.to_string())
    }
}
impl From<LowerError> for SessionError {
    fn from(e: LowerError) -> Self {
        SessionError::Lower(e)
    }
}
impl From<ScriptError> for SessionError {
    fn from(e: ScriptError) -> Self {
        SessionError::Script(e)
    }
}
impl From<ProjectError> for SessionError {
    fn from(e: ProjectError) -> Self {
        SessionError::Project(e)
    }
}
impl From<StubError> for SessionError {
    fn from(e: StubError) -> Self {
        SessionError::Stub(e)
    }
}

/// One Mockingbird tool session: loaded declarations, their annotations,
/// the Mtype graph, and comparison/stub-generation entry points.
pub struct Session {
    uni: Universe,
    graph: MtypeGraph,
    memo: HashMap<String, MtypeId>,
    rules: RuleSet,
    /// Content-addressed verdict/correspondence memo shared by every
    /// comparison this session runs (and persisted into project files).
    cache: Arc<CompareCache>,
    /// Plans already derived this generation, shared by `Arc` so stubs
    /// over the same pair reuse one plan instead of re-deriving it.
    /// Keyed by graph-local ids (not fingerprints: a plan converts
    /// *values*, and fingerprint-equal types may still lay out their
    /// values differently, e.g. comm-reordered records).
    plans: HashMap<(MtypeId, MtypeId, Mode), Arc<CoercionPlan>>,
    /// Fused wire programs compiled from plans, keyed by *nominal*
    /// fingerprints (layout-faithful, unlike the canonical fingerprints
    /// the verdict cache uses) and persisted into project files.
    programs: Arc<ProgramCache>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Creates an empty session with the paper's full rule set.
    pub fn new() -> Self {
        Session {
            uni: Universe::new(),
            graph: MtypeGraph::new(),
            memo: HashMap::new(),
            rules: RuleSet::full(),
            cache: Arc::new(CompareCache::new()),
            plans: HashMap::new(),
            programs: Arc::new(ProgramCache::new()),
        }
    }

    /// Creates a session with an explicit rule set (ablation studies).
    pub fn with_rules(rules: RuleSet) -> Self {
        Session {
            rules,
            ..Session::new()
        }
    }

    /// The loaded declarations.
    pub fn universe(&self) -> &Universe {
        &self.uni
    }

    /// Mutable access to the declarations (programmatic annotation via
    /// [`Selector`]s). Invalidate-on-write: the Mtype memo is cleared.
    ///
    /// [`Selector`]: mockingbird_stype::selector::Selector
    pub fn universe_mut(&mut self) -> &mut Universe {
        self.memo.clear();
        self.plans.clear();
        &mut self.uni
    }

    /// The session's shared compile cache (verdicts keyed by canonical
    /// fingerprint). Useful for warming another session or inspecting
    /// effectiveness; see [`Session::cache_stats`].
    pub fn compile_cache(&self) -> &Arc<CompareCache> {
        &self.cache
    }

    /// Hit/miss/insert counters of the compile cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The session's shared fused-program cache (data-plane programs
    /// keyed by nominal fingerprints; see [`ProgramCache`]).
    pub fn wire_programs(&self) -> &Arc<ProgramCache> {
        &self.programs
    }

    /// Compile/hit counters of the fused-program cache.
    pub fn program_stats(&self) -> ProgramStats {
        self.programs.stats()
    }

    /// The Mtype graph all lowered declarations share.
    pub fn graph(&self) -> &MtypeGraph {
        &self.graph
    }

    fn absorb(&mut self, other: Universe) -> Result<(), SessionError> {
        self.uni
            .absorb(other)
            .map_err(|e| SessionError::Parse(e.to_string()))
    }

    /// Loads C declarations.
    ///
    /// # Errors
    ///
    /// Returns parse errors or duplicate-name collisions.
    pub fn load_c(&mut self, source: &str) -> Result<(), SessionError> {
        let u = parse_c(source)?;
        self.absorb(u)
    }

    /// Loads C++ declarations.
    ///
    /// # Errors
    ///
    /// Returns parse errors or duplicate-name collisions.
    pub fn load_cxx(&mut self, source: &str) -> Result<(), SessionError> {
        let u = parse_cxx(source)?;
        self.absorb(u)
    }

    /// Loads Java source declarations.
    ///
    /// # Errors
    ///
    /// Returns parse errors or duplicate-name collisions.
    pub fn load_java(&mut self, source: &str) -> Result<(), SessionError> {
        let u = parse_java(source)?;
        self.absorb(u)
    }

    /// Loads Java `.class` file blobs (the paper's primary Java input).
    ///
    /// # Errors
    ///
    /// Returns class-file parse errors or duplicate-name collisions.
    pub fn load_java_classes(&mut self, blobs: &[Vec<u8>]) -> Result<usize, SessionError> {
        Ok(load_class_files(&mut self.uni, blobs)?)
    }

    /// Loads CORBA IDL declarations.
    ///
    /// # Errors
    ///
    /// Returns parse errors or duplicate-name collisions.
    pub fn load_idl(&mut self, source: &str) -> Result<(), SessionError> {
        let u = parse_idl(source)?;
        self.absorb(u)
    }

    /// Applies a batch annotation script (paper §5's scripting
    /// technique); returns the number of statements applied.
    ///
    /// # Errors
    ///
    /// Returns the first malformed statement or unresolvable selector.
    pub fn annotate(&mut self, script: &str) -> Result<usize, SessionError> {
        self.memo.clear();
        // Re-lowered declarations get fresh ids, so id-keyed plans are
        // stale; the content-addressed verdict cache stays valid (changed
        // types simply miss under their new fingerprints).
        self.plans.clear();
        Ok(apply_script(&mut self.uni, script)?)
    }

    /// The Mtype of a named declaration (lowering and memoising it on
    /// first use).
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Lower`] on unknown names or unsupported
    /// constructs.
    pub fn mtype(&mut self, name: &str) -> Result<MtypeId, SessionError> {
        if let Some(&id) = self.memo.get(name) {
            return Ok(id);
        }
        let mut lw = Lowerer::new(&self.uni, &mut self.graph);
        for (n, id) in &self.memo {
            lw.preseed(n.clone(), *id);
        }
        let id = lw.lower_named(name)?;
        let done = lw.done_entries();
        for (n, id) in done {
            self.memo.insert(n, id);
        }
        Ok(id)
    }

    /// Renders a declaration's Mtype in the paper's notation (the Fig. 7
    /// diagram pane, textually).
    ///
    /// # Errors
    ///
    /// Propagates lowering failures.
    pub fn display_mtype(&mut self, name: &str) -> Result<String, SessionError> {
        let id = self.mtype(name)?;
        Ok(self.graph.display(id).to_string())
    }

    /// Renders a declaration's Mtype as Graphviz DOT.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures.
    pub fn dot(&mut self, name: &str) -> Result<String, SessionError> {
        let id = self.mtype(name)?;
        let safe: String = name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        Ok(mockingbird_mtype::dot::to_dot(&self.graph, id, &safe))
    }

    /// Runs the Comparer on two declarations (the paper's Compare
    /// button), returning the executable coercion plan on success.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Compare`] with mismatch diagnostics when
    /// the declarations are not related; the annotate/compare loop
    /// continues from there.
    pub fn compare(
        &mut self,
        left: &str,
        right: &str,
        mode: Mode,
    ) -> Result<CoercionPlan, SessionError> {
        Ok((*self.compare_shared(left, right, mode)?).clone())
    }

    /// As [`Session::compare`], but incremental: verdicts and
    /// correspondences come from the session's content-addressed
    /// [`CompareCache`], the graph is handed to the plan as a frozen
    /// `Arc` snapshot, and the derived plan itself is memoized so
    /// repeated compares (and the stubs built from them) share one
    /// `Arc<CoercionPlan>` instead of re-deriving it.
    ///
    /// # Errors
    ///
    /// As [`Session::compare`].
    pub fn compare_shared(
        &mut self,
        left: &str,
        right: &str,
        mode: Mode,
    ) -> Result<Arc<CoercionPlan>, SessionError> {
        let l = self.mtype(left)?;
        let r = self.mtype(right)?;
        if let Some(plan) = self.plans.get(&(l, r, mode)) {
            return Ok(plan.clone());
        }
        let snap = self.graph.snapshot();
        let corr = Comparer::with_rules(&snap, &snap, self.rules.clone())
            .with_shared_cache(self.cache.clone())
            .compare_arc(l, r, mode)
            .map_err(|m| SessionError::Compare(Box::new(m)))?;
        let plan = Arc::new(CoercionPlan::new_shared(
            snap.clone(),
            snap,
            corr,
            self.rules.clone(),
            mode,
        ));
        self.plans.insert((l, r, mode), plan.clone());
        Ok(plan)
    }

    /// Runs the Comparer with programmer-declared *semantic bridges*
    /// (paper §6): each `(left_decl, right_decl)` pair in `bridges` is
    /// accepted as matched by assumption, so structural comparison
    /// composes with the hand-written conversions the caller then
    /// registers on the returned plan via
    /// [`CoercionPlan::register_semantic`] (using [`Session::mtype`] for
    /// the pair's ids).
    ///
    /// # Errors
    ///
    /// As [`Session::compare`]; additionally fails if a bridge names an
    /// unknown declaration.
    pub fn compare_with_bridges(
        &mut self,
        left: &str,
        right: &str,
        mode: Mode,
        bridges: &[(&str, &str)],
    ) -> Result<CoercionPlan, SessionError> {
        let l = self.mtype(left)?;
        let r = self.mtype(right)?;
        let mut bridge_ids = Vec::with_capacity(bridges.len());
        for (bl, br) in bridges {
            bridge_ids.push((self.mtype(bl)?, self.mtype(br)?));
        }
        // Bridged verdicts are relative to the declared assumptions, so
        // the shared content-addressed cache is deliberately not wired in.
        let snap = self.graph.snapshot();
        let mut cmp = Comparer::with_rules(&snap, &snap, self.rules.clone());
        for (bl, br) in bridge_ids {
            cmp = cmp.with_semantic_bridge(bl, br);
        }
        let corr = cmp
            .compare_arc(l, r, mode)
            .map_err(|m| SessionError::Compare(Box::new(m)))?;
        Ok(CoercionPlan::new_shared(
            snap.clone(),
            snap,
            corr,
            self.rules.clone(),
            mode,
        ))
    }

    /// Builds a local two-way function stub between two declarations.
    ///
    /// # Errors
    ///
    /// Propagates comparison and shape failures.
    pub fn function_stub(&mut self, left: &str, right: &str) -> Result<FunctionStub, SessionError> {
        let plan = self.compare_shared(left, right, Mode::Equivalence)?;
        Ok(FunctionStub::new(plan)?)
    }

    /// Builds a local interface stub (multi-method objects).
    ///
    /// # Errors
    ///
    /// Propagates comparison and shape failures.
    pub fn interface_stub(
        &mut self,
        left: &str,
        right: &str,
    ) -> Result<InterfaceStub, SessionError> {
        let plan = self.compare_shared(left, right, Mode::Equivalence)?;
        Ok(InterfaceStub::new(plan)?)
    }

    /// Builds the wire-operation table entry for a function declaration:
    /// the CDR Mtypes of its argument and result records. Both sides of
    /// a connection derive the same `WireOp` from the same declaration.
    ///
    /// # Errors
    ///
    /// Propagates lowering and shape failures.
    pub fn wire_op(&mut self, function: &str) -> Result<WireOp, SessionError> {
        let id = self.mtype(function)?;
        let shape = FnShape::of_function(&self.graph, id).map_err(StubError::Shape)?;
        let args_ty = self.graph.record(shape.inputs.clone());
        let result_ty = shape.output;
        Ok(WireOp::new(self.graph.snapshot(), args_ty, result_ty))
    }

    /// As [`wire_op`](Session::wire_op), but marks the operation
    /// idempotent so clients may retry it under a
    /// [`RetryPolicy`](mockingbird_runtime::RetryPolicy).
    ///
    /// # Errors
    ///
    /// Propagates lowering and shape failures.
    pub fn wire_op_idempotent(&mut self, function: &str) -> Result<WireOp, SessionError> {
        Ok(self.wire_op(function)?.idempotent())
    }

    /// Saves the session (declarations with annotations) to a project
    /// file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn save_project(&self, name: &str, path: impl AsRef<Path>) -> Result<(), SessionError> {
        let mut p = Project::new(name, self.uni.clone());
        let store = MemoryStore::new();
        self.export_artifacts(&store);
        let cache_section = encode_cache(&store);
        if let Some(section) = cache_section {
            p.extra.insert(CACHE_SECTION.to_string(), section);
        }
        if let Some(section) = encode_programs(&store) {
            p.extra.insert(PROGRAM_SECTION.to_string(), section);
        }
        p.save(path)?;
        Ok(())
    }

    /// Writes everything this session compiled — compare verdicts and
    /// fused wire programs — into `store` as content-addressed records.
    /// This is the one persistence seam: project files, on-disk segment
    /// stores, and peer transfers all go through an [`ArtifactStore`].
    /// Returns how many records were written.
    pub fn export_artifacts(&self, store: &dyn ArtifactStore) -> usize {
        self.cache.store_into(store) + self.programs.store_into(store)
    }

    /// Warms this session from `store`: verdicts into the compile cache,
    /// wire programs into the fused-program cache. Records whose rules
    /// fingerprint differs from this session's rule set are *skipped and
    /// counted* — see [`ArtifactImport::stale`].
    pub fn import_artifacts(&self, store: &dyn ArtifactStore) -> ArtifactImport {
        let want = self.rules.fingerprint();
        let filtered = CurrentRules { inner: store, want };
        ArtifactImport {
            verdicts: self.cache.load_from(&filtered),
            programs: self.programs.load_from(&filtered),
            stale: store
                .keys()
                .iter()
                .filter(|(k, _)| k.rules_fp != want)
                .count(),
        }
    }

    /// Restores a session from a project file, including any persisted
    /// compile cache so the restored session starts warm.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format failures.
    pub fn load_project(path: impl AsRef<Path>) -> Result<Session, SessionError> {
        let p = Project::load(path)?;
        let mut s = Session::new();
        s.absorb_project(p)?;
        Ok(s)
    }

    /// Merges a parsed project into this session: the declarations are
    /// absorbed into the universe, then any persisted `compile_cache`
    /// and `wire_programs` sections are decoded into an in-memory
    /// [`ArtifactStore`] and imported through
    /// [`import_artifacts`](Session::import_artifacts) — the same seam
    /// segment stores and peer transfers use. Malformed entries are
    /// skipped rather than failing the load (the caches are memos, not
    /// data); entries compiled under *different rules* are skipped and
    /// reported in [`ArtifactImport::stale`].
    ///
    /// # Errors
    ///
    /// Returns duplicate-name collisions from the universe merge.
    pub fn absorb_project(&mut self, p: Project) -> Result<ArtifactImport, SessionError> {
        let Project {
            universe, extra, ..
        } = p;
        self.absorb(universe)?;
        let store = MemoryStore::new();
        if let Some(section) = extra.get(CACHE_SECTION) {
            decode_cache(section, &store);
        }
        if let Some(section) = extra.get(PROGRAM_SECTION) {
            decode_programs(section, &store);
        }
        Ok(self.import_artifacts(&store))
    }

    /// Compiles many named pairs as one batch: each pair is lowered,
    /// deduplicated, and compared through the shared [`CompareCache`]
    /// (fanned out over worker threads when the host has them). See
    /// [`BatchCompiler`] for the graph-level engine.
    ///
    /// # Errors
    ///
    /// Fails only when a *name* does not lower; per-pair comparison
    /// failures are reported inside the returned report, not as errors.
    pub fn batch_compile(
        &mut self,
        pairs: &[(&str, &str)],
        opts: &BatchOptions,
    ) -> Result<NamedBatchReport, SessionError> {
        let mut id_pairs = Vec::with_capacity(pairs.len());
        let mut names = Vec::with_capacity(pairs.len());
        for (l, r) in pairs {
            id_pairs.push((self.mtype(l)?, self.mtype(r)?));
            names.push(((*l).to_string(), (*r).to_string()));
        }
        let compiler = BatchCompiler::new(self.graph.snapshot())
            .with_rules(self.rules.clone())
            .with_cache(self.cache.clone())
            .with_programs(self.programs.clone());
        let report = compiler.compile(&id_pairs, opts);
        Ok(NamedBatchReport::from_report(report, names))
    }
}

/// A read-only [`ArtifactStore`] view that hides records compiled under
/// a different rules fingerprint. [`Session::import_artifacts`] loads
/// through this view so the caches never absorb entries they could not
/// consult; the hidden keys are what [`ArtifactImport::stale`] counts.
struct CurrentRules<'a> {
    inner: &'a dyn ArtifactStore,
    want: u64,
}

impl ArtifactStore for CurrentRules<'_> {
    fn put(&self, key: StoreKey, body: &[u8]) -> ArtifactId {
        self.inner.put(key, body)
    }

    fn get(&self, key: &StoreKey) -> Option<(ArtifactId, Arc<Vec<u8>>)> {
        if key.rules_fp != self.want {
            return None;
        }
        self.inner.get(key)
    }

    fn contains(&self, key: &StoreKey) -> bool {
        key.rules_fp == self.want && self.inner.contains(key)
    }

    fn keys(&self) -> Vec<(StoreKey, ArtifactId)> {
        self.inner
            .keys()
            .into_iter()
            .filter(|(k, _)| k.rules_fp == self.want)
            .collect()
    }

    fn body(&self, id: &ArtifactId) -> Option<Arc<Vec<u8>>> {
        self.inner.body(id)
    }

    fn len(&self) -> usize {
        self.keys().len()
    }

    fn stats(&self) -> mockingbird_artifact::StoreStats {
        self.inner.stats()
    }
}

/// Encodes a store's [`ArtifactKind::Verdict`] records as the
/// project-file `compile_cache` section — `None` if there are none.
/// Fingerprints are hex strings (`u128`/`u64` exceed what every JSON
/// consumer round-trips as numbers). The section's shape predates the
/// artifact store and is unchanged: old readers still understand these
/// files, and old files still load (see `decode_cache`).
fn encode_cache(store: &dyn ArtifactStore) -> Option<Json> {
    let mut verdicts: Vec<Json> = Vec::new();
    for (key, id) in store.keys() {
        if key.kind != ArtifactKind::Verdict {
            continue;
        }
        let Some(body) = store.body(&id) else {
            continue;
        };
        let Some(verdict) = Verdict::from_artifact_body(&body) else {
            continue;
        };
        let (matched, reason, depth) = match verdict {
            Verdict::Match => (true, String::new(), 0),
            Verdict::Mismatch { reason, depth } => (false, reason, depth),
        };
        verdicts.push(Json::obj([
            ("l", Json::str(format!("{:032x}", key.left_fp))),
            ("r", Json::str(format!("{:032x}", key.right_fp))),
            ("rules", Json::str(format!("{:016x}", key.rules_fp))),
            ("sub", Json::Bool(key.subtype)),
            ("ok", Json::Bool(matched)),
            ("reason", Json::str(reason)),
            ("depth", Json::Int(depth as i128)),
        ]));
    }
    if verdicts.is_empty() {
        return None;
    }
    Some(Json::obj([("verdicts", Json::Array(verdicts))]))
}

/// Decodes a `compile_cache` section into `store`, skipping entries
/// that do not parse (forward compatibility: a newer writer may add
/// fields or sections).
fn decode_cache(section: &Json, store: &dyn ArtifactStore) {
    let Some(Json::Array(items)) = section.get("verdicts") else {
        return;
    };
    for item in items {
        let fp128 = |key: &str| {
            item.get(key)
                .and_then(|j| j.as_str().ok())
                .and_then(|s| u128::from_str_radix(s, 16).ok())
        };
        let parsed = (|| {
            let key = StoreKey {
                kind: ArtifactKind::Verdict,
                left_fp: fp128("l")?,
                right_fp: fp128("r")?,
                subtype: item.get("sub")?.as_bool().ok()?,
                rules_fp: item
                    .get("rules")
                    .and_then(|j| j.as_str().ok())
                    .and_then(|s| u64::from_str_radix(s, 16).ok())?,
            };
            let verdict = if item.get("ok")?.as_bool().ok()? {
                Verdict::Match
            } else {
                Verdict::Mismatch {
                    reason: item.get("reason")?.as_str().ok()?.to_string(),
                    depth: item.get("depth")?.as_int().ok()?.try_into().ok()?,
                }
            };
            Some((key, verdict))
        })();
        if let Some((key, verdict)) = parsed {
            store.put(key, &verdict.to_artifact_body());
        }
    }
}

/// Encodes a store's [`ArtifactKind::WireProgram`] records as the
/// project-file `wire_programs` section — `None` if there are none.
/// Keys follow the `compile_cache` hex convention; program bodies are
/// the portable [`WireProgram::to_bytes`] image, hex-encoded so the
/// section stays valid JSON.
fn encode_programs(store: &dyn ArtifactStore) -> Option<Json> {
    let hex = |bytes: &[u8]| bytes.iter().map(|b| format!("{b:02x}")).collect::<String>();
    let mut programs: Vec<Json> = Vec::new();
    for (key, id) in store.keys() {
        if key.kind != ArtifactKind::WireProgram {
            continue;
        }
        let Some(body) = store.body(&id) else {
            continue;
        };
        programs.push(Json::obj([
            ("l", Json::str(format!("{:032x}", key.left_fp))),
            ("r", Json::str(format!("{:032x}", key.right_fp))),
            ("rules", Json::str(format!("{:016x}", key.rules_fp))),
            ("sub", Json::Bool(key.subtype)),
            ("bytes", Json::str(hex(&body))),
        ]));
    }
    if programs.is_empty() {
        return None;
    }
    Some(Json::obj([("programs", Json::Array(programs))]))
}

/// Decodes a `wire_programs` section into `store`. Entries whose key
/// fields do not parse or whose program image fails
/// [`WireProgram::from_bytes`] validation are skipped, like malformed
/// verdicts: a stale or corrupted program must never reach the data
/// plane.
fn decode_programs(section: &Json, store: &dyn ArtifactStore) {
    let unhex = |s: &str| -> Option<Vec<u8>> {
        if !s.len().is_multiple_of(2) {
            return None;
        }
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
            .collect()
    };
    let Some(Json::Array(items)) = section.get("programs") else {
        return;
    };
    for item in items {
        let fp128 = |key: &str| {
            item.get(key)
                .and_then(|j| j.as_str().ok())
                .and_then(|s| u128::from_str_radix(s, 16).ok())
        };
        let parsed = (|| {
            let key = StoreKey {
                kind: ArtifactKind::WireProgram,
                left_fp: fp128("l")?,
                right_fp: fp128("r")?,
                subtype: item.get("sub")?.as_bool().ok()?,
                rules_fp: item
                    .get("rules")
                    .and_then(|j| j.as_str().ok())
                    .and_then(|s| u64::from_str_radix(s, 16).ok())?,
            };
            let bytes = unhex(item.get("bytes")?.as_str().ok()?)?;
            // Validate before storing: the codec is the integrity
            // boundary for program bodies.
            WireProgram::from_bytes(&bytes).ok()?;
            Some((key, bytes))
        })();
        if let Some((key, bytes)) = parsed {
            store.put(key, &bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_values::MValue;

    const FIG2_C: &str = "typedef float point[2];\n\
        void fitter(point pts[], int count, point *start, point *end);";

    const FIG1_5_JAVA: &str = "
        public class Point {
            public Point(float x, float y) { }
            public float getX() { return x; }
            private float x;
            private float y;
        }
        public class Line {
            public Line(Point s, Point e) { }
            private Point start;
            private Point end;
        }
        public class PointVector extends java.util.Vector;
        public interface JavaIdeal { Line fitter(PointVector pts); }";

    const FITTER_SCRIPT: &str = "
        annotate fitter.param(pts) length=param(count)
        annotate fitter.param(start) direction=out
        annotate fitter.param(end) direction=out
        annotate Line.field(start) non-null no-alias
        annotate Line.field(end) non-null no-alias
        annotate PointVector element=Point non-null
        annotate JavaIdeal.method(fitter).param(pts) non-null
annotate JavaIdeal.method(fitter).ret non-null";

    fn fitter_session() -> Session {
        let mut s = Session::new();
        s.load_c(FIG2_C).unwrap();
        s.load_java(FIG1_5_JAVA).unwrap();
        s.annotate(FITTER_SCRIPT).unwrap();
        s
    }

    #[test]
    fn fitter_mtypes_match_section_3_4() {
        let mut s = fitter_session();
        let c = s.display_mtype("fitter").unwrap();
        let j = s.display_mtype("JavaIdeal").unwrap();
        // §3.4: both sides are port(Record(L, port(Record(Real,Real),
        // Record(Real,Real)))) modulo grouping.
        assert!(c.starts_with("port(Record(Rec#L("), "{c}");
        assert!(j.starts_with("port("), "{j}");
        let plan = s.compare("JavaIdeal", "fitter", Mode::Equivalence).unwrap();
        assert!(plan.len() > 3);
    }

    #[test]
    fn fitter_does_not_match_without_annotations() {
        let mut s = Session::new();
        s.load_c(FIG2_C).unwrap();
        s.load_java(FIG1_5_JAVA).unwrap();
        let err = s
            .compare("JavaIdeal", "fitter", Mode::Equivalence)
            .unwrap_err();
        assert!(matches!(err, SessionError::Compare(_)));
        // The iterative annotate/compare loop: apply annotations, retry.
        s.annotate(FITTER_SCRIPT).unwrap();
        assert!(s.compare("JavaIdeal", "fitter", Mode::Equivalence).is_ok());
    }

    #[test]
    fn fitter_stub_round_trip() {
        let mut s = fitter_session();
        let stub = s.function_stub("JavaIdeal", "fitter").unwrap();
        let c_fitter = |args: MValue| -> Result<MValue, String> {
            let MValue::Record(items) = args else {
                return Err("bad".into());
            };
            let MValue::List(pts) = &items[0] else {
                return Err("bad".into());
            };
            Ok(MValue::Record(vec![
                pts.first().cloned().ok_or("empty")?,
                pts.last().cloned().ok_or("empty")?,
            ]))
        };
        let pts = MValue::List(vec![
            MValue::Record(vec![MValue::Real(0.0), MValue::Real(1.0)]),
            MValue::Record(vec![MValue::Real(5.0), MValue::Real(6.0)]),
        ]);
        let out = stub.call(&[pts], &c_fitter).unwrap();
        let MValue::Record(line) = &out else { panic!() };
        assert_eq!(line.len(), 1, "Java returns a single Line");
    }

    #[test]
    fn project_round_trip_preserves_annotations() {
        let s = fitter_session();
        let dir = std::env::temp_dir().join("mockingbird-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fitter.mbproj.json");
        s.save_project("fitter", &path).unwrap();
        let mut restored = Session::load_project(&path).unwrap();
        assert!(restored
            .compare("JavaIdeal", "fitter", Mode::Equivalence)
            .is_ok());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn memo_shares_lowered_structure() {
        let mut s = fitter_session();
        let a = s.mtype("Point").unwrap();
        let before = s.graph().len();
        let b = s.mtype("Point").unwrap();
        assert_eq!(a, b);
        assert_eq!(s.graph().len(), before, "no re-lowering");
    }

    #[test]
    fn annotate_invalidates_memo() {
        let mut s = fitter_session();
        let a = s.mtype("Point").unwrap();
        s.annotate("annotate Point.field(x) precision=double")
            .unwrap();
        let b = s.mtype("Point").unwrap();
        assert_ne!(
            s.graph().display(a).to_string(),
            s.graph().display(b).to_string()
        );
    }

    #[test]
    fn repeated_compares_share_plans_and_hit_cache() {
        let mut s = fitter_session();
        let p1 = s
            .compare_shared("JavaIdeal", "fitter", Mode::Equivalence)
            .unwrap();
        let p2 = s
            .compare_shared("JavaIdeal", "fitter", Mode::Equivalence)
            .unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "plan memo shares one Arc");
        let stats = s.cache_stats();
        // The second call short-circuits on the plan memo, so the cache
        // sees exactly one (missing) lookup followed by one insert.
        assert_eq!((stats.misses, stats.inserts, stats.hits), (1, 1, 0));

        // Re-annotating invalidates plans but not content-addressed
        // verdicts: the same comparison now *hits*.
        s.annotate("annotate fitter.param(count) direction=in")
            .unwrap();
        let p3 = s
            .compare_shared("JavaIdeal", "fitter", Mode::Equivalence)
            .unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3), "plans were invalidated");
        assert!(s.cache_stats().hits >= 1, "{:?}", s.cache_stats());
    }

    #[test]
    fn project_round_trip_restores_warm_cache() {
        let mut s = fitter_session();
        s.compare("JavaIdeal", "fitter", Mode::Equivalence).unwrap();
        assert!(!s.compile_cache().is_empty());

        let dir = std::env::temp_dir().join("mockingbird-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fitter-warm.mbproj.json");
        s.save_project("fitter", &path).unwrap();

        let mut restored = Session::load_project(&path).unwrap();
        assert_eq!(
            restored.compile_cache().len(),
            s.compile_cache().len(),
            "verdicts survive the round trip"
        );
        restored
            .compare("JavaIdeal", "fitter", Mode::Equivalence)
            .unwrap();
        let stats = restored.cache_stats();
        assert!(stats.hits >= 1, "restored cache is warm: {stats:?}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn project_round_trip_restores_wire_programs() {
        let mut s = fitter_session();
        s.batch_compile(&[("JavaIdeal", "fitter")], &BatchOptions::default())
            .unwrap();
        assert_eq!(s.wire_programs().len(), 1, "batch compiled one program");
        assert_eq!(s.program_stats().compiles, 1);

        let dir = std::env::temp_dir().join("mockingbird-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fitter-programs.mbproj.json");
        s.save_project("fitter", &path).unwrap();

        let mut restored = Session::load_project(&path).unwrap();
        assert_eq!(
            restored.wire_programs().len(),
            1,
            "programs survive the round trip"
        );
        restored
            .batch_compile(&[("JavaIdeal", "fitter")], &BatchOptions::default())
            .unwrap();
        let stats = restored.program_stats();
        assert_eq!(stats.compiles, 0, "restored program cache is warm");
        assert!(stats.hits >= 1, "{stats:?}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn old_format_project_sections_still_load() {
        // A project file whose cache sections were written by the
        // pre-artifact-store codec: the section shapes are pinned, so
        // this literal must keep absorbing identically forever.
        let mut warm = fitter_session();
        warm.batch_compile(&[("JavaIdeal", "fitter")], &BatchOptions::default())
            .unwrap();
        let program_bytes = {
            let exported = warm.wire_programs().export();
            let (key, prog) = &exported[0];
            assert_eq!(key.rules_fp, RuleSet::full().fingerprint());
            (
                format!("{:032x}", key.left_fp),
                format!("{:032x}", key.right_fp),
                format!("{:016x}", key.rules_fp),
                prog.to_bytes()
                    .iter()
                    .map(|b| format!("{b:02x}"))
                    .collect::<String>(),
            )
        };
        let rules_hex = format!("{:016x}", RuleSet::full().fingerprint());
        let old_cache = Json::obj([(
            "verdicts",
            Json::Array(vec![Json::obj([
                ("l", Json::str("000000000000000000000000000000aa")),
                ("r", Json::str("000000000000000000000000000000bb")),
                ("rules", Json::str(rules_hex)),
                ("sub", Json::Bool(false)),
                ("ok", Json::Bool(true)),
                ("reason", Json::str("")),
                ("depth", Json::Int(0)),
            ])]),
        )]);
        let old_programs = Json::obj([(
            "programs",
            Json::Array(vec![Json::obj([
                ("l", Json::str(program_bytes.0)),
                ("r", Json::str(program_bytes.1)),
                ("rules", Json::str(program_bytes.2)),
                ("sub", Json::Bool(false)),
                ("bytes", Json::str(program_bytes.3)),
            ])]),
        )]);
        let mut p = Project::new("old", Universe::new());
        p.extra.insert(CACHE_SECTION.to_string(), old_cache);
        p.extra.insert(PROGRAM_SECTION.to_string(), old_programs);

        let mut s = Session::new();
        let stats = s.absorb_project(p).unwrap();
        assert_eq!(stats.verdicts, 1, "old verdict entry restored");
        assert_eq!(stats.programs, 1, "old program entry restored");
        assert_eq!(stats.stale, 0);
        assert_eq!(s.compile_cache().len(), 1);
        assert_eq!(s.wire_programs().len(), 1);
    }

    #[test]
    fn absorb_project_reports_stale_entries() {
        // Compile under a *reduced* rule set, persist, then restore into
        // a default-rules session: every entry is stale and must be
        // skipped-and-counted, not silently dropped or silently loaded.
        let mut reduced = Session::with_rules(RuleSet::strict());
        reduced.load_c(FIG2_C).unwrap();
        reduced.load_java(FIG1_5_JAVA).unwrap();
        reduced.annotate(FITTER_SCRIPT).unwrap();
        let _ = reduced.compare("Point", "Point", Mode::Equivalence);
        assert!(!reduced.compile_cache().is_empty());

        let dir = std::env::temp_dir().join("mockingbird-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fitter-stale.mbproj.json");
        reduced.save_project("stale", &path).unwrap();

        let p = Project::load(&path).unwrap();
        let mut s = Session::new();
        let stats = s.absorb_project(p).unwrap();
        assert_eq!(stats.restored(), 0, "no entry matches the full rules");
        assert!(stats.stale >= 1, "{stats:?}");
        assert!(s.compile_cache().is_empty(), "stale verdicts not loaded");

        // The same file restores cleanly into a matching-rules session.
        let p = Project::load(&path).unwrap();
        let mut again = Session::with_rules(RuleSet::strict());
        let stats = again.absorb_project(p).unwrap();
        assert!(stats.verdicts >= 1);
        assert_eq!(stats.stale, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn export_import_artifacts_round_trip_through_a_store() {
        let mut s = fitter_session();
        s.batch_compile(&[("JavaIdeal", "fitter")], &BatchOptions::default())
            .unwrap();
        let store = MemoryStore::new();
        let exported = s.export_artifacts(&store);
        assert!(exported >= 2, "verdicts and a program: {exported}");

        let restored = Session::with_rules(RuleSet::full());
        let stats = restored.import_artifacts(&store);
        assert_eq!(stats.verdicts, s.compile_cache().len());
        assert_eq!(stats.programs, s.wire_programs().len());
        assert_eq!(stats.stale, 0);
    }

    #[test]
    fn batch_compile_names_pairs_and_counts() {
        let mut s = fitter_session();
        let report = s
            .batch_compile(
                &[
                    ("JavaIdeal", "fitter"),
                    ("Point", "Line"),
                    ("JavaIdeal", "fitter"),
                ],
                &BatchOptions::default(),
            )
            .unwrap();
        assert_eq!(report.pairs.len(), 3);
        assert_eq!(report.stats.unique_pairs, 2);
        assert!(report.pairs[0].outcome.is_match());
        assert!(!report.pairs[1].outcome.is_match(), "Point vs Line differ");
        assert_eq!(report.pairs[2].duplicate_of, Some(0));
        assert_eq!(report.pairs[0].left, "JavaIdeal");
        assert_eq!(report.pairs[1].right, "Line");
        assert!(s
            .batch_compile(&[("nope", "fitter")], &BatchOptions::default())
            .is_err());
    }

    #[test]
    fn wire_op_shapes() {
        let mut s = fitter_session();
        let op = s.wire_op("fitter").unwrap();
        let args = op.graph.display(op.args_ty).to_string();
        assert!(args.starts_with("Record(Rec#L("), "{args}");
        let result = op.graph.display(op.result_ty).to_string();
        assert_eq!(
            result,
            "Record(Record(Real{24,8}, Real{24,8}), Record(Real{24,8}, Real{24,8}))"
        );
    }

    #[test]
    fn errors_are_descriptive() {
        let mut s = Session::new();
        assert!(matches!(s.mtype("nope"), Err(SessionError::Lower(_))));
        assert!(s.load_c("not c !!!").is_err());
        assert!(s.annotate("bogus line").is_err());
    }
}
