use mockingbird::comparer::{Comparer, Mode};
use mockingbird::corpus::visualage;
use mockingbird::mtype::MtypeGraph;
use mockingbird::stype::lower::Lowerer;
use mockingbird::stype::script::apply_script;

fn main() {
    let mut pair = visualage(100, 42);
    apply_script(&mut pair.java, &pair.script).unwrap();
    let mut g = MtypeGraph::new();
    let mut fails = 0;
    for name in pair.class_names.clone() {
        let c = Lowerer::new(&pair.cxx, &mut g).lower_named(&name).unwrap();
        let j = Lowerer::new(&pair.java, &mut g).lower_named(&name).unwrap();
        if let Err(m) = Comparer::new(&g, &g).compare(c, j, Mode::Equivalence) {
            fails += 1;
            if fails <= 3 {
                println!("{name}: {}", m.reason);
            }
        }
    }
    println!("{fails} failures");
}
