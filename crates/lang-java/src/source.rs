//! Java source declaration parser.
//!
//! Parses class and interface *declarations* (fields and method
//! signatures; bodies are skipped by brace matching) so examples can be
//! written in ordinary Java source. Generics arguments are accepted and
//! erased, as the class-file extractor would see them.

use std::fmt;

use mockingbird_stype::ast::{Decl, Field, Lang, Method, Param, Signature, Stype, Universe};

use crate::descriptor::class_reference;

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JavaParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JavaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Java parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for JavaParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Sym(char),
    Other,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, JavaParseError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = line;
            i += 2;
            loop {
                if i + 1 >= chars.len() {
                    return Err(JavaParseError {
                        line: start,
                        message: "unterminated comment".into(),
                    });
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                if chars[i] == '*' && chars[i + 1] == '/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
        } else if c == '"' {
            // String literal: skip (appears only in skipped initialisers).
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
            out.push((Tok::Other, line));
        } else if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
            {
                i += 1;
            }
            out.push((Tok::Ident(chars[start..i].iter().collect()), line));
        } else if c.is_ascii_digit() {
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '.') {
                i += 1;
            }
            out.push((Tok::Other, line));
        } else {
            out.push((Tok::Sym(c), line));
            i += 1;
        }
    }
    Ok(out)
}

/// Parses Java source declarations into a universe.
///
/// # Errors
///
/// Returns [`JavaParseError`] with line information on unsupported or
/// malformed declarations.
pub fn parse_java(src: &str) -> Result<Universe, JavaParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
        uni: Universe::new(),
    };
    // Optional package / imports.
    while p.eat_kw("package") || p.eat_kw("import") {
        p.skip_to_semi()?;
    }
    while p.peek().is_some() {
        p.type_decl()?;
    }
    Ok(p.uni)
}

const MODIFIERS: [&str; 11] = [
    "public",
    "private",
    "protected",
    "static",
    "final",
    "abstract",
    "native",
    "synchronized",
    "transient",
    "volatile",
    "strictfp",
];

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    uni: Universe,
}

#[derive(Debug, Default, Clone, Copy)]
struct Mods {
    public: bool,
    static_: bool,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.1)
            .unwrap_or(0)
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, JavaParseError> {
        Err(JavaParseError {
            line: self.line(),
            message: m.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off).map(|t| &t.0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.0.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), JavaParseError> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            self.err(format!("expected `{c}`"))
        }
    }

    fn eat_kw(&mut self, w: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, JavaParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => self.err("expected identifier"),
        }
    }

    fn skip_to_semi(&mut self) -> Result<(), JavaParseError> {
        loop {
            match self.bump() {
                Some(Tok::Sym(';')) => return Ok(()),
                Some(_) => {}
                None => return self.err("expected `;`"),
            }
        }
    }

    fn modifiers(&mut self) -> Mods {
        let mut m = Mods::default();
        loop {
            match self.peek() {
                Some(Tok::Ident(s)) if MODIFIERS.contains(&s.as_str()) => {
                    if s == "public" {
                        m.public = true;
                    }
                    if s == "static" {
                        m.static_ = true;
                    }
                    self.pos += 1;
                }
                _ => return m,
            }
        }
    }

    fn qualified_name(&mut self) -> Result<String, JavaParseError> {
        let mut name = self.expect_ident()?;
        while self.peek() == Some(&Tok::Sym('.')) && matches!(self.peek_at(1), Some(Tok::Ident(_)))
        {
            self.pos += 1;
            name.push('.');
            name.push_str(&self.expect_ident()?);
        }
        Ok(name)
    }

    /// Skips a generics argument list `<...>` if present.
    fn skip_generics(&mut self) -> Result<(), JavaParseError> {
        if self.eat_sym('<') {
            let mut depth = 1;
            while depth > 0 {
                match self.bump() {
                    Some(Tok::Sym('<')) => depth += 1,
                    Some(Tok::Sym('>')) => depth -= 1,
                    Some(_) => {}
                    None => return self.err("unterminated generics"),
                }
            }
        }
        Ok(())
    }

    fn type_decl(&mut self) -> Result<(), JavaParseError> {
        let _mods = self.modifiers();
        if self.eat_kw("class") {
            return self.class_body(false);
        }
        if self.eat_kw("interface") {
            return self.class_body(true);
        }
        self.err("expected `class` or `interface`")
    }

    fn class_body(&mut self, is_interface: bool) -> Result<(), JavaParseError> {
        let name = self.expect_ident()?;
        self.skip_generics()?;
        let mut extends = None;
        if self.eat_kw("extends") {
            extends = Some(self.qualified_name()?);
            self.skip_generics()?;
            // Interfaces may extend several.
            while self.eat_sym(',') {
                let _ = self.qualified_name()?;
                self.skip_generics()?;
            }
        }
        if self.eat_kw("implements") {
            loop {
                let _ = self.qualified_name()?;
                self.skip_generics()?;
                if !self.eat_sym(',') {
                    break;
                }
            }
        }
        // Paper-style bare declaration: `public class PointVector extends
        // java.util.Vector;`
        if self.eat_sym(';') {
            let ty = match extends {
                Some(sup) => Stype::class_extending(vec![], vec![], sup),
                None => Stype::class(vec![], vec![]),
            };
            return self.insert(name, ty);
        }
        self.expect_sym('{')?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat_sym('}') {
            if self.peek().is_none() {
                return self.err("unterminated class body");
            }
            self.member(&name, is_interface, &mut fields, &mut methods)?;
        }
        let ty = if is_interface {
            Stype::interface(methods)
        } else {
            match extends {
                Some(sup) => Stype::class_extending(fields, methods, sup),
                None => Stype::class(fields, methods),
            }
        };
        self.insert(name, ty)
    }

    fn insert(&mut self, name: String, ty: Stype) -> Result<(), JavaParseError> {
        let line = self.line();
        self.uni
            .insert(Decl::new(name, Lang::Java, ty))
            .map_err(|e| JavaParseError {
                line,
                message: e.to_string(),
            })
    }

    fn member(
        &mut self,
        class_name: &str,
        is_interface: bool,
        fields: &mut Vec<Field>,
        methods: &mut Vec<Method>,
    ) -> Result<(), JavaParseError> {
        let mods = self.modifiers();
        // Constructor: Name ( ...
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == class_name)
            && self.peek_at(1) == Some(&Tok::Sym('('))
        {
            self.bump();
            self.skip_params_and_body()?;
            return Ok(());
        }
        let ty = self.type_ref()?;
        let name = self.expect_ident()?;
        if self.peek() == Some(&Tok::Sym('(')) {
            // Method.
            self.bump();
            let mut params = Vec::new();
            if !self.eat_sym(')') {
                loop {
                    let _ = self.eat_kw("final");
                    let pty = self.type_ref()?;
                    let pname = self.expect_ident()?;
                    params.push(Param::new(pname, pty));
                    if self.eat_sym(',') {
                        continue;
                    }
                    self.expect_sym(')')?;
                    break;
                }
            }
            let mut throws = Vec::new();
            if self.eat_kw("throws") {
                loop {
                    // Declared exceptions cross as value structures
                    // (paper §6): reference them by name.
                    throws.push(Stype::named(self.qualified_name()?));
                    if !self.eat_sym(',') {
                        break;
                    }
                }
            }
            self.skip_body_or_semi()?;
            if (mods.public || is_interface) && !mods.static_ {
                methods.push(Method::new(
                    name,
                    Signature::new(params, ty).with_throws(throws),
                ));
            }
            Ok(())
        } else {
            // Field(s), possibly with initialisers.
            if !mods.static_ {
                fields.push(Field::new(name, ty.clone()));
            }
            loop {
                if self.eat_sym('=') {
                    // Skip the initialiser expression to `,` or `;` at
                    // top nesting level.
                    let mut depth = 0i32;
                    loop {
                        match self.peek() {
                            Some(Tok::Sym('(')) | Some(Tok::Sym('{')) | Some(Tok::Sym('[')) => {
                                depth += 1;
                                self.bump();
                            }
                            Some(Tok::Sym(')')) | Some(Tok::Sym('}')) | Some(Tok::Sym(']')) => {
                                depth -= 1;
                                self.bump();
                            }
                            Some(Tok::Sym(',')) | Some(Tok::Sym(';')) if depth == 0 => break,
                            Some(_) => {
                                self.bump();
                            }
                            None => return self.err("unterminated field initialiser"),
                        }
                    }
                }
                if self.eat_sym(',') {
                    let fname = self.expect_ident()?;
                    if !mods.static_ {
                        fields.push(Field::new(fname, ty.clone()));
                    }
                    continue;
                }
                self.expect_sym(';')?;
                return Ok(());
            }
        }
    }

    fn skip_params_and_body(&mut self) -> Result<(), JavaParseError> {
        self.expect_sym('(')?;
        let mut depth = 1;
        while depth > 0 {
            match self.bump() {
                Some(Tok::Sym('(')) => depth += 1,
                Some(Tok::Sym(')')) => depth -= 1,
                Some(_) => {}
                None => return self.err("unterminated parameter list"),
            }
        }
        self.skip_body_or_semi()
    }

    fn skip_body_or_semi(&mut self) -> Result<(), JavaParseError> {
        if self.eat_sym('{') {
            let mut depth = 1;
            while depth > 0 {
                match self.bump() {
                    Some(Tok::Sym('{')) => depth += 1,
                    Some(Tok::Sym('}')) => depth -= 1,
                    Some(_) => {}
                    None => return self.err("unterminated body"),
                }
            }
            Ok(())
        } else {
            self.expect_sym(';')
        }
    }

    fn type_ref(&mut self) -> Result<Stype, JavaParseError> {
        let base = if self.eat_kw("void") {
            Stype::void()
        } else if self.eat_kw("boolean") {
            Stype::boolean()
        } else if self.eat_kw("byte") {
            Stype::i8()
        } else if self.eat_kw("short") {
            Stype::i16()
        } else if self.eat_kw("char") {
            Stype::char16()
        } else if self.eat_kw("int") {
            Stype::i32()
        } else if self.eat_kw("long") {
            Stype::i64()
        } else if self.eat_kw("float") {
            Stype::f32()
        } else if self.eat_kw("double") {
            Stype::f64()
        } else {
            let name = self.qualified_name()?;
            self.skip_generics()?;
            // Unqualified standard names get their predefined treatment.
            match name.as_str() {
                "String" => Stype::string(),
                "Object" => Stype::any(),
                other => class_reference(other),
            }
        };
        let mut ty = base;
        while self.peek() == Some(&Tok::Sym('[')) && self.peek_at(1) == Some(&Tok::Sym(']')) {
            self.pos += 2;
            ty = Stype::array_indefinite(ty);
        }
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_stype::ast::{Prim, SNode};

    #[test]
    fn paper_figure_1_parses() {
        let uni = parse_java(
            "public class Point {
               public Point(float x, float y) { this.x = x; this.y = y; }
               public float getX() { return x; }
               public float getY() { return y; }
               private float x;
               private float y;
             }

             public class Line {
               public Line(Point s, Point e) { start = s; end = e; }
               public Point getStart() { return start; }
               private Point start;
               private Point end;
             }

             public class PointVector extends java.util.Vector;",
        )
        .unwrap();
        let SNode::Class {
            fields, methods, ..
        } = &uni.get("Point").unwrap().ty.node
        else {
            panic!()
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(methods.len(), 2, "constructor excluded, getters kept");
        let SNode::Class { fields, .. } = &uni.get("Line").unwrap().ty.node else {
            panic!()
        };
        assert!(matches!(&fields[0].ty.node, SNode::Pointer(inner)
            if matches!(&inner.node, SNode::Named(n) if n == "Point")));
        let SNode::Class { extends, .. } = &uni.get("PointVector").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(extends.as_deref(), Some("java.util.Vector"));
    }

    #[test]
    fn paper_figure_5_interface() {
        let uni = parse_java(
            "public interface JavaIdeal {
               Line fitter(PointVector pts);
             }",
        )
        .unwrap();
        let SNode::Interface { methods, .. } = &uni.get("JavaIdeal").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(methods.len(), 1);
        assert_eq!(methods[0].sig.params[0].name, "pts");
    }

    #[test]
    fn package_imports_and_generics_skipped() {
        let uni = parse_java(
            "package com.example.geo;
             import java.util.Vector;
             public class Box<T extends Comparable<T>> {
               private int size;
               public java.util.List<String> names() { return null; }
             }",
        )
        .unwrap();
        let SNode::Class {
            fields, methods, ..
        } = &uni.get("Box").unwrap().ty.node
        else {
            panic!()
        };
        assert_eq!(fields.len(), 1);
        assert_eq!(methods.len(), 1);
    }

    #[test]
    fn predefined_string_object_and_arrays() {
        let uni = parse_java(
            "public class Mixed {
               private String name;
               private Object payload;
               private float[][] grid;
               private int count = 3, total = 10;
               private static int GLOBAL = 0;
             }",
        )
        .unwrap();
        let SNode::Class { fields, .. } = &uni.get("Mixed").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(fields.len(), 5, "static excluded; multi-declarator kept");
        assert!(matches!(fields[0].ty.node, SNode::Str));
        assert!(matches!(fields[1].ty.node, SNode::Prim(Prim::Any)));
        assert!(matches!(&fields[2].ty.node, SNode::Array { .. }));
    }

    #[test]
    fn throws_clauses_and_void_methods() {
        let uni = parse_java(
            "public interface Remote {
               void send(byte[] data) throws java.io.IOException, RuntimeException;
             }",
        )
        .unwrap();
        let SNode::Interface { methods, .. } = &uni.get("Remote").unwrap().ty.node else {
            panic!()
        };
        assert!(matches!(methods[0].sig.ret.node, SNode::Prim(Prim::Void)));
    }

    #[test]
    fn private_methods_excluded_from_classes() {
        let uni = parse_java(
            "public class Svc {
               public void run() { }
               void helper() { }
               private int internal() { return 0; }
             }",
        )
        .unwrap();
        let SNode::Class { methods, .. } = &uni.get("Svc").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(methods.len(), 1);
    }

    #[test]
    fn errors_have_lines() {
        let err = parse_java("public class {").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(parse_java("public class X { int }").is_err());
        assert!(parse_java("public class X { void f( }").is_err());
    }
}
