//! JVM class-file reading and writing.
//!
//! Implements the subset of the class-file format needed to extract type
//! declarations: the constant pool (all tag kinds, so real class files
//! parse), access flags, the class hierarchy, and the field and method
//! tables. Attribute bodies are skipped.
//!
//! The [`ClassSpec`] writer emits minimal spec-conformant class files —
//! correct magic, constant pool indices, and table layout — which the
//! reader (and any conformant JVM class-file parser) accepts.

use std::fmt;

/// `ACC_PUBLIC`.
pub const ACC_PUBLIC: u16 = 0x0001;
/// `ACC_PRIVATE`.
pub const ACC_PRIVATE: u16 = 0x0002;
/// `ACC_STATIC`.
pub const ACC_STATIC: u16 = 0x0008;
/// `ACC_INTERFACE`.
pub const ACC_INTERFACE: u16 = 0x0200;
/// `ACC_ABSTRACT`.
pub const ACC_ABSTRACT: u16 = 0x0400;

const MAGIC: u32 = 0xCAFE_BABE;

/// A big-endian cursor over class-file bytes. Callers check `remaining`
/// before reading (the `need!` macro), so the getters index directly.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data }
    }

    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.data[0];
        self.data = &self.data[1..];
        b
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self.data[0], self.data[1]]);
        self.data = &self.data[2..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes([self.data[0], self.data[1], self.data[2], self.data[3]]);
        self.data = &self.data[4..];
        v
    }

    fn advance(&mut self, n: usize) {
        self.data = &self.data[n..];
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        head
    }
}

/// Big-endian append helpers for the class-file writer.
trait Put {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    // Only reached from tests that forge exotic constant-pool entries.
    #[allow(dead_code)]
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, s: &[u8]);
}

impl Put for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Errors from malformed class files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassFileError(pub String);

impl fmt::Display for ClassFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class file error: {}", self.0)
    }
}

impl std::error::Error for ClassFileError {}

fn err<T>(m: impl Into<String>) -> Result<T, ClassFileError> {
    Err(ClassFileError(m.into()))
}

/// One constant-pool entry (only the kinds we must understand are
/// retained; the rest are recorded as `Other` so indices stay aligned).
#[derive(Debug, Clone, PartialEq, Eq)]
enum CpEntry {
    Utf8(String),
    Class {
        name_index: u16,
    },
    /// Long/Double occupy two slots; the second is `Padding`.
    Padding,
    Other,
}

/// A field extracted from a class file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JavaField {
    /// Field name.
    pub name: String,
    /// JVM field descriptor (e.g. `F`, `Ljava/lang/String;`, `[I`).
    pub descriptor: String,
    /// Raw access flags.
    pub access: u16,
}

impl JavaField {
    /// Whether the field is `static`.
    pub fn is_static(&self) -> bool {
        self.access & ACC_STATIC != 0
    }
}

/// A method extracted from a class file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JavaMethod {
    /// Method name (`<init>` for constructors).
    pub name: String,
    /// JVM method descriptor (e.g. `(IF)V`).
    pub descriptor: String,
    /// Raw access flags.
    pub access: u16,
}

impl JavaMethod {
    /// Whether the method is `public`.
    pub fn is_public(&self) -> bool {
        self.access & ACC_PUBLIC != 0
    }

    /// Whether this is a constructor or class initialiser.
    pub fn is_initializer(&self) -> bool {
        self.name == "<init>" || self.name == "<clinit>"
    }

    /// Whether the method is `static`.
    pub fn is_static(&self) -> bool {
        self.access & ACC_STATIC != 0
    }
}

/// The type-level content of one parsed class file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassFile {
    /// Dotted class name (`java.awt.Point`).
    pub name: String,
    /// Dotted superclass name; `None` only for `java.lang.Object`.
    pub super_name: Option<String>,
    /// Dotted names of implemented interfaces.
    pub interfaces: Vec<String>,
    /// Raw class access flags.
    pub access: u16,
    /// Declared fields.
    pub fields: Vec<JavaField>,
    /// Declared methods.
    pub methods: Vec<JavaMethod>,
}

impl ClassFile {
    /// Whether the class file declares an interface.
    pub fn is_interface(&self) -> bool {
        self.access & ACC_INTERFACE != 0
    }

    /// Parses class-file bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ClassFileError`] on truncation, a bad magic number, or
    /// malformed constant-pool indices.
    pub fn parse(data: &[u8]) -> Result<ClassFile, ClassFileError> {
        let mut buf = Reader::new(data);
        macro_rules! need {
            ($n:expr, $what:expr) => {
                if buf.remaining() < $n {
                    return err(format!("truncated while reading {}", $what));
                }
            };
        }
        need!(8, "header");
        if buf.get_u32() != MAGIC {
            return err("bad magic number (not a class file)");
        }
        let _minor = buf.get_u16();
        let _major = buf.get_u16();
        need!(2, "constant pool count");
        let cp_count = buf.get_u16() as usize;
        if cp_count == 0 {
            return err("constant pool count must be at least 1");
        }
        let mut pool: Vec<CpEntry> = vec![CpEntry::Padding]; // index 0 unused
        while pool.len() < cp_count {
            need!(1, "constant pool tag");
            let tag = buf.get_u8();
            match tag {
                1 => {
                    need!(2, "Utf8 length");
                    let len = buf.get_u16() as usize;
                    need!(len, "Utf8 bytes");
                    let raw = buf.take(len);
                    // Modified UTF-8 ≈ UTF-8 for the names we handle.
                    let s = String::from_utf8_lossy(raw).into_owned();
                    pool.push(CpEntry::Utf8(s));
                }
                7 => {
                    need!(2, "Class index");
                    pool.push(CpEntry::Class {
                        name_index: buf.get_u16(),
                    });
                }
                3 | 4 => {
                    need!(4, "Integer/Float");
                    buf.advance(4);
                    pool.push(CpEntry::Other);
                }
                5 | 6 => {
                    need!(8, "Long/Double");
                    buf.advance(8);
                    pool.push(CpEntry::Other);
                    pool.push(CpEntry::Padding);
                }
                8 | 16 | 19 | 20 => {
                    need!(2, "String/MethodType/Module/Package");
                    buf.advance(2);
                    pool.push(CpEntry::Other);
                }
                9 | 10 | 11 | 12 | 17 | 18 => {
                    need!(4, "member ref / NameAndType / Dynamic");
                    buf.advance(4);
                    pool.push(CpEntry::Other);
                }
                15 => {
                    need!(3, "MethodHandle");
                    buf.advance(3);
                    pool.push(CpEntry::Other);
                }
                other => return err(format!("unknown constant pool tag {other}")),
            }
        }
        let utf8 = |idx: u16| -> Result<String, ClassFileError> {
            match pool.get(idx as usize) {
                Some(CpEntry::Utf8(s)) => Ok(s.clone()),
                _ => err(format!("constant pool index {idx} is not Utf8")),
            }
        };
        let class_name = |idx: u16| -> Result<String, ClassFileError> {
            match pool.get(idx as usize) {
                Some(CpEntry::Class { name_index }) => Ok(utf8(*name_index)?.replace('/', ".")),
                _ => err(format!("constant pool index {idx} is not a Class")),
            }
        };

        need!(8, "class header");
        let access = buf.get_u16();
        let this_class = buf.get_u16();
        let super_class = buf.get_u16();
        let name = class_name(this_class)?;
        let super_name = if super_class == 0 {
            None
        } else {
            let s = class_name(super_class)?;
            if s == "java.lang.Object" {
                None
            } else {
                Some(s)
            }
        };
        let iface_count = buf.get_u16() as usize;
        let mut interfaces = Vec::with_capacity(iface_count);
        for _ in 0..iface_count {
            need!(2, "interface index");
            interfaces.push(class_name(buf.get_u16())?);
        }

        let read_members =
            |buf: &mut Reader| -> Result<Vec<(u16, String, String)>, ClassFileError> {
                if buf.remaining() < 2 {
                    return err("truncated member count");
                }
                let count = buf.get_u16() as usize;
                let mut out = Vec::with_capacity(count);
                for _ in 0..count {
                    if buf.remaining() < 8 {
                        return err("truncated member");
                    }
                    let access = buf.get_u16();
                    let name = utf8(buf.get_u16())?;
                    let descriptor = utf8(buf.get_u16())?;
                    let attr_count = buf.get_u16() as usize;
                    for _ in 0..attr_count {
                        if buf.remaining() < 6 {
                            return err("truncated attribute");
                        }
                        let _name_idx = buf.get_u16();
                        let len = buf.get_u32() as usize;
                        if buf.remaining() < len {
                            return err("truncated attribute body");
                        }
                        buf.advance(len);
                    }
                    out.push((access, name, descriptor));
                }
                Ok(out)
            };

        let fields = read_members(&mut buf)?
            .into_iter()
            .map(|(access, name, descriptor)| JavaField {
                name,
                descriptor,
                access,
            })
            .collect();
        let methods = read_members(&mut buf)?
            .into_iter()
            .map(|(access, name, descriptor)| JavaMethod {
                name,
                descriptor,
                access,
            })
            .collect();
        // Class attributes: contents ignored but structure validated.
        if buf.remaining() < 2 {
            return err("truncated class attribute count");
        }
        let attr_count = buf.get_u16() as usize;
        for _ in 0..attr_count {
            if buf.remaining() < 6 {
                return err("truncated class attribute");
            }
            let _ = buf.get_u16();
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return err("truncated class attribute body");
            }
            buf.advance(len);
        }

        Ok(ClassFile {
            name,
            super_name,
            interfaces,
            access,
            fields,
            methods,
        })
    }
}

/// A description of a class to *write* as class-file bytes.
///
/// ```
/// use mockingbird_lang_java::{ClassFile, ClassSpec};
/// let bytes = ClassSpec::new("geom.Point")
///     .field("x", "F")
///     .field("y", "F")
///     .method("getX", "()F")
///     .write();
/// let parsed = ClassFile::parse(&bytes).unwrap();
/// assert_eq!(parsed.name, "geom.Point");
/// assert_eq!(parsed.fields.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Dotted class name.
    pub name: String,
    /// Dotted superclass name (defaults to `java.lang.Object`).
    pub super_name: String,
    /// Class access flags.
    pub access: u16,
    /// `(name, descriptor, access)` field triples.
    pub fields: Vec<(String, String, u16)>,
    /// `(name, descriptor, access)` method triples.
    pub methods: Vec<(String, String, u16)>,
}

impl ClassSpec {
    /// Starts a public class extending `java.lang.Object`.
    pub fn new(name: impl Into<String>) -> Self {
        ClassSpec {
            name: name.into(),
            super_name: "java.lang.Object".into(),
            access: ACC_PUBLIC,
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Sets the superclass (dotted name).
    pub fn extends(mut self, super_name: impl Into<String>) -> Self {
        self.super_name = super_name.into();
        self
    }

    /// Marks the class as an interface.
    pub fn interface(mut self) -> Self {
        self.access |= ACC_INTERFACE | ACC_ABSTRACT;
        self
    }

    /// Adds a private instance field.
    pub fn field(mut self, name: impl Into<String>, descriptor: impl Into<String>) -> Self {
        self.fields
            .push((name.into(), descriptor.into(), ACC_PRIVATE));
        self
    }

    /// Adds a static field (excluded from structural layout).
    pub fn static_field(mut self, name: impl Into<String>, descriptor: impl Into<String>) -> Self {
        self.fields
            .push((name.into(), descriptor.into(), ACC_PRIVATE | ACC_STATIC));
        self
    }

    /// Adds a public method.
    pub fn method(mut self, name: impl Into<String>, descriptor: impl Into<String>) -> Self {
        self.methods
            .push((name.into(), descriptor.into(), ACC_PUBLIC | ACC_ABSTRACT));
        self
    }

    /// Adds a private method (excluded from interface structure).
    pub fn private_method(
        mut self,
        name: impl Into<String>,
        descriptor: impl Into<String>,
    ) -> Self {
        self.methods
            .push((name.into(), descriptor.into(), ACC_PRIVATE | ACC_ABSTRACT));
        self
    }

    /// Serialises to class-file bytes.
    pub fn write(&self) -> Vec<u8> {
        let mut pool: Vec<CpEntry> = vec![CpEntry::Padding];
        let utf8_index = |pool: &mut Vec<CpEntry>, s: &str| -> u16 {
            for (i, e) in pool.iter().enumerate() {
                if matches!(e, CpEntry::Utf8(x) if x == s) {
                    return i as u16;
                }
            }
            pool.push(CpEntry::Utf8(s.to_string()));
            (pool.len() - 1) as u16
        };
        let class_index = |pool: &mut Vec<CpEntry>, dotted: &str| -> u16 {
            let slashed = dotted.replace('.', "/");
            let name_index = utf8_index(pool, &slashed);
            for (i, e) in pool.iter().enumerate() {
                if matches!(e, CpEntry::Class { name_index: n } if *n == name_index) {
                    return i as u16;
                }
            }
            pool.push(CpEntry::Class { name_index });
            (pool.len() - 1) as u16
        };

        let this_class = class_index(&mut pool, &self.name);
        let super_class = class_index(&mut pool, &self.super_name);
        let members: Vec<(u16, u16, u16)> = self
            .fields
            .iter()
            .chain(self.methods.iter())
            .map(|(name, desc, access)| {
                let n = utf8_index(&mut pool, name);
                let d = utf8_index(&mut pool, desc);
                (*access, n, d)
            })
            .collect();
        let (field_members, method_members) = members.split_at(self.fields.len());

        let mut out: Vec<u8> = Vec::new();
        out.put_u32(MAGIC);
        out.put_u16(0); // minor
        out.put_u16(52); // major: Java 8
        out.put_u16(pool.len() as u16);
        for e in pool.iter().skip(1) {
            match e {
                CpEntry::Utf8(s) => {
                    out.put_u8(1);
                    out.put_u16(s.len() as u16);
                    out.put_slice(s.as_bytes());
                }
                CpEntry::Class { name_index } => {
                    out.put_u8(7);
                    out.put_u16(*name_index);
                }
                CpEntry::Padding | CpEntry::Other => unreachable!("writer emits only Utf8/Class"),
            }
        }
        out.put_u16(self.access);
        out.put_u16(this_class);
        out.put_u16(super_class);
        out.put_u16(0); // interfaces
        out.put_u16(field_members.len() as u16);
        for (access, n, d) in field_members {
            out.put_u16(*access);
            out.put_u16(*n);
            out.put_u16(*d);
            out.put_u16(0); // attributes
        }
        out.put_u16(method_members.len() as u16);
        for (access, n, d) in method_members {
            out.put_u16(*access);
            out.put_u16(*n);
            out.put_u16(*d);
            out.put_u16(0);
        }
        out.put_u16(0); // class attributes
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple_class() {
        let bytes = ClassSpec::new("geom.Point")
            .field("x", "F")
            .field("y", "F")
            .method("getX", "()F")
            .method("translate", "(FF)V")
            .write();
        let cf = ClassFile::parse(&bytes).unwrap();
        assert_eq!(cf.name, "geom.Point");
        assert_eq!(cf.super_name, None);
        assert!(!cf.is_interface());
        assert_eq!(cf.fields.len(), 2);
        assert_eq!(cf.fields[0].name, "x");
        assert_eq!(cf.fields[0].descriptor, "F");
        assert_eq!(cf.methods[1].descriptor, "(FF)V");
        assert!(cf.methods[0].is_public());
    }

    #[test]
    fn round_trip_vector_subclass_and_interface() {
        let bytes = ClassSpec::new("PointVector")
            .extends("java.util.Vector")
            .write();
        let cf = ClassFile::parse(&bytes).unwrap();
        assert_eq!(cf.super_name.as_deref(), Some("java.util.Vector"));

        let bytes = ClassSpec::new("JavaIdeal")
            .interface()
            .method("fitter", "(LPointVector;)LLine;")
            .write();
        let cf = ClassFile::parse(&bytes).unwrap();
        assert!(cf.is_interface());
        assert_eq!(cf.methods[0].descriptor, "(LPointVector;)LLine;");
    }

    #[test]
    fn static_members_are_flagged() {
        let bytes = ClassSpec::new("C").static_field("COUNT", "I").write();
        let cf = ClassFile::parse(&bytes).unwrap();
        assert!(cf.fields[0].is_static());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = ClassFile::parse(&[0, 1, 2, 3, 4, 5, 6, 7]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let full = ClassSpec::new("T")
            .field("a", "I")
            .method("m", "()V")
            .write();
        for cut in 1..full.len() {
            assert!(
                ClassFile::parse(&full[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn reader_tolerates_exotic_constant_pool_tags() {
        // Build a pool containing Integer, Long (2 slots), String,
        // NameAndType, MethodHandle around the entries we need.
        let mut out: Vec<u8> = Vec::new();
        out.put_u32(MAGIC);
        out.put_u16(0);
        out.put_u16(52);
        out.put_u16(9); // count = entries + 1 (Long takes 2)
                        // 1: Utf8 "T"
        out.put_u8(1);
        out.put_u16(1);
        out.put_slice(b"T");
        // 2: Class -> 1
        out.put_u8(7);
        out.put_u16(1);
        // 3: Integer
        out.put_u8(3);
        out.put_u32(42);
        // 4+5: Long (two slots)
        out.put_u8(5);
        out.put_u64(7);
        // 6: String -> 1
        out.put_u8(8);
        out.put_u16(1);
        // 7: NameAndType
        out.put_u8(12);
        out.put_u16(1);
        out.put_u16(1);
        // 8: MethodHandle
        out.put_u8(15);
        out.put_u8(1);
        out.put_u16(1);
        // access/this/super/interfaces/fields/methods/attributes
        out.put_u16(ACC_PUBLIC);
        out.put_u16(2);
        out.put_u16(0);
        out.put_u16(0);
        out.put_u16(0);
        out.put_u16(0);
        out.put_u16(0);
        let cf = ClassFile::parse(&out).unwrap();
        assert_eq!(cf.name, "T");
        assert_eq!(cf.super_name, None);
    }
}
