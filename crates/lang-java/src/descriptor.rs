//! JVM type-descriptor parsing.
//!
//! Field descriptors (`F`, `[I`, `Ljava/lang/String;`) and method
//! descriptors (`(IF)V`) translate to [`Stype`]s with the predefined
//! Java annotations applied: `java.lang.String` is a character list,
//! `java.lang.Object` is the dynamic type, other class references are
//! nullable object references.

use std::fmt;

use mockingbird_stype::ast::Stype;

/// A malformed descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescriptorError(pub String);

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad descriptor: {}", self.0)
    }
}

impl std::error::Error for DescriptorError {}

/// Parses a field descriptor into an [`Stype`].
///
/// # Errors
///
/// Returns [`DescriptorError`] on malformed or trailing input.
pub fn parse_field_descriptor(desc: &str) -> Result<Stype, DescriptorError> {
    let mut chars = desc.chars().peekable();
    let ty = parse_one(&mut chars, desc)?;
    if chars.next().is_some() {
        return Err(DescriptorError(format!("trailing characters in `{desc}`")));
    }
    Ok(ty)
}

/// Parses a method descriptor into `(params, return)`.
///
/// # Errors
///
/// Returns [`DescriptorError`] on malformed input.
pub fn parse_method_descriptor(desc: &str) -> Result<(Vec<Stype>, Stype), DescriptorError> {
    let mut chars = desc.chars().peekable();
    if chars.next() != Some('(') {
        return Err(DescriptorError(format!(
            "method descriptor `{desc}` must start with `(`"
        )));
    }
    let mut params = Vec::new();
    loop {
        match chars.peek() {
            Some(')') => {
                chars.next();
                break;
            }
            Some(_) => params.push(parse_one(&mut chars, desc)?),
            None => {
                return Err(DescriptorError(format!(
                    "unterminated parameter list in `{desc}`"
                )))
            }
        }
    }
    let ret = parse_one(&mut chars, desc)?;
    if chars.next().is_some() {
        return Err(DescriptorError(format!("trailing characters in `{desc}`")));
    }
    Ok((params, ret))
}

/// Converts a dotted Java class name reference into an [`Stype`],
/// applying the predefined annotations for standard classes.
pub fn class_reference(dotted: &str) -> Stype {
    match dotted {
        "java.lang.String" => Stype::string(),
        "java.lang.Object" => Stype::any(),
        _ => Stype::pointer(Stype::named(dotted.to_string())),
    }
}

fn parse_one(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    whole: &str,
) -> Result<Stype, DescriptorError> {
    match chars.next() {
        Some('B') => Ok(Stype::i8()),
        Some('C') => Ok(Stype::char16()),
        Some('D') => Ok(Stype::f64()),
        Some('F') => Ok(Stype::f32()),
        Some('I') => Ok(Stype::i32()),
        Some('J') => Ok(Stype::i64()),
        Some('S') => Ok(Stype::i16()),
        Some('Z') => Ok(Stype::boolean()),
        Some('V') => Ok(Stype::void()),
        Some('[') => {
            let elem = parse_one(chars, whole)?;
            Ok(Stype::array_indefinite(elem))
        }
        Some('L') => {
            let mut name = String::new();
            loop {
                match chars.next() {
                    Some(';') => break,
                    Some(c) => name.push(if c == '/' { '.' } else { c }),
                    None => {
                        return Err(DescriptorError(format!(
                            "unterminated class reference in `{whole}`"
                        )))
                    }
                }
            }
            if name.is_empty() {
                return Err(DescriptorError(format!("empty class name in `{whole}`")));
            }
            Ok(class_reference(&name))
        }
        Some(c) => Err(DescriptorError(format!(
            "unknown descriptor tag `{c}` in `{whole}`"
        ))),
        None => Err(DescriptorError(format!("empty descriptor in `{whole}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_stype::ast::{ArrayLen, Prim, SNode};

    #[test]
    fn primitive_descriptors() {
        for (d, p) in [
            ("B", Prim::I8),
            ("C", Prim::Char16),
            ("D", Prim::F64),
            ("F", Prim::F32),
            ("I", Prim::I32),
            ("J", Prim::I64),
            ("S", Prim::I16),
            ("Z", Prim::Bool),
        ] {
            let ty = parse_field_descriptor(d).unwrap();
            assert!(matches!(ty.node, SNode::Prim(x) if x == p), "{d}");
        }
    }

    #[test]
    fn class_and_array_descriptors() {
        let ty = parse_field_descriptor("Lgeom/Point;").unwrap();
        let SNode::Pointer(inner) = &ty.node else {
            panic!()
        };
        assert!(matches!(&inner.node, SNode::Named(n) if n == "geom.Point"));

        let ty = parse_field_descriptor("[[F").unwrap();
        let SNode::Array { elem, len } = &ty.node else {
            panic!()
        };
        assert!(matches!(len, ArrayLen::Indefinite));
        assert!(matches!(&elem.node, SNode::Array { .. }));
    }

    #[test]
    fn predefined_standard_classes() {
        assert!(matches!(
            parse_field_descriptor("Ljava/lang/String;").unwrap().node,
            SNode::Str
        ));
        assert!(matches!(
            parse_field_descriptor("Ljava/lang/Object;").unwrap().node,
            SNode::Prim(Prim::Any)
        ));
    }

    #[test]
    fn method_descriptors() {
        let (params, ret) = parse_method_descriptor("(IF)V").unwrap();
        assert_eq!(params.len(), 2);
        assert!(matches!(ret.node, SNode::Prim(Prim::Void)));

        let (params, ret) = parse_method_descriptor("(LPointVector;)LLine;").unwrap();
        assert_eq!(params.len(), 1);
        assert!(matches!(&ret.node, SNode::Pointer(_)));

        let (params, _) = parse_method_descriptor("()D").unwrap();
        assert!(params.is_empty());
    }

    #[test]
    fn malformed_descriptors_rejected() {
        assert!(parse_field_descriptor("").is_err());
        assert!(parse_field_descriptor("Q").is_err());
        assert!(parse_field_descriptor("Lgeom/Point").is_err());
        assert!(parse_field_descriptor("L;").is_err());
        assert!(parse_field_descriptor("II").is_err());
        assert!(parse_method_descriptor("IF)V").is_err());
        assert!(parse_method_descriptor("(I").is_err());
        assert!(parse_method_descriptor("(I)VX").is_err());
    }
}
