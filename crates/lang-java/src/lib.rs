//! The Java frontend.
//!
//! The paper's Java parser "is a simple extractor of type declarations
//! from Java .class files" (§4). This crate implements that extractor on
//! the real JVM class-file binary format — constant pool, field and
//! method tables, type descriptors — plus:
//!
//! - a class-file **writer** ([`classfile::ClassSpec`]) used to
//!   synthesise spec-conformant `.class` bytes for tests and corpora
//!   (we have no `javac`; see DESIGN.md §2),
//! - a Java **source declaration parser** ([`source::parse_java`]) for
//!   convenience, covering class/interface declarations with fields and
//!   method signatures,
//! - conversion of both into [`Stype`] declarations with the paper's
//!   predefined annotations (`java.lang.String` is a character list,
//!   `java.util.Vector` subclasses are ordered collections of indefinite
//!   size).
//!
//! # Example
//!
//! ```
//! use mockingbird_lang_java::source::parse_java;
//!
//! let uni = parse_java(
//!     "public class Point {
//!        private float x;
//!        private float y;
//!        public Point(float x, float y) { }
//!        public float getX() { return x; }
//!      }",
//! )?;
//! let decl = uni.get("Point").unwrap();
//! # Ok::<(), mockingbird_lang_java::source::JavaParseError>(())
//! ```
//!
//! [`Stype`]: mockingbird_stype::Stype

pub mod classfile;
pub mod convert;
pub mod descriptor;
pub mod source;

pub use classfile::{ClassFile, ClassFileError, ClassSpec, JavaField, JavaMethod};
pub use convert::{class_file_to_decl, load_class_files};
pub use descriptor::{parse_field_descriptor, parse_method_descriptor, DescriptorError};
pub use source::parse_java;
