//! Conversion of parsed class files into Stype declarations.

use std::fmt;

use mockingbird_stype::ast::{Decl, Field, Lang, Method, Param, Signature, Stype, Universe};

use crate::classfile::{ClassFile, ClassFileError};
use crate::descriptor::{parse_field_descriptor, parse_method_descriptor, DescriptorError};

/// Errors from loading class files into a universe.
#[derive(Debug)]
pub enum JavaLoadError {
    /// The class-file bytes are malformed.
    ClassFile(ClassFileError),
    /// A member descriptor is malformed.
    Descriptor(DescriptorError),
    /// Two classes with the same name were loaded.
    Duplicate(String),
}

impl fmt::Display for JavaLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JavaLoadError::ClassFile(e) => write!(f, "{e}"),
            JavaLoadError::Descriptor(e) => write!(f, "{e}"),
            JavaLoadError::Duplicate(n) => write!(f, "class `{n}` already loaded"),
        }
    }
}

impl std::error::Error for JavaLoadError {}

impl From<ClassFileError> for JavaLoadError {
    fn from(e: ClassFileError) -> Self {
        JavaLoadError::ClassFile(e)
    }
}

impl From<DescriptorError> for JavaLoadError {
    fn from(e: DescriptorError) -> Self {
        JavaLoadError::Descriptor(e)
    }
}

/// Converts one parsed class file into a declaration.
///
/// Instance fields contribute structure (private ones included — the
/// paper's `Point` has private `x`/`y` that are structurally two Reals);
/// public non-constructor instance methods contribute the interface.
///
/// # Errors
///
/// Returns [`JavaLoadError::Descriptor`] if any member descriptor is
/// malformed.
pub fn class_file_to_decl(cf: &ClassFile) -> Result<Decl, JavaLoadError> {
    let methods = cf
        .methods
        .iter()
        .filter(|m| m.is_public() && !m.is_initializer() && !m.is_static())
        .map(|m| {
            let (param_types, ret) = parse_method_descriptor(&m.descriptor)?;
            let params = param_types
                .into_iter()
                .enumerate()
                .map(|(i, ty)| Param::new(format!("arg{i}"), ty))
                .collect();
            Ok(Method::new(m.name.clone(), Signature::new(params, ret)))
        })
        .collect::<Result<Vec<_>, JavaLoadError>>()?;

    let ty = if cf.is_interface() {
        Stype::interface(methods)
    } else {
        let fields = cf
            .fields
            .iter()
            .filter(|f| !f.is_static())
            .map(|f| {
                Ok(Field::new(
                    f.name.clone(),
                    parse_field_descriptor(&f.descriptor)?,
                ))
            })
            .collect::<Result<Vec<_>, JavaLoadError>>()?;
        match &cf.super_name {
            Some(sup) => Stype::class_extending(fields, methods, sup.clone()),
            None => Stype::class(fields, methods),
        }
    };
    Ok(Decl::new(cf.name.clone(), Lang::Java, ty))
}

/// Parses and loads a batch of class-file byte blobs into `uni`.
///
/// # Errors
///
/// Returns the first parse, descriptor or duplicate-name failure; earlier
/// classes remain loaded.
pub fn load_class_files(uni: &mut Universe, blobs: &[Vec<u8>]) -> Result<usize, JavaLoadError> {
    let mut loaded = 0;
    for blob in blobs {
        let cf = ClassFile::parse(blob)?;
        let decl = class_file_to_decl(&cf)?;
        let name = decl.name.clone();
        uni.insert(decl)
            .map_err(|_| JavaLoadError::Duplicate(name))?;
        loaded += 1;
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classfile::ClassSpec;
    use mockingbird_stype::ast::SNode;

    #[test]
    fn point_class_converts_to_value_class() {
        let bytes = ClassSpec::new("Point")
            .field("x", "F")
            .field("y", "F")
            .method("getX", "()F")
            .method("<init>", "(FF)V")
            .static_field("ORIGIN", "LPoint;")
            .write();
        let cf = ClassFile::parse(&bytes).unwrap();
        let decl = class_file_to_decl(&cf).unwrap();
        let SNode::Class {
            fields,
            methods,
            extends,
        } = &decl.ty.node
        else {
            panic!()
        };
        assert_eq!(fields.len(), 2, "static field excluded");
        assert_eq!(methods.len(), 1, "constructor excluded");
        assert!(extends.is_none());
    }

    #[test]
    fn interface_converts() {
        let bytes = ClassSpec::new("JavaIdeal")
            .interface()
            .method("fitter", "(LPointVector;)LLine;")
            .write();
        let cf = ClassFile::parse(&bytes).unwrap();
        let decl = class_file_to_decl(&cf).unwrap();
        let SNode::Interface { methods, .. } = &decl.ty.node else {
            panic!()
        };
        assert_eq!(methods[0].name, "fitter");
        assert_eq!(methods[0].sig.params[0].name, "arg0");
    }

    #[test]
    fn vector_subclass_keeps_extends_chain() {
        let bytes = ClassSpec::new("PointVector")
            .extends("java.util.Vector")
            .write();
        let cf = ClassFile::parse(&bytes).unwrap();
        let decl = class_file_to_decl(&cf).unwrap();
        let SNode::Class { extends, .. } = &decl.ty.node else {
            panic!()
        };
        assert_eq!(extends.as_deref(), Some("java.util.Vector"));
    }

    #[test]
    fn batch_load_and_duplicates() {
        let mut uni = Universe::new();
        let blobs = vec![
            ClassSpec::new("A").field("v", "I").write(),
            ClassSpec::new("B").field("a", "LA;").write(),
        ];
        assert_eq!(load_class_files(&mut uni, &blobs).unwrap(), 2);
        assert!(uni.get("A").is_some());
        let err = load_class_files(&mut uni, &[ClassSpec::new("A").write()]).unwrap_err();
        assert!(matches!(err, JavaLoadError::Duplicate(_)));
    }

    #[test]
    fn bad_descriptor_is_reported() {
        // Hand-build a spec with a broken descriptor.
        let bytes = ClassSpec::new("Bad").field("x", "Qnope").write();
        let cf = ClassFile::parse(&bytes).unwrap();
        assert!(matches!(
            class_file_to_decl(&cf).unwrap_err(),
            JavaLoadError::Descriptor(_)
        ));
    }
}
