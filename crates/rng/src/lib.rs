//! A deterministic, dependency-free pseudo-random number generator.
//!
//! The corpora, property tests, and benchmarks all need *seeded,
//! reproducible* randomness — never cryptographic strength. This crate
//! provides a single generator, [`StdRng`], whose API mirrors the small
//! slice of the `rand` crate the repository uses (`seed_from_u64`,
//! `gen_range`, `gen_bool`, slice shuffling), so call sites read the
//! same while the workspace stays free of external dependencies.
//!
//! The core is xoshiro256++ seeded through SplitMix64 — the standard
//! construction for fast, well-distributed, reproducible streams.

use std::ops::{Range, RangeInclusive};

/// A seeded xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Builds a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 128-bit output.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// A uniform sample from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`, integer or floating point).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen_f64() < p
    }

    fn gen_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform u128 below `bound` (rejection-free multiply-shift is
    /// overkill here; simple rejection keeps the stream unbiased).
    fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        // Rejection zone keeps the modulo unbiased.
        let zone = u128::MAX - (u128::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u128();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<i128> for Range<i128> {
    fn sample(self, rng: &mut StdRng) -> i128 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below(span) as i128)
    }
}

impl SampleRange<i128> for RangeInclusive<i128> {
    fn sample(self, rng: &mut StdRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo) as u128;
        if span == u128::MAX {
            return rng.next_u128() as i128;
        }
        lo.wrapping_add(rng.below(span + 1) as i128)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() as f32 * (self.end - self.start)
    }
}

/// Slice extensions mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// Fisher–Yates shuffles the slice in place.
    fn shuffle(&mut self, rng: &mut StdRng);
    /// A uniformly chosen element, or `None` when empty.
    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let v: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&v));
            let v = rng.gen_range(0u8..=0);
            assert_eq!(v, 0);
            let v = rng.gen_range(i128::MIN..=i128::MAX);
            let _ = v;
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "suspicious coin: {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements almost surely move");
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
