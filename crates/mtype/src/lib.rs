//! The Mockingbird internal type model (*Mtypes*).
//!
//! Mockingbird reconciles type declarations written in different languages
//! by first translating each declaration into a language-neutral model
//! called the **Mtype system** (Table 1 of the paper). This crate defines
//! that model: the eight Mtype kinds, an arena-based graph representation
//! that supports the cyclic structure produced by recursive declarations,
//! and the canonicalisation helpers (flattening, structural hashing) that
//! the [comparer's] isomorphism rules rely on.
//!
//! The eight kinds are:
//!
//! | Mtype       | Models                                                  |
//! |-------------|---------------------------------------------------------|
//! | `Character` | character types (`char`, `wchar_t`), by glyph repertoire|
//! | `Integer`   | integral types, by value range                          |
//! | `Real`      | floating point types, by precision and exponent         |
//! | `Unit`      | `void` and null                                         |
//! | `Record`    | ordered heterogeneous aggregates (`struct`, fixed arrays, parameter lists) |
//! | `Choice`    | disjoint unions, nullable pointers, method selection    |
//! | `Recursive` | self-referential types and indefinite-size collections  |
//! | `Port`      | functions, interfaces, message targets                  |
//!
//! A ninth kind, [`MtypeKind::Dynamic`], implements the paper's §6
//! extension ("a dynamic type construct of our own which is similar to
//! [CORBA] `Any`").
//!
//! # Example
//!
//! Build the Mtype of the paper's `fitter` interface,
//! `port(Record(L, port(Record(Record(Real,Real), Record(Real,Real)))))`:
//!
//! ```
//! use mockingbird_mtype::{MtypeGraph, RealPrecision};
//!
//! let mut g = MtypeGraph::new();
//! let real = g.real(RealPrecision::SINGLE);
//! let point = g.record(vec![real, real]);
//! let line = g.record(vec![point, point]);
//! let points = g.list_of(point);
//! let reply = g.port(line);
//! let invocation = g.record(vec![points, reply]);
//! let fitter = g.port(invocation);
//! assert_eq!(
//!     g.display(fitter).to_string(),
//!     "port(Record(Rec#L(Choice(Unit, Record(Record(Real{24,8}, Real{24,8}), #L))), \
//!      port(Record(Record(Real{24,8}, Real{24,8}), Record(Real{24,8}, Real{24,8})))))"
//! );
//! ```
//!
//! [comparer's]: https://example.invalid/mockingbird

pub mod canon;
pub mod display;
pub mod dot;
pub mod graph;
pub mod kind;

pub use display::MtypeDisplay;
pub use graph::{MtypeGraph, MtypeId, MtypeNode};
pub use kind::{IntRange, MtypeKind, RealPrecision, Repertoire};

#[cfg(test)]
mod proptests;
