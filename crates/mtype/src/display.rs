//! Textual rendering of Mtype graphs.
//!
//! The rendering follows the paper's notation: `port(Record(Real, Real))`,
//! with recursive binders written `Rec#L(...)` and back-references `#L`
//! (the paper's Fig. 8 draws these as graph back-edges).

use std::collections::HashMap;
use std::fmt;

use crate::graph::{MtypeGraph, MtypeId};
use crate::kind::MtypeKind;

/// A displayable view of one Mtype rooted at a node, produced by
/// [`MtypeGraph::display`].
pub struct MtypeDisplay<'g> {
    graph: &'g MtypeGraph,
    root: MtypeId,
}

impl MtypeGraph {
    /// Renders the Mtype rooted at `root` in the paper's notation.
    ///
    /// ```
    /// use mockingbird_mtype::{MtypeGraph, IntRange};
    /// let mut g = MtypeGraph::new();
    /// let i = g.integer(IntRange::boolean());
    /// let r = g.record(vec![i, i]);
    /// assert_eq!(g.display(r).to_string(), "Record(Int{0..=1}, Int{0..=1})");
    /// ```
    pub fn display(&self, root: MtypeId) -> MtypeDisplay<'_> {
        MtypeDisplay { graph: self, root }
    }

    /// Renders the Mtype rooted at `root`, truncating the output at
    /// roughly `cap` characters (with a trailing `…`).
    ///
    /// Plain [`MtypeGraph::display`] re-prints shared acyclic subgraphs
    /// at every occurrence, which is exponential on dense DAGs; use this
    /// in diagnostics and any other output on a hot path.
    pub fn display_capped(&self, root: MtypeId, cap: usize) -> String {
        let mut out = String::new();
        let mut binders = HashMap::new();
        let mut next = 0usize;
        let truncated = capped_write(self, root, cap, &mut out, &mut binders, &mut next).is_err();
        if truncated {
            out.push('…');
        }
        out
    }
}

/// Writes the rendering of `id`, erroring out (for early unwind) once
/// the output exceeds `cap`.
fn capped_write(
    graph: &MtypeGraph,
    id: MtypeId,
    cap: usize,
    out: &mut String,
    binders: &mut HashMap<MtypeId, String>,
    next_binder: &mut usize,
) -> Result<(), ()> {
    if out.len() > cap {
        return Err(());
    }
    match graph.kind(id) {
        MtypeKind::Integer(r) => out.push_str(&format!("Int{{{r}}}")),
        MtypeKind::Character(rep) => out.push_str(&format!("Char{{{rep}}}")),
        MtypeKind::Real(p) => out.push_str(&format!("Real{{{p}}}")),
        MtypeKind::Unit => out.push_str("Unit"),
        MtypeKind::Dynamic => out.push_str("Dynamic"),
        MtypeKind::Record(cs) => {
            out.push_str("Record(");
            for (i, &c) in cs.clone().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                capped_write(graph, c, cap, out, binders, next_binder)?;
            }
            out.push(')');
        }
        MtypeKind::Choice(cs) => {
            out.push_str("Choice(");
            for (i, &c) in cs.clone().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                capped_write(graph, c, cap, out, binders, next_binder)?;
            }
            out.push(')');
        }
        MtypeKind::Port(p) => {
            out.push_str("port(");
            capped_write(graph, *p, cap, out, binders, next_binder)?;
            out.push(')');
        }
        MtypeKind::Recursive(body) => {
            if let Some(name) = binders.get(&id) {
                out.push('#');
                out.push_str(name);
                return Ok(());
            }
            let name = binder_name(*next_binder);
            *next_binder += 1;
            binders.insert(id, name.clone());
            out.push_str("Rec#");
            out.push_str(&name);
            out.push('(');
            let body = *body;
            let r = capped_write(graph, body, cap, out, binders, next_binder);
            binders.remove(&id);
            r?;
            out.push(')');
        }
    }
    if out.len() > cap {
        return Err(());
    }
    Ok(())
}

fn binder_name(i: usize) -> String {
    const NAMES: [&str; 6] = ["L", "M", "N", "O", "P", "Q"];
    NAMES
        .get(i)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("X{i}"))
}

impl MtypeDisplay<'_> {
    fn write(
        &self,
        f: &mut fmt::Formatter<'_>,
        id: MtypeId,
        binders: &mut HashMap<MtypeId, String>,
        next_binder: &mut usize,
    ) -> fmt::Result {
        let g = self.graph;
        match g.kind(id) {
            MtypeKind::Integer(r) => write!(f, "Int{{{r}}}"),
            MtypeKind::Character(rep) => write!(f, "Char{{{rep}}}"),
            MtypeKind::Real(p) => write!(f, "Real{{{p}}}"),
            MtypeKind::Unit => write!(f, "Unit"),
            MtypeKind::Dynamic => write!(f, "Dynamic"),
            MtypeKind::Record(cs) => self.write_seq(f, "Record", cs, binders, next_binder),
            MtypeKind::Choice(cs) => self.write_seq(f, "Choice", cs, binders, next_binder),
            MtypeKind::Port(p) => {
                write!(f, "port(")?;
                self.write(f, *p, binders, next_binder)?;
                write!(f, ")")
            }
            MtypeKind::Recursive(body) => {
                if let Some(name) = binders.get(&id) {
                    // Back-reference into an enclosing binder.
                    return write!(f, "#{name}");
                }
                let name = binder_name(*next_binder);
                *next_binder += 1;
                binders.insert(id, name.clone());
                write!(f, "Rec#{name}(")?;
                self.write(f, *body, binders, next_binder)?;
                write!(f, ")")?;
                binders.remove(&id);
                Ok(())
            }
        }
    }

    fn write_seq(
        &self,
        f: &mut fmt::Formatter<'_>,
        tag: &str,
        children: &[MtypeId],
        binders: &mut HashMap<MtypeId, String>,
        next_binder: &mut usize,
    ) -> fmt::Result {
        write!(f, "{tag}(")?;
        for (i, &c) in children.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            self.write(f, c, binders, next_binder)?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for MtypeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut binders = HashMap::new();
        let mut next = 0usize;
        self.write(f, self.root, &mut binders, &mut next)
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::MtypeGraph;
    use crate::kind::{IntRange, RealPrecision, Repertoire};

    #[test]
    fn primitives_render() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(8));
        let c = g.character(Repertoire::Latin1);
        let r = g.real(RealPrecision::DOUBLE);
        let u = g.unit();
        let d = g.dynamic();
        assert_eq!(g.display(i).to_string(), "Int{-128..=127}");
        assert_eq!(g.display(c).to_string(), "Char{Latin-1}");
        assert_eq!(g.display(r).to_string(), "Real{53,11}");
        assert_eq!(g.display(u).to_string(), "Unit");
        assert_eq!(g.display(d).to_string(), "Dynamic");
    }

    #[test]
    fn recursive_list_renders_with_back_reference() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let list = g.list_of(r);
        assert_eq!(
            g.display(list).to_string(),
            "Rec#L(Choice(Unit, Record(Real{24,8}, #L)))"
        );
    }

    #[test]
    fn nested_binders_get_distinct_names() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let inner = g.list_of(i);
        let outer = g.list_of(inner);
        let s = g.display(outer).to_string();
        assert!(s.contains("Rec#L("), "{s}");
        assert!(s.contains("Rec#M("), "{s}");
        assert!(s.contains("#L)"), "{s}");
    }

    #[test]
    fn port_renders_lowercase_like_the_paper() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let f = g.function(vec![i], vec![r]);
        assert_eq!(
            g.display(f).to_string(),
            "port(Record(Int{-2147483648..=2147483647}, port(Record(Real{24,8}))))"
        );
    }
}
