//! Graphviz export of Mtype graphs.
//!
//! The paper's tool displays "a diagrammatic representation of the Mtype"
//! (Fig. 7); this module is the non-interactive equivalent, emitting DOT
//! source suitable for `dot -Tsvg`.

use std::fmt::Write as _;

use crate::graph::{MtypeGraph, MtypeId};
use crate::kind::MtypeKind;

/// Renders the subgraph reachable from `root` as Graphviz DOT source.
///
/// Node labels show the kind and parameters; `Recursive` back-edges are
/// drawn dashed, matching the paper's Fig. 8 presentation.
///
/// ```
/// use mockingbird_mtype::{MtypeGraph, RealPrecision, dot::to_dot};
/// let mut g = MtypeGraph::new();
/// let r = g.real(RealPrecision::SINGLE);
/// let list = g.list_of(r);
/// let dot = to_dot(&g, list, "JavaList");
/// assert!(dot.starts_with("digraph JavaList {"));
/// assert!(dot.contains("style=dashed"));
/// ```
pub fn to_dot(graph: &MtypeGraph, root: MtypeId, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    let reach = graph.reachable(root);
    for &id in &reach {
        let node = graph.node(id);
        let label = match &node.kind {
            MtypeKind::Integer(r) => format!("Integer\\n{r}"),
            MtypeKind::Character(rep) => format!("Character\\n{rep}"),
            MtypeKind::Real(p) => format!("Real\\n{p}"),
            other => other.tag().to_string(),
        };
        let label = match &node.label {
            Some(l) => format!("{label}\\n[{l}]"),
            None => label,
        };
        let _ = writeln!(out, "  {id} [label=\"{label}\"];");
    }
    for &id in &reach {
        let is_back_edge_target = |c: MtypeId| matches!(graph.kind(c), MtypeKind::Recursive(_));
        for (i, &c) in graph.kind(id).children().iter().enumerate() {
            // A child edge pointing at a Recursive binder from below it is a
            // back-edge; draw every edge into a binder (other than falling
            // out of the binder itself) dashed.
            let dashed =
                is_back_edge_target(c) && !matches!(graph.kind(id), MtypeKind::Choice(_) if false);
            let style = if dashed && !matches!(graph.kind(id), MtypeKind::Recursive(_)) {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(out, "  {id} -> {c} [label=\"{i}\"]{style};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::RealPrecision;

    #[test]
    fn dot_contains_all_reachable_nodes() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        g.set_label(point, "Point");
        let dot = to_dot(&g, point, "G");
        assert!(dot.contains("Record"));
        assert!(dot.contains("Real"));
        assert!(dot.contains("[Point]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn cyclic_graph_exports_without_hanging() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let list = g.list_of(r);
        let dot = to_dot(&g, list, "List");
        assert!(dot.contains("Recursive"));
        assert!(dot.contains("style=dashed"));
    }
}
