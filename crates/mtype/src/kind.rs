//! The Mtype kinds and their parameters (ranges, repertoires, precisions).

use std::fmt;

use crate::graph::MtypeId;

/// An inclusive integer value range, the parameter of the `Integer` Mtype
/// family.
///
/// Two integral types are equivalent iff their ranges are equal, and one is
/// a subtype of the other iff its range is a subset of the other's (paper
/// §3.1). Booleans use `0..=1`; an enumeration with `n` elements uses
/// `0..=n-1`.
///
/// ```
/// use mockingbird_mtype::IntRange;
/// let java_short = IntRange::signed_bits(16);
/// let java_int = IntRange::signed_bits(32);
/// assert!(java_short.is_subrange_of(&java_int));
/// assert!(!java_int.is_subrange_of(&java_short));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntRange {
    /// The least representable value.
    pub lo: i128,
    /// The greatest representable value.
    pub hi: i128,
}

impl IntRange {
    /// Creates a range from explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i128, hi: i128) -> Self {
        assert!(lo <= hi, "invalid integer range {lo}..={hi}");
        IntRange { lo, hi }
    }

    /// Range of a two's-complement signed integer with `bits` bits
    /// (e.g. a Java `short` is `signed_bits(16)`:
    /// \\(-2^{15} \dots 2^{15}-1\\)).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 127.
    pub fn signed_bits(bits: u32) -> Self {
        assert!(bits > 0 && bits < 128, "unsupported bit width {bits}");
        let hi = (1i128 << (bits - 1)) - 1;
        IntRange {
            lo: -(1i128 << (bits - 1)),
            hi,
        }
    }

    /// Range of an unsigned integer with `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 127.
    pub fn unsigned_bits(bits: u32) -> Self {
        assert!(bits > 0 && bits < 128, "unsupported bit width {bits}");
        IntRange {
            lo: 0,
            hi: (1i128 << bits) - 1,
        }
    }

    /// The conventional boolean range `0..=1`.
    pub fn boolean() -> Self {
        IntRange { lo: 0, hi: 1 }
    }

    /// The conventional range for an enumeration of `n` elements,
    /// `0..=n-1` (paper §3.1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn enumeration(n: u64) -> Self {
        assert!(n > 0, "enumeration must have at least one element");
        IntRange {
            lo: 0,
            hi: (n as i128) - 1,
        }
    }

    /// Whether `self`'s range is a (non-strict) subset of `other`'s:
    /// the subtype test for Integer Mtypes.
    pub fn is_subrange_of(&self, other: &IntRange) -> bool {
        self.lo >= other.lo && self.hi <= other.hi
    }

    /// Whether `value` is representable in this range.
    pub fn contains(&self, value: i128) -> bool {
        self.lo <= value && value <= self.hi
    }

    /// Number of values in the range, saturating at `u128::MAX`.
    pub fn cardinality(&self) -> u128 {
        (self.hi as u128)
            .wrapping_sub(self.lo as u128)
            .saturating_add(1)
    }
}

impl fmt::Display for IntRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..={}", self.lo, self.hi)
    }
}

/// A glyph repertoire, the parameter of the `Character` Mtype family.
///
/// One Character Mtype is a subtype of another iff the latter's repertoire
/// includes the former's (paper §3.1): ISO-Latin-1 ⊆ Unicode, ASCII ⊆ both.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Repertoire {
    /// 7-bit US-ASCII.
    Ascii,
    /// ISO-8859-1 (Latin-1), the default repertoire of C `char`.
    Latin1,
    /// The Unicode repertoire, the default of Java `char` and `wchar_t`.
    Unicode,
    /// A named custom repertoire; two custom repertoires are comparable
    /// only when their names are equal.
    Custom(String),
}

impl Repertoire {
    /// Whether every glyph of `self` is also in `other`.
    pub fn is_subrepertoire_of(&self, other: &Repertoire) -> bool {
        use Repertoire::*;
        match (self, other) {
            (Ascii, _) => !matches!(other, Custom(_)),
            (Latin1, Latin1) | (Latin1, Unicode) => true,
            (Unicode, Unicode) => true,
            (Custom(a), Custom(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Repertoire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Repertoire::Ascii => write!(f, "ASCII"),
            Repertoire::Latin1 => write!(f, "Latin-1"),
            Repertoire::Unicode => write!(f, "Unicode"),
            Repertoire::Custom(name) => write!(f, "{name}"),
        }
    }
}

/// Precision and exponent width of a `Real` Mtype (paper §3.1: "a family
/// of Real Mtypes distinguished by their precision and exponent").
///
/// Uses IEEE-754 conventions: `mantissa_bits` counts the significand
/// including the implicit leading bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RealPrecision {
    /// Significand width in bits (24 for `float`, 53 for `double`).
    pub mantissa_bits: u16,
    /// Exponent width in bits (8 for `float`, 11 for `double`).
    pub exponent_bits: u16,
}

impl RealPrecision {
    /// IEEE-754 binary32 (C `float`, Java `float`, IDL `float`).
    pub const SINGLE: RealPrecision = RealPrecision {
        mantissa_bits: 24,
        exponent_bits: 8,
    };
    /// IEEE-754 binary64 (C `double`, Java `double`, IDL `double`).
    pub const DOUBLE: RealPrecision = RealPrecision {
        mantissa_bits: 53,
        exponent_bits: 11,
    };

    /// Whether every value of `self` is exactly representable in `other`:
    /// the subtype test for Real Mtypes.
    pub fn fits_in(&self, other: &RealPrecision) -> bool {
        self.mantissa_bits <= other.mantissa_bits && self.exponent_bits <= other.exponent_bits
    }
}

impl fmt::Display for RealPrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.mantissa_bits, self.exponent_bits)
    }
}

/// One node kind in an Mtype graph.
///
/// Child references are [`MtypeId`]s into the owning [`MtypeGraph`]; edges
/// may point *backwards* to a `Recursive` node, which is how cycles
/// ("back-pointers to this node represent self-references", paper §3.2)
/// are encoded.
///
/// [`MtypeGraph`]: crate::graph::MtypeGraph
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MtypeKind {
    /// An integral type, parameterised by value range.
    Integer(IntRange),
    /// A character type, parameterised by glyph repertoire.
    Character(Repertoire),
    /// A floating point type, parameterised by precision and exponent.
    Real(RealPrecision),
    /// The `void`/null type.
    Unit,
    /// An ordered heterogeneous aggregate. Fixed-size arrays of length
    /// `n` become Records with `n` identical children (paper §3.2).
    Record(Vec<MtypeId>),
    /// A disjoint union of alternatives. Nullable pointers become
    /// `Choice(Unit, referent)`; objects passed by reference become
    /// `port(Choice(m_1..m_n))` over their method invocation Mtypes.
    Choice(Vec<MtypeId>),
    /// A binder marking a cycle in the graph; `body` may (transitively)
    /// refer back to this node. Indefinite-size homogeneous collections
    /// are the canonical list `Rec X. Choice(Unit, Record(elem, X))`.
    Recursive(MtypeId),
    /// An address to which values of the child Mtype may be sent.
    /// Functions translate to `port(Record(I, port(O)))` (paper §3.3).
    Port(MtypeId),
    /// The §6 extension: a dynamically-typed value ("similar to Any").
    Dynamic,
}

impl MtypeKind {
    /// The node's children, in order.
    pub fn children(&self) -> &[MtypeId] {
        match self {
            MtypeKind::Record(cs) | MtypeKind::Choice(cs) => cs,
            MtypeKind::Recursive(c) | MtypeKind::Port(c) => std::slice::from_ref(c),
            _ => &[],
        }
    }

    /// Mutable access to the node's children, in order.
    pub fn children_mut(&mut self) -> &mut [MtypeId] {
        match self {
            MtypeKind::Record(cs) | MtypeKind::Choice(cs) => cs,
            MtypeKind::Recursive(c) | MtypeKind::Port(c) => std::slice::from_mut(c),
            _ => &mut [],
        }
    }

    /// A short tag naming the kind, as used in Table 1 of the paper.
    pub fn tag(&self) -> &'static str {
        match self {
            MtypeKind::Integer(_) => "Integer",
            MtypeKind::Character(_) => "Character",
            MtypeKind::Real(_) => "Real",
            MtypeKind::Unit => "Unit",
            MtypeKind::Record(_) => "Record",
            MtypeKind::Choice(_) => "Choice",
            MtypeKind::Recursive(_) => "Recursive",
            MtypeKind::Port(_) => "Port",
            MtypeKind::Dynamic => "Dynamic",
        }
    }

    /// The Table-1 description of the kind.
    pub fn description(&self) -> &'static str {
        match self {
            MtypeKind::Character(_) => "Corresponds to character types, e.g. char.",
            MtypeKind::Integer(_) => "Corresponds to integral types, e.g. int.",
            MtypeKind::Real(_) => "Corresponds to floating point types, e.g. float.",
            MtypeKind::Unit => "Corresponds to void or null types.",
            MtypeKind::Record(_) => "Corresponds to aggregates, e.g. struct.",
            MtypeKind::Choice(_) => {
                "Corresponds to disjoint unions (variants), e.g. union, \
                 and other places where alternatives arise."
            }
            MtypeKind::Recursive(_) => "Corresponds to types defined in terms of themselves.",
            MtypeKind::Port(_) => "Used to implement functions, interfaces, etc.",
            MtypeKind::Dynamic => "Extension: dynamically typed values (similar to CORBA Any).",
        }
    }

    /// Whether this is a leaf (primitive) kind.
    pub fn is_primitive(&self) -> bool {
        matches!(
            self,
            MtypeKind::Integer(_)
                | MtypeKind::Character(_)
                | MtypeKind::Real(_)
                | MtypeKind::Unit
                | MtypeKind::Dynamic
        )
    }
}

/// The eight Mtype kind tags of Table 1, in the paper's order, plus the
/// `Dynamic` extension. Useful for regenerating the table.
pub const TABLE1_TAGS: [&str; 8] = [
    "Character",
    "Integer",
    "Real",
    "Unit",
    "Record",
    "Choice",
    "Recursive",
    "Port",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_bits_matches_java_short() {
        let r = IntRange::signed_bits(16);
        assert_eq!(r.lo, -(1 << 15));
        assert_eq!(r.hi, (1 << 15) - 1);
    }

    #[test]
    fn unsigned_bits_matches_c_unsigned() {
        let r = IntRange::unsigned_bits(32);
        assert_eq!(r.lo, 0);
        assert_eq!(r.hi, (1i128 << 32) - 1);
    }

    #[test]
    fn boolean_and_enumeration_conventions() {
        assert_eq!(IntRange::boolean(), IntRange::new(0, 1));
        assert_eq!(IntRange::enumeration(3), IntRange::new(0, 2));
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_enumeration_rejected() {
        IntRange::enumeration(0);
    }

    #[test]
    fn subrange_is_reflexive_and_ordered() {
        let short = IntRange::signed_bits(16);
        let int = IntRange::signed_bits(32);
        assert!(short.is_subrange_of(&short));
        assert!(short.is_subrange_of(&int));
        assert!(!int.is_subrange_of(&short));
    }

    #[test]
    fn annotated_java_int_equals_annotated_c_unsigned() {
        // Paper §3.1: a Java int annotated "unsigned only" and a C unsigned
        // int annotated "<= 2^31-1" become equivalent.
        let annotated_java = IntRange::new(0, (1 << 31) - 1);
        let annotated_c = IntRange::new(0, (1 << 31) - 1);
        assert_eq!(annotated_java, annotated_c);
    }

    #[test]
    fn repertoire_ordering() {
        use Repertoire::*;
        assert!(Latin1.is_subrepertoire_of(&Unicode));
        assert!(!Unicode.is_subrepertoire_of(&Latin1));
        assert!(Ascii.is_subrepertoire_of(&Latin1));
        assert!(Ascii.is_subrepertoire_of(&Unicode));
        assert!(Custom("EBCDIC".into()).is_subrepertoire_of(&Custom("EBCDIC".into())));
        assert!(!Custom("EBCDIC".into()).is_subrepertoire_of(&Unicode));
        assert!(!Ascii.is_subrepertoire_of(&Custom("EBCDIC".into())));
    }

    #[test]
    fn real_precisions() {
        assert!(RealPrecision::SINGLE.fits_in(&RealPrecision::DOUBLE));
        assert!(!RealPrecision::DOUBLE.fits_in(&RealPrecision::SINGLE));
        assert!(RealPrecision::SINGLE.fits_in(&RealPrecision::SINGLE));
    }

    #[test]
    fn cardinality() {
        assert_eq!(IntRange::boolean().cardinality(), 2);
        assert_eq!(IntRange::signed_bits(8).cardinality(), 256);
    }

    #[test]
    fn range_display() {
        assert_eq!(IntRange::signed_bits(8).to_string(), "-128..=127");
    }
}
