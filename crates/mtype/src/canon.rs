//! Canonicalisation helpers backing the comparer's isomorphism rules.
//!
//! The paper (§4) extends the Amadio–Cardelli algorithm with isomorphism
//! rules: `Record` and `Choice` are associative and commutative, so
//! `Record(Integer, Record(Real, Character))` ≡
//! `Record(Character, Real, Integer)`. This module provides the
//! *flattening* (associativity) and *structural fingerprinting*
//! (a canonical sort key for commutativity) that the comparer combines
//! with coinduction.
//!
//! Both operations are **binder-transparent**: `Recursive` nodes are
//! where a μ-binder happened to be placed during lowering, and two
//! translations of the same declarations can legitimately cut their
//! cycles at different points (lowering order differs). Flattening
//! resolves through binders and stops only at *actual* cycles; the
//! fingerprint hashes the depth-bounded tree unfolding, which is
//! invariant under binder placement.

use std::collections::HashMap;

use crate::graph::{MtypeGraph, MtypeId};
use crate::kind::MtypeKind;

/// Depth (in structural constructors) to which [`fingerprint`] unfolds a
/// type. Types differing only below this depth collide — the comparer
/// then decides by full coinduction, so collisions cost time, not
/// soundness.
pub const FINGERPRINT_DEPTH: u32 = 12;

/// Flattens nested `Record`s under `id` (associativity) and drops `Unit`
/// children (unit elimination: `Record(τ, Unit) ≡ Record(τ)`), returning
/// the flattened child list. If `id` is not a Record it is returned as a
/// singleton.
///
/// Flattening resolves through `Recursive` binders; a Record reached
/// again *on the current flattening path* (a genuine cycle) is kept as a
/// leaf, so the operation is total on cyclic graphs.
///
/// ```
/// use mockingbird_mtype::{MtypeGraph, IntRange, RealPrecision, canon::flatten_record};
/// let mut g = MtypeGraph::new();
/// let i = g.integer(IntRange::boolean());
/// let r = g.real(RealPrecision::SINGLE);
/// let inner = g.record(vec![r, i]);
/// let u = g.unit();
/// let outer = g.record(vec![i, inner, u]);
/// assert_eq!(flatten_record(&g, outer), vec![i, r, i]);
/// ```
pub fn flatten_record(graph: &MtypeGraph, id: MtypeId) -> Vec<MtypeId> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    flatten_record_into(graph, id, &mut out, &mut path, true);
    out
}

/// As [`flatten_record`] but keeping `Unit` children (used when the
/// unit-elimination rule is disabled).
pub fn flatten_record_keep_units(graph: &MtypeGraph, id: MtypeId) -> Vec<MtypeId> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    flatten_record_into(graph, id, &mut out, &mut path, false);
    out
}

fn flatten_record_into(
    graph: &MtypeGraph,
    id: MtypeId,
    out: &mut Vec<MtypeId>,
    path: &mut Vec<MtypeId>,
    unit_elim: bool,
) {
    let rid = graph.resolve(id);
    match graph.kind(rid) {
        MtypeKind::Record(cs) if !path.contains(&rid) => {
            path.push(rid);
            for &c in cs.clone().iter() {
                flatten_record_into(graph, c, out, path, unit_elim);
            }
            path.pop();
        }
        MtypeKind::Unit if unit_elim => {}
        _ => out.push(id),
    }
}

/// Flattens nested `Choice`s under `id` (associativity of alternatives)
/// and deduplicates identical alternative ids. If `id` is not a Choice
/// it is returned as a singleton. Binder-transparent and cycle-safe like
/// [`flatten_record`].
pub fn flatten_choice(graph: &MtypeGraph, id: MtypeId) -> Vec<MtypeId> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    flatten_choice_into(graph, id, &mut out, &mut path);
    let mut seen = Vec::new();
    out.retain(|c| {
        if seen.contains(c) {
            false
        } else {
            seen.push(*c);
            true
        }
    });
    out
}

fn flatten_choice_into(
    graph: &MtypeGraph,
    id: MtypeId,
    out: &mut Vec<MtypeId>,
    path: &mut Vec<MtypeId>,
) {
    let rid = graph.resolve(id);
    match graph.kind(rid) {
        // Canonical list spines are opaque alternatives: their own
        // Unit/cons choice is the collection's encoding, not a set of
        // alternatives of the enclosing Choice.
        MtypeKind::Choice(cs)
            if !path.contains(&rid)
                && (path.is_empty() || list_element_type(graph, rid).is_none()) =>
        {
            path.push(rid);
            for &c in cs.clone().iter() {
                flatten_choice_into(graph, c, out, path);
            }
            path.pop();
        }
        _ => out.push(id),
    }
}

/// If the (resolved) node is the canonical list shape
/// `Choice(Unit, Record(elem, back))` (paper §3.2, Fig. 8), returns the
/// element type.
pub fn list_element_type(graph: &MtypeGraph, ty: MtypeId) -> Option<MtypeId> {
    let ty = graph.resolve(ty);
    let MtypeKind::Choice(alts) = graph.kind(ty) else {
        return None;
    };
    if alts.len() != 2 {
        return None;
    }
    let (first, second) = (alts[0], alts[1]);
    let cons = if matches!(graph.kind(graph.resolve(first)), MtypeKind::Unit) {
        second
    } else if matches!(graph.kind(graph.resolve(second)), MtypeKind::Unit) {
        first
    } else {
        return None;
    };
    let MtypeKind::Record(cell) = graph.kind(graph.resolve(cons)) else {
        return None;
    };
    if cell.len() != 2 {
        return None;
    }
    if graph.resolve(cell[1]) == ty {
        Some(cell[0])
    } else if graph.resolve(cell[0]) == ty {
        Some(cell[1])
    } else {
        None
    }
}

/// A structural fingerprint of the Mtype rooted at `id`: the hash of its
/// tree unfolding truncated at [`FINGERPRINT_DEPTH`] constructors.
///
/// Equivalent Mtypes (under the full isomorphism rule set — assoc, comm,
/// unit elimination, singleton-choice and unary-record collapse, and
/// *any* placement of recursive binders) receive equal fingerprints; the
/// converse does not hold (deep differences and hash collisions fall
/// through to the comparer's coinduction). Used as a canonical sort key
/// for commutative matching and as a fast rejection filter.
pub fn fingerprint(graph: &MtypeGraph, id: MtypeId) -> u64 {
    fingerprint_depth(graph, id, FINGERPRINT_DEPTH)
}

/// [`fingerprint`] with an explicit unfolding depth.
pub fn fingerprint_depth(graph: &MtypeGraph, id: MtypeId, depth: u32) -> u64 {
    let mut memo: HashMap<(MtypeId, u32), u64> = HashMap::new();
    let mut in_progress: Vec<(MtypeId, u32)> = Vec::new();
    let mut flats: HashMap<MtypeId, std::rc::Rc<Vec<MtypeId>>> = HashMap::new();
    fp(graph, id, depth, &mut memo, &mut in_progress, &mut flats)
}

fn flatten_memo(
    graph: &MtypeGraph,
    id: MtypeId,
    flats: &mut HashMap<MtypeId, std::rc::Rc<Vec<MtypeId>>>,
) -> std::rc::Rc<Vec<MtypeId>> {
    if let Some(v) = flats.get(&id) {
        return v.clone();
    }
    let v = std::rc::Rc::new(flatten_record(graph, id));
    flats.insert(id, v.clone());
    v
}

fn mix(h: u64, v: u64) -> u64 {
    // FNV-style mixing; deterministic across runs and platforms.
    (h ^ v).wrapping_mul(0x100_0000_01b3).rotate_left(17)
}

const DEPTH_CUTOFF_HASH: u64 = 0xD3E9_C07F;
const CYCLE_HASH: u64 = 0xBACC_0ED6;

fn fp(
    graph: &MtypeGraph,
    id: MtypeId,
    k: u32,
    memo: &mut HashMap<(MtypeId, u32), u64>,
    in_progress: &mut Vec<(MtypeId, u32)>,
    flats: &mut HashMap<MtypeId, std::rc::Rc<Vec<MtypeId>>>,
) -> u64 {
    let id = graph.resolve(id);
    if k == 0 {
        return DEPTH_CUTOFF_HASH;
    }
    if let Some(&h) = memo.get(&(id, k)) {
        return h;
    }
    if in_progress.contains(&(id, k)) {
        // Only reachable through same-depth transparent collapses
        // (non-contractive shapes); hash as an opaque cycle.
        return CYCLE_HASH;
    }
    in_progress.push((id, k));
    let h = match graph.kind(id) {
        MtypeKind::Integer(r) => mix(
            mix(1, r.lo as u64 ^ (r.lo >> 64) as u64),
            r.hi as u64 ^ (r.hi >> 64) as u64,
        ),
        MtypeKind::Character(rep) => {
            let mut h = 2u64;
            for b in format!("{rep}").bytes() {
                h = mix(h, b as u64);
            }
            h
        }
        MtypeKind::Real(p) => mix(mix(3, p.mantissa_bits as u64), p.exponent_bits as u64),
        MtypeKind::Unit => 4,
        MtypeKind::Dynamic => 5,
        MtypeKind::Record(_) => {
            // Hash the flattened children as an unordered multiset
            // (assoc + comm invariance). An empty record hashes like
            // Unit; a unary record hashes like its child at the same
            // depth (collapse invariance).
            let kids = flatten_memo(graph, id, flats);
            match kids.len() {
                0 => 4,
                1 => fp(graph, kids[0], k, memo, in_progress, flats),
                _ => {
                    let mut hashes: Vec<u64> = kids
                        .iter()
                        .map(|&c| fp(graph, c, k - 1, memo, in_progress, flats))
                        .collect();
                    hashes.sort_unstable();
                    let mut h = 6u64;
                    for x in hashes {
                        h = mix(h, x);
                    }
                    h
                }
            }
        }
        MtypeKind::Choice(_) => {
            let kids = flatten_choice(graph, id);
            if kids.len() == 1 {
                fp(graph, kids[0], k, memo, in_progress, flats)
            } else {
                let mut hashes: Vec<u64> = kids
                    .iter()
                    .map(|&c| fp(graph, c, k - 1, memo, in_progress, flats))
                    .collect();
                hashes.sort_unstable();
                let mut h = 7u64;
                for x in hashes {
                    h = mix(h, x);
                }
                h
            }
        }
        MtypeKind::Port(p) => {
            let inner = fp(graph, *p, k - 1, memo, in_progress, flats);
            mix(8, inner)
        }
        MtypeKind::Recursive(_) => unreachable!("resolve() removes binders"),
    };
    in_progress.pop();
    memo.insert((id, k), h);
    h
}

/// Per-kind node counts for the Mtype reachable from `root`; used by
/// mismatch diagnostics ("left has 3 Reals, right has 4").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MtypeSummary {
    /// Count of `Integer` nodes reachable.
    pub integers: usize,
    /// Count of `Character` nodes reachable.
    pub characters: usize,
    /// Count of `Real` nodes reachable.
    pub reals: usize,
    /// Count of `Unit` nodes reachable.
    pub units: usize,
    /// Count of `Record` nodes reachable.
    pub records: usize,
    /// Count of `Choice` nodes reachable.
    pub choices: usize,
    /// Count of `Recursive` binders reachable.
    pub recursives: usize,
    /// Count of `Port` nodes reachable.
    pub ports: usize,
    /// Count of `Dynamic` nodes reachable.
    pub dynamics: usize,
}

impl MtypeSummary {
    /// Computes the summary of the Mtype reachable from `root`.
    pub fn of(graph: &MtypeGraph, root: MtypeId) -> Self {
        let mut s = MtypeSummary::default();
        for id in graph.reachable(root) {
            match graph.kind(id) {
                MtypeKind::Integer(_) => s.integers += 1,
                MtypeKind::Character(_) => s.characters += 1,
                MtypeKind::Real(_) => s.reals += 1,
                MtypeKind::Unit => s.units += 1,
                MtypeKind::Record(_) => s.records += 1,
                MtypeKind::Choice(_) => s.choices += 1,
                MtypeKind::Recursive(_) => s.recursives += 1,
                MtypeKind::Port(_) => s.ports += 1,
                MtypeKind::Dynamic => s.dynamics += 1,
            }
        }
        s
    }

    /// Total number of reachable nodes counted.
    pub fn total(&self) -> usize {
        self.integers
            + self.characters
            + self.reals
            + self.units
            + self.records
            + self.choices
            + self.recursives
            + self.ports
            + self.dynamics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{IntRange, RealPrecision, Repertoire};

    #[test]
    fn flatten_is_identity_on_flat_records() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let r = g.record(vec![i, i]);
        assert_eq!(flatten_record(&g, r), vec![i, i]);
        assert_eq!(flatten_record(&g, i), vec![i]);
    }

    #[test]
    fn flatten_removes_units_entirely() {
        let mut g = MtypeGraph::new();
        let u = g.unit();
        let r = g.record(vec![u, u]);
        assert!(flatten_record(&g, r).is_empty());
        assert_eq!(flatten_record_keep_units(&g, r).len(), 2);
    }

    #[test]
    fn flatten_stops_at_list_spines() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let list = g.list_of(i);
        let r = g.record(vec![i, list]);
        // The list resolves to a Choice (not a Record), so it is a leaf.
        assert_eq!(flatten_record(&g, r), vec![i, list]);
    }

    #[test]
    fn flatten_resolves_through_binders() {
        // A binder wrapping a Record is transparent for flattening.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let r = g.real(RealPrecision::SINGLE);
        let inner = g.record(vec![i, r]);
        let wrapped = g.recursive(|_, _| inner);
        let outer = g.record(vec![i, wrapped]);
        assert_eq!(flatten_record(&g, outer), vec![i, i, r]);
    }

    #[test]
    fn flatten_keeps_genuine_cycles_as_leaves() {
        // Rec X. Record(Int, X): flattening X's body must not loop.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let rec = g.recursive(|g, me| g.record(vec![i, me]));
        let flat = flatten_record(&g, rec);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat[0], i);
        // The cycle leaf resolves back to the record body.
        assert_eq!(g.resolve(flat[1]), g.resolve(rec));
    }

    #[test]
    fn flatten_choice_dedupes() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let c1 = g.choice(vec![i, i]);
        assert_eq!(flatten_choice(&g, c1), vec![i]);
        let u = g.unit();
        let c2 = g.choice(vec![c1, u]);
        assert_eq!(flatten_choice(&g, c2), vec![i, u]);
    }

    #[test]
    fn fingerprint_invariant_under_assoc_comm() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let c = g.character(Repertoire::Unicode);
        let inner = g.record(vec![r, c]);
        let nested = g.record(vec![i, inner]);
        let flat = g.record(vec![c, r, i]);
        assert_eq!(fingerprint(&g, nested), fingerprint(&g, flat));
        let different = g.record(vec![c, r]);
        assert_ne!(fingerprint(&g, nested), fingerprint(&g, different));
    }

    #[test]
    fn fingerprint_alpha_invariant_for_cycles() {
        let mut g1 = MtypeGraph::new();
        let r1 = g1.real(RealPrecision::SINGLE);
        let l1 = g1.list_of(r1);

        let mut g2 = MtypeGraph::new();
        // Same type built with padding nodes first, so arena ids differ.
        let _pad = g2.integer(IntRange::boolean());
        let r2 = g2.real(RealPrecision::SINGLE);
        let l2 = g2.list_of(r2);

        assert_eq!(fingerprint(&g1, l1), fingerprint(&g2, l2));
    }

    #[test]
    fn fingerprint_invariant_under_binder_placement() {
        // Mutually recursive A = Record(Int, B), B = Record(Real, A),
        // built twice with the μ-binder on A first, then on B first.
        let build = |binder_on_a: bool| -> (MtypeGraph, MtypeId) {
            let mut g = MtypeGraph::new();
            let i = g.integer(IntRange::signed_bits(32));
            let r = g.real(RealPrecision::SINGLE);
            if binder_on_a {
                let a = g.recursive(|g, me_a| {
                    let b = g.record(vec![r, me_a]);
                    g.record(vec![i, b])
                });
                (g, a)
            } else {
                let b = g.recursive(|g, me_b| {
                    let a = g.record(vec![i, me_b]);
                    g.record(vec![r, a])
                });
                // A = Record(Int, B).
                let a = g.record(vec![i, b]);
                (g, a)
            }
        };
        let (g1, a1) = build(true);
        let (g2, a2) = build(false);
        assert_eq!(
            fingerprint(&g1, a1),
            fingerprint(&g2, a2),
            "fingerprints must not depend on where lowering cut the cycle"
        );
    }

    #[test]
    fn fingerprint_distinguishes_element_types() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let d = g.real(RealPrecision::DOUBLE);
        let lr = g.list_of(r);
        let ld = g.list_of(d);
        assert_ne!(fingerprint(&g, lr), fingerprint(&g, ld));
    }

    #[test]
    fn transparent_binder_hashes_like_body() {
        // Rec X. Int (X unused) fingerprints like plain Int.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let rec = g.recursive(|_, _| i);
        assert_eq!(fingerprint(&g, rec), fingerprint(&g, i));
    }

    #[test]
    fn unary_and_empty_collapse_invariance() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let unary = g.record(vec![i]);
        assert_eq!(fingerprint(&g, unary), fingerprint(&g, i));
        let u = g.unit();
        let empty = g.record(vec![]);
        assert_eq!(fingerprint(&g, empty), fingerprint(&g, u));
        let single_choice = g.choice(vec![i]);
        assert_eq!(fingerprint(&g, single_choice), fingerprint(&g, i));
    }

    #[test]
    fn summary_counts() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let list = g.list_of(point);
        let s = MtypeSummary::of(&g, list);
        assert_eq!(s.reals, 1); // hash-consed single Real node
        assert_eq!(s.records, 2); // point + cons cell
        assert_eq!(s.recursives, 1);
        assert_eq!(s.choices, 1);
        assert_eq!(s.units, 1);
        assert_eq!(s.total(), 6);
    }
}
