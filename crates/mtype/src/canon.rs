//! Canonicalisation helpers backing the comparer's isomorphism rules.
//!
//! The paper (§4) extends the Amadio–Cardelli algorithm with isomorphism
//! rules: `Record` and `Choice` are associative and commutative, so
//! `Record(Integer, Record(Real, Character))` ≡
//! `Record(Character, Real, Integer)`. This module provides the
//! *flattening* (associativity) and *structural fingerprinting*
//! (a canonical sort key for commutativity) that the comparer combines
//! with coinduction.
//!
//! Both operations are **binder-transparent**: `Recursive` nodes are
//! where a μ-binder happened to be placed during lowering, and two
//! translations of the same declarations can legitimately cut their
//! cycles at different points (lowering order differs). Flattening
//! resolves through binders and stops only at *actual* cycles; the
//! fingerprint hashes the depth-bounded tree unfolding, which is
//! invariant under binder placement.

use std::collections::HashMap;

use crate::graph::{MtypeGraph, MtypeId};
use crate::kind::MtypeKind;

/// Depth (in structural constructors) to which [`fingerprint`] unfolds a
/// type. Types differing only below this depth collide — the comparer
/// then decides by full coinduction, so collisions cost time, not
/// soundness.
pub const FINGERPRINT_DEPTH: u32 = 12;

/// Flattens nested `Record`s under `id` (associativity) and drops `Unit`
/// children (unit elimination: `Record(τ, Unit) ≡ Record(τ)`), returning
/// the flattened child list. If `id` is not a Record it is returned as a
/// singleton.
///
/// Flattening resolves through `Recursive` binders; a Record reached
/// again *on the current flattening path* (a genuine cycle) is kept as a
/// leaf, so the operation is total on cyclic graphs.
///
/// ```
/// use mockingbird_mtype::{MtypeGraph, IntRange, RealPrecision, canon::flatten_record};
/// let mut g = MtypeGraph::new();
/// let i = g.integer(IntRange::boolean());
/// let r = g.real(RealPrecision::SINGLE);
/// let inner = g.record(vec![r, i]);
/// let u = g.unit();
/// let outer = g.record(vec![i, inner, u]);
/// assert_eq!(flatten_record(&g, outer), vec![i, r, i]);
/// ```
pub fn flatten_record(graph: &MtypeGraph, id: MtypeId) -> Vec<MtypeId> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    flatten_record_into(graph, id, &mut out, &mut path, true);
    out
}

/// As [`flatten_record`] but keeping `Unit` children (used when the
/// unit-elimination rule is disabled).
pub fn flatten_record_keep_units(graph: &MtypeGraph, id: MtypeId) -> Vec<MtypeId> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    flatten_record_into(graph, id, &mut out, &mut path, false);
    out
}

fn flatten_record_into(
    graph: &MtypeGraph,
    id: MtypeId,
    out: &mut Vec<MtypeId>,
    path: &mut Vec<MtypeId>,
    unit_elim: bool,
) {
    let rid = graph.resolve(id);
    match graph.kind(rid) {
        MtypeKind::Record(cs) if !path.contains(&rid) => {
            path.push(rid);
            for &c in cs.clone().iter() {
                flatten_record_into(graph, c, out, path, unit_elim);
            }
            path.pop();
        }
        MtypeKind::Unit if unit_elim => {}
        _ => out.push(id),
    }
}

/// Flattens nested `Choice`s under `id` (associativity of alternatives)
/// and deduplicates identical alternative ids. If `id` is not a Choice
/// it is returned as a singleton. Binder-transparent and cycle-safe like
/// [`flatten_record`].
pub fn flatten_choice(graph: &MtypeGraph, id: MtypeId) -> Vec<MtypeId> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    flatten_choice_into(graph, id, &mut out, &mut path);
    let mut seen = Vec::new();
    out.retain(|c| {
        if seen.contains(c) {
            false
        } else {
            seen.push(*c);
            true
        }
    });
    out
}

fn flatten_choice_into(
    graph: &MtypeGraph,
    id: MtypeId,
    out: &mut Vec<MtypeId>,
    path: &mut Vec<MtypeId>,
) {
    let rid = graph.resolve(id);
    match graph.kind(rid) {
        // Canonical list spines are opaque alternatives: their own
        // Unit/cons choice is the collection's encoding, not a set of
        // alternatives of the enclosing Choice.
        MtypeKind::Choice(cs)
            if !path.contains(&rid)
                && (path.is_empty() || list_element_type(graph, rid).is_none()) =>
        {
            path.push(rid);
            for &c in cs.clone().iter() {
                flatten_choice_into(graph, c, out, path);
            }
            path.pop();
        }
        _ => out.push(id),
    }
}

/// If the (resolved) node is the canonical list shape
/// `Choice(Unit, Record(elem, back))` (paper §3.2, Fig. 8), returns the
/// element type.
pub fn list_element_type(graph: &MtypeGraph, ty: MtypeId) -> Option<MtypeId> {
    let ty = graph.resolve(ty);
    let MtypeKind::Choice(alts) = graph.kind(ty) else {
        return None;
    };
    if alts.len() != 2 {
        return None;
    }
    let (first, second) = (alts[0], alts[1]);
    let cons = if matches!(graph.kind(graph.resolve(first)), MtypeKind::Unit) {
        second
    } else if matches!(graph.kind(graph.resolve(second)), MtypeKind::Unit) {
        first
    } else {
        return None;
    };
    let MtypeKind::Record(cell) = graph.kind(graph.resolve(cons)) else {
        return None;
    };
    if cell.len() != 2 {
        return None;
    }
    if graph.resolve(cell[1]) == ty {
        Some(cell[0])
    } else if graph.resolve(cell[0]) == ty {
        Some(cell[1])
    } else {
        None
    }
}

/// A structural fingerprint of the Mtype rooted at `id`: the hash of its
/// tree unfolding truncated at [`FINGERPRINT_DEPTH`] constructors.
///
/// Equivalent Mtypes (under the full isomorphism rule set — assoc, comm,
/// unit elimination, singleton-choice and unary-record collapse, and
/// *any* placement of recursive binders) receive equal fingerprints; the
/// converse does not hold (deep differences and hash collisions fall
/// through to the comparer's coinduction). Used as a canonical sort key
/// for commutative matching and as a fast rejection filter.
pub fn fingerprint(graph: &MtypeGraph, id: MtypeId) -> u64 {
    fingerprint_depth(graph, id, FINGERPRINT_DEPTH)
}

/// [`fingerprint`] with an explicit unfolding depth.
pub fn fingerprint_depth(graph: &MtypeGraph, id: MtypeId, depth: u32) -> u64 {
    let mut memo: HashMap<(MtypeId, u32), u64> = HashMap::new();
    let mut in_progress: Vec<(MtypeId, u32)> = Vec::new();
    let mut flats: HashMap<MtypeId, std::rc::Rc<Vec<MtypeId>>> = HashMap::new();
    fp(graph, id, depth, &mut memo, &mut in_progress, &mut flats)
}

fn flatten_memo(
    graph: &MtypeGraph,
    id: MtypeId,
    flats: &mut HashMap<MtypeId, std::rc::Rc<Vec<MtypeId>>>,
) -> std::rc::Rc<Vec<MtypeId>> {
    if let Some(v) = flats.get(&id) {
        return v.clone();
    }
    let v = std::rc::Rc::new(flatten_record(graph, id));
    flats.insert(id, v.clone());
    v
}

fn mix(h: u64, v: u64) -> u64 {
    // FNV-style mixing; deterministic across runs and platforms.
    (h ^ v).wrapping_mul(0x100_0000_01b3).rotate_left(17)
}

const DEPTH_CUTOFF_HASH: u64 = 0xD3E9_C07F;
const CYCLE_HASH: u64 = 0xBACC_0ED6;

fn fp(
    graph: &MtypeGraph,
    id: MtypeId,
    k: u32,
    memo: &mut HashMap<(MtypeId, u32), u64>,
    in_progress: &mut Vec<(MtypeId, u32)>,
    flats: &mut HashMap<MtypeId, std::rc::Rc<Vec<MtypeId>>>,
) -> u64 {
    let id = graph.resolve(id);
    if k == 0 {
        return DEPTH_CUTOFF_HASH;
    }
    if let Some(&h) = memo.get(&(id, k)) {
        return h;
    }
    if in_progress.contains(&(id, k)) {
        // Only reachable through same-depth transparent collapses
        // (non-contractive shapes); hash as an opaque cycle.
        return CYCLE_HASH;
    }
    in_progress.push((id, k));
    let h = match graph.kind(id) {
        MtypeKind::Integer(r) => mix(
            mix(1, r.lo as u64 ^ (r.lo >> 64) as u64),
            r.hi as u64 ^ (r.hi >> 64) as u64,
        ),
        MtypeKind::Character(rep) => {
            let mut h = 2u64;
            for b in format!("{rep}").bytes() {
                h = mix(h, b as u64);
            }
            h
        }
        MtypeKind::Real(p) => mix(mix(3, p.mantissa_bits as u64), p.exponent_bits as u64),
        MtypeKind::Unit => 4,
        MtypeKind::Dynamic => 5,
        MtypeKind::Record(_) => {
            // Hash the flattened children as an unordered multiset
            // (assoc + comm invariance). An empty record hashes like
            // Unit; a unary record hashes like its child at the same
            // depth (collapse invariance).
            let kids = flatten_memo(graph, id, flats);
            match kids.len() {
                0 => 4,
                1 => fp(graph, kids[0], k, memo, in_progress, flats),
                _ => {
                    let mut hashes: Vec<u64> = kids
                        .iter()
                        .map(|&c| fp(graph, c, k - 1, memo, in_progress, flats))
                        .collect();
                    hashes.sort_unstable();
                    let mut h = 6u64;
                    for x in hashes {
                        h = mix(h, x);
                    }
                    h
                }
            }
        }
        MtypeKind::Choice(_) => {
            let kids = flatten_choice(graph, id);
            if kids.len() == 1 {
                fp(graph, kids[0], k, memo, in_progress, flats)
            } else {
                let mut hashes: Vec<u64> = kids
                    .iter()
                    .map(|&c| fp(graph, c, k - 1, memo, in_progress, flats))
                    .collect();
                hashes.sort_unstable();
                let mut h = 7u64;
                for x in hashes {
                    h = mix(h, x);
                }
                h
            }
        }
        MtypeKind::Port(p) => {
            let inner = fp(graph, *p, k - 1, memo, in_progress, flats);
            mix(8, inner)
        }
        MtypeKind::Recursive(_) => unreachable!("resolve() removes binders"),
    };
    in_progress.pop();
    memo.insert((id, k), h);
    h
}

/// Which isomorphism rules a [`canonical_fingerprint_opts`] run is allowed
/// to normalise away. Mirrors the structural flags of the comparer's
/// `RuleSet`: a normalisation may only be applied when the corresponding
/// rule is on, otherwise two types the rule set *distinguishes* (say,
/// `Record(Int, Real)` vs `Record(Real, Int)` without commutativity)
/// would collide — and a content-addressed cache keyed by the fingerprint
/// would serve the wrong verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CanonOpts {
    /// Flatten nested `Record`s/`Choice`s (associativity).
    pub assoc: bool,
    /// Hash `Record`/`Choice` children as an unordered multiset
    /// (commutativity).
    pub comm: bool,
    /// Drop `Unit` children of flattened `Record`s (only effective
    /// together with `assoc`, matching the comparer's flatten view).
    pub unit_elim: bool,
    /// Collapse single-alternative `Choice`s into their alternative.
    pub singleton_choice: bool,
}

impl CanonOpts {
    /// All normalisations on — matches `RuleSet::full()`.
    pub const fn full() -> Self {
        Self {
            assoc: true,
            comm: true,
            unit_elim: true,
            singleton_choice: true,
        }
    }

    /// No normalisation beyond binder transparency — matches
    /// `RuleSet::strict()`.
    pub const fn strict() -> Self {
        Self {
            assoc: false,
            comm: false,
            unit_elim: false,
            singleton_choice: false,
        }
    }
}

impl Default for CanonOpts {
    fn default() -> Self {
        Self::full()
    }
}

/// A *canonical* fingerprint of the Mtype rooted at `id` under the full
/// isomorphism rule set: a 128-bit hash of the entire (possibly cyclic)
/// structure, identical across graphs and insensitive to provenance
/// labels and arena layout. See [`canonical_fingerprint_opts`].
pub fn canonical_fingerprint(graph: &MtypeGraph, id: MtypeId) -> u128 {
    canonical_fingerprint_opts(graph, id, &CanonOpts::full())
}

/// [`canonical_fingerprint`] relative to an explicit rule-option set.
///
/// Unlike [`fingerprint`], which truncates at [`FINGERPRINT_DEPTH`] and is
/// only a fast *rejection* filter, this hashes the full graph (see
/// [`Canonizer`] for the algorithm), so the result is invariant under
/// arena ids, labels and μ-binder placement. Two types with equal
/// canonical fingerprints under options `O` are equivalent under any rule
/// set whose isomorphism rules include `O` — up to 128-bit hash
/// collisions, which content-addressed consumers accept the same way any
/// content store does.
///
/// Conservative misses are possible and harmless: structurally different
/// cuttings of the same infinite unfolding (when hash-consing did not
/// merge them) hash differently, and disabled options leave
/// rule-sanctioned variants distinct.
pub fn canonical_fingerprint_opts(graph: &MtypeGraph, id: MtypeId, opts: &CanonOpts) -> u128 {
    Canonizer::new(graph, *opts).fingerprint(id)
}

const CTAG_INTEGER: u128 = 0xA11C_E001;
const CTAG_CHARACTER: u128 = 0xA11C_E002;
const CTAG_REAL: u128 = 0xA11C_E003;
const CTAG_UNIT: u128 = 0xA11C_E004;
const CTAG_DYNAMIC: u128 = 0xA11C_E005;
const CTAG_RECORD: u128 = 0xA11C_E006;
const CTAG_CHOICE: u128 = 0xA11C_E007;
const CTAG_PORT: u128 = 0xA11C_E008;
/// Fallback value for references the chase could not ground (only
/// reachable through non-contractive shapes like a cycle made purely of
/// unary records); deterministic, never a soundness hazard.
const CTAG_OPAQUE: u128 = 0xA11C_E00A;

/// Deterministic, platform-independent 128-bit mixing (two 64-bit lanes
/// with cross-lane rotation; not cryptographic, but avalanche enough for
/// content addressing).
fn mix128(h: u128, v: u128) -> u128 {
    const K0: u64 = 0x9E37_79B9_7F4A_7C15;
    const K1: u64 = 0xC2B2_AE3D_27D4_EB4F;
    let a = (h as u64) ^ (v as u64).wrapping_mul(K0);
    let b = ((h >> 64) as u64) ^ ((v >> 64) as u64).wrapping_mul(K1);
    let a2 = (a ^ b.rotate_left(29)).wrapping_mul(K1);
    let b2 = (b ^ a.rotate_left(13)).wrapping_mul(K0);
    ((b2 as u128) << 64) | (a2 as u128)
}

/// A normal-form reference produced by collapse-chasing: either a
/// synthetic `Unit` (an empty record normalised away with nothing left to
/// point at) or a *terminal* node the active options cannot collapse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NfRef {
    Unit,
    Node(MtypeId),
}

/// Incremental canonical-fingerprint engine over one graph.
///
/// The algorithm runs in near-linear time on shared, cyclic graphs
/// (the naive "hash the unfolding" scheme re-expands shared children once
/// per path and is exponential on mutually recursive corpora):
///
/// 1. **Collapse-chase** every node to a terminal: binders are resolved,
///    unary records, singleton choices and empty records are chased
///    through per the active [`CanonOpts`], so rule-collapsible wrappers
///    never contribute to a hash.
/// 2. **Condense** the reachable subgraph into strongly connected
///    components (iterative Tarjan over resolved child edges).
/// 3. Hash SCCs bottom-up. Acyclic nodes hash directly from their
///    children's final fingerprints. A cyclic SCC runs a fixed-point
///    iteration: every member starts from a local signature and is
///    re-hashed `|SCC| + 1` rounds, each round folding in the previous
///    round's member values (and the final values of nodes below the
///    SCC). Bisimilar members of isomorphic SCCs stay equal at every
///    round, so equal types in different arenas get equal fingerprints.
///
/// `Record`/`Choice` children are flattened under associativity with an
/// SCC guard (a nested record in the *same* SCC is a genuine cycle and
/// stays a leaf), sorted under commutativity, and unit-eliminated per the
/// options — mirroring [`flatten_record`]/[`flatten_choice`] which the
/// comparer itself uses.
///
/// The engine is incremental: fingerprints, chases and flattened views
/// are memoised, so fingerprinting many roots of one graph shares all
/// common substructure. The comparer keeps one `Canonizer` per side
/// precisely for that reason.
pub struct Canonizer<'g> {
    graph: &'g MtypeGraph,
    opts: CanonOpts,
    /// Final fingerprints, keyed by resolved node id.
    fps: HashMap<MtypeId, u128>,
    /// Collapse-chase memo, keyed by resolved node id.
    chased: HashMap<MtypeId, NfRef>,
    /// Ids currently being chased (cuts non-contractive chase cycles).
    chasing: Vec<MtypeId>,
    /// Bumped whenever a chase hits the in-progress guard; results
    /// computed under a guard hit are order-dependent and not memoised.
    chase_taint: u64,
    /// SCC index of every resolved node processed so far.
    scc: HashMap<MtypeId, usize>,
    scc_count: usize,
    /// Flattened (or, without assoc, chased) child views of terminals.
    flats: HashMap<MtypeId, std::rc::Rc<Vec<NfRef>>>,
}

impl<'g> Canonizer<'g> {
    /// A fresh engine for `graph` under `opts`. The graph must not change
    /// while the engine is alive (the shared borrow enforces this).
    pub fn new(graph: &'g MtypeGraph, opts: CanonOpts) -> Self {
        Self {
            graph,
            opts,
            fps: HashMap::new(),
            chased: HashMap::new(),
            chasing: Vec::new(),
            chase_taint: 0,
            scc: HashMap::new(),
            scc_count: 0,
            flats: HashMap::new(),
        }
    }

    /// The canonical fingerprint of the type rooted at `id`, computing
    /// (and memoising) fingerprints for everything reachable from it.
    pub fn fingerprint(&mut self, id: MtypeId) -> u128 {
        match self.chase(id) {
            NfRef::Unit => CTAG_UNIT,
            NfRef::Node(t) => {
                if let Some(&h) = self.fps.get(&t) {
                    return h;
                }
                self.compute_from(t);
                self.fps.get(&t).copied().unwrap_or(CTAG_OPAQUE)
            }
        }
    }

    /// Chases `id` through everything the options collapse: binders
    /// (always), unary and empty records (assoc/unit-elim), singleton
    /// choices (singleton-choice, deduplicating alternatives under
    /// assoc). Returns the terminal the hash will be attributed to.
    fn chase(&mut self, id: MtypeId) -> NfRef {
        let rid = self.graph.resolve(id);
        if let Some(&nf) = self.chased.get(&rid) {
            return nf;
        }
        if self.chasing.contains(&rid) {
            // Non-contractive collapse cycle (e.g. mutually unary
            // records): cut it here, do not memoise under a guard hit.
            self.chase_taint += 1;
            return NfRef::Node(rid);
        }
        let taint_before = self.chase_taint;
        let nf = match self.graph.kind(rid) {
            MtypeKind::Record(cs) if self.opts.assoc => {
                let cs = cs.clone();
                self.chasing.push(rid);
                let eff: Vec<MtypeId> = if self.opts.unit_elim {
                    cs.iter()
                        .copied()
                        .filter(|&c| !self.chases_to_unit(c))
                        .collect()
                } else {
                    cs
                };
                let nf = match eff.len() {
                    0 if self.opts.unit_elim => NfRef::Unit,
                    1 => self.chase(eff[0]),
                    _ => NfRef::Node(rid),
                };
                self.chasing.pop();
                nf
            }
            MtypeKind::Choice(cs) if self.opts.singleton_choice => {
                let mut alts: Vec<MtypeId> = cs.iter().map(|&c| self.graph.resolve(c)).collect();
                if self.opts.assoc {
                    let mut seen = Vec::new();
                    alts.retain(|c| {
                        if seen.contains(c) {
                            false
                        } else {
                            seen.push(*c);
                            true
                        }
                    });
                }
                if alts.len() == 1 {
                    self.chasing.push(rid);
                    let nf = self.chase(alts[0]);
                    self.chasing.pop();
                    nf
                } else {
                    NfRef::Node(rid)
                }
            }
            _ => NfRef::Node(rid),
        };
        if self.chase_taint == taint_before {
            self.chased.insert(rid, nf);
        }
        nf
    }

    fn chases_to_unit(&mut self, id: MtypeId) -> bool {
        match self.chase(id) {
            NfRef::Unit => true,
            NfRef::Node(t) => matches!(self.graph.kind(t), MtypeKind::Unit),
        }
    }

    /// Resolved child edges as the condensation sees them (pre-chase:
    /// collapsible wrappers are ordinary pass-through nodes and do not
    /// change which nodes are mutually reachable).
    fn raw_children(&self, v: MtypeId) -> Vec<MtypeId> {
        match self.graph.kind(v) {
            MtypeKind::Record(cs) | MtypeKind::Choice(cs) => {
                cs.iter().map(|&c| self.graph.resolve(c)).collect()
            }
            MtypeKind::Port(p) => vec![self.graph.resolve(*p)],
            _ => Vec::new(),
        }
    }

    /// Iterative Tarjan from `root` over nodes without a final
    /// fingerprint; pops SCCs in dependency order and hashes each as it
    /// completes (previously fingerprinted nodes act as external leaves).
    fn compute_from(&mut self, root: MtypeId) {
        if self.fps.contains_key(&root) {
            return;
        }
        let mut index: HashMap<MtypeId, usize> = HashMap::new();
        let mut low: HashMap<MtypeId, usize> = HashMap::new();
        let mut on_stack: HashMap<MtypeId, ()> = HashMap::new();
        let mut stack: Vec<MtypeId> = Vec::new();
        let mut next_index = 0usize;
        // (node, resolved children, next child to visit)
        let mut frames: Vec<(MtypeId, Vec<MtypeId>, usize)> = Vec::new();

        index.insert(root, next_index);
        low.insert(root, next_index);
        next_index += 1;
        stack.push(root);
        on_stack.insert(root, ());
        frames.push((root, self.raw_children(root), 0));

        enum Step {
            Descend(MtypeId),
            Finish(MtypeId),
        }
        loop {
            let step = {
                let Some(top) = frames.last_mut() else { break };
                if top.2 < top.1.len() {
                    let w = top.1[top.2];
                    top.2 += 1;
                    if self.fps.contains_key(&w) {
                        continue; // finished in an earlier run: a leaf
                    }
                    if let Some(&wi) = index.get(&w) {
                        if on_stack.contains_key(&w) {
                            let v = top.0;
                            if wi < low[&v] {
                                low.insert(v, wi);
                            }
                        }
                        continue;
                    }
                    Step::Descend(w)
                } else {
                    Step::Finish(top.0)
                }
            };
            match step {
                Step::Descend(w) => {
                    index.insert(w, next_index);
                    low.insert(w, next_index);
                    next_index += 1;
                    stack.push(w);
                    on_stack.insert(w, ());
                    frames.push((w, self.raw_children(w), 0));
                }
                Step::Finish(v) => {
                    frames.pop();
                    if low[&v] == index[&v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack.remove(&w);
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        self.finish_scc(comp);
                    }
                    if let Some(parent) = frames.last() {
                        let pv = parent.0;
                        if low[&v] < low[&pv] {
                            let lv = low[&v];
                            low.insert(pv, lv);
                        }
                    }
                }
            }
        }
    }

    /// Hashes one completed SCC. Everything below it already has final
    /// fingerprints; members of a cyclic SCC are iterated to a fixed
    /// point together.
    fn finish_scc(&mut self, comp: Vec<MtypeId>) {
        let scc_id = self.scc_count;
        self.scc_count += 1;
        for &m in &comp {
            self.scc.insert(m, scc_id);
        }
        // Only terminals get fingerprints; collapsed wrappers chase to
        // their terminal and never appear as hash inputs.
        let terms: Vec<MtypeId> = comp
            .iter()
            .copied()
            .filter(|&m| self.chase(m) == NfRef::Node(m))
            .collect();
        if terms.is_empty() {
            return;
        }
        let cyclic = comp.len() > 1 || self.raw_children(comp[0]).contains(&comp[0]);
        if !cyclic {
            let t = terms[0];
            let v = self.node_value(t);
            self.fps.insert(t, v);
            return;
        }
        // Compile each member's hashing recipe once — child slots are
        // either final fingerprints (below the SCC) or positions of
        // fellow members — so the fixed-point rounds run over plain
        // vectors with no map lookups.
        enum Slot {
            Fixed(u128),
            Member(usize),
        }
        enum Recipe {
            Port(Slot),
            Kids { tag: u128, slots: Vec<Slot> },
        }
        let pos: HashMap<MtypeId, usize> = terms.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let compile = |this: &mut Self, nf: NfRef| match nf {
            NfRef::Unit => Slot::Fixed(CTAG_UNIT),
            NfRef::Node(x) => match this.fps.get(&x) {
                Some(&h) => Slot::Fixed(h),
                None => match pos.get(&x) {
                    Some(&i) => Slot::Member(i),
                    None => Slot::Fixed(CTAG_OPAQUE),
                },
            },
        };
        let recipes: Vec<Recipe> = terms
            .iter()
            .map(|&t| match self.graph.kind(t) {
                MtypeKind::Port(p) => {
                    let c = self.chase(*p);
                    Recipe::Port(compile(self, c))
                }
                MtypeKind::Record(_) => {
                    let kids = self.kids(t);
                    Recipe::Kids {
                        tag: CTAG_RECORD,
                        slots: kids.iter().map(|&k| compile(self, k)).collect(),
                    }
                }
                MtypeKind::Choice(_) => {
                    let kids = self.kids(t);
                    Recipe::Kids {
                        tag: CTAG_CHOICE,
                        slots: kids.iter().map(|&k| compile(self, k)).collect(),
                    }
                }
                // Childless kinds are never part of a cycle.
                _ => Recipe::Kids {
                    tag: self.node_value(t),
                    slots: Vec::new(),
                },
            })
            .collect();
        let slot_val = |s: &Slot, cur: &[u128]| match *s {
            Slot::Fixed(h) => h,
            Slot::Member(i) => cur[i],
        };
        let mut cur: Vec<u128> = terms.iter().map(|&t| self.sig(t)).collect();
        let mut next = vec![0u128; terms.len()];
        let mut vals: Vec<u128> = Vec::new();
        // |terms| + 1 rounds: partition refinement over the SCC settles
        // within |terms| rounds; folding the previous value into the next
        // (`mix128(cur, …)`) keeps separations monotone.
        for _ in 0..terms.len() + 1 {
            for (i, r) in recipes.iter().enumerate() {
                let v = match r {
                    Recipe::Port(s) => mix128(CTAG_PORT, slot_val(s, &cur)),
                    Recipe::Kids { tag, slots } => {
                        vals.clear();
                        vals.extend(slots.iter().map(|s| slot_val(s, &cur)));
                        if self.opts.comm {
                            vals.sort_unstable();
                        }
                        let mut h = mix128(*tag, slots.len() as u128);
                        for &x in &vals {
                            h = mix128(h, x);
                        }
                        h
                    }
                };
                next[i] = mix128(cur[i], v);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        for (i, &t) in terms.iter().enumerate() {
            self.fps.insert(t, cur[i]);
        }
    }

    /// The zeroth fixed-point approximation: a child-free local
    /// signature. Scalars use their final value outright.
    fn sig(&mut self, t: MtypeId) -> u128 {
        match self.graph.kind(t) {
            MtypeKind::Record(_) => mix128(CTAG_RECORD, self.kids(t).len() as u128),
            MtypeKind::Choice(_) => mix128(CTAG_CHOICE, self.kids(t).len() as u128),
            MtypeKind::Port(_) => CTAG_PORT,
            _ => self.node_value(t),
        }
    }

    /// The flattened (assoc) or chased (no assoc) child view of a
    /// terminal `Record`/`Choice`, memoised.
    fn kids(&mut self, t: MtypeId) -> std::rc::Rc<Vec<NfRef>> {
        if let Some(k) = self.flats.get(&t) {
            return k.clone();
        }
        let k = match self.graph.kind(t) {
            MtypeKind::Record(cs) => {
                if self.opts.assoc {
                    return self.flat_record(t);
                }
                let cs = cs.clone();
                std::rc::Rc::new(cs.iter().map(|&c| self.chase(c)).collect::<Vec<_>>())
            }
            MtypeKind::Choice(cs) => {
                if self.opts.assoc {
                    return self.flat_choice(t);
                }
                let cs = cs.clone();
                std::rc::Rc::new(cs.iter().map(|&c| self.chase(c)).collect::<Vec<_>>())
            }
            _ => unreachable!("kids() is only called on Records and Choices"),
        };
        self.flats.insert(t, k.clone());
        k
    }

    /// Associative record flattening with an SCC guard: a nested record
    /// in a *different* SCC is spliced in (it sits strictly below in the
    /// condensation, so this terminates); one in the same SCC is a
    /// genuine cycle and stays a leaf. Unit children drop per the
    /// options. Mirrors [`flatten_record`]'s path-guard view.
    fn flat_record(&mut self, m: MtypeId) -> std::rc::Rc<Vec<NfRef>> {
        if let Some(k) = self.flats.get(&m) {
            return k.clone();
        }
        let MtypeKind::Record(cs) = self.graph.kind(m) else {
            unreachable!("flat_record on a non-Record");
        };
        let cs = cs.clone();
        let mut out: Vec<NfRef> = Vec::with_capacity(cs.len());
        for &c in &cs {
            match self.chase(c) {
                NfRef::Unit => {
                    if !self.opts.unit_elim {
                        out.push(NfRef::Unit);
                    }
                }
                NfRef::Node(t) => {
                    if self.opts.unit_elim && matches!(self.graph.kind(t), MtypeKind::Unit) {
                        continue;
                    }
                    if matches!(self.graph.kind(t), MtypeKind::Record(_))
                        && self.scc.get(&t) != self.scc.get(&m)
                    {
                        let inner = self.flat_record(t);
                        out.extend(inner.iter().copied());
                    } else {
                        out.push(NfRef::Node(t));
                    }
                }
            }
        }
        let k = std::rc::Rc::new(out);
        self.flats.insert(m, k.clone());
        k
    }

    /// Associative choice flattening (same SCC guard as
    /// [`Self::flat_record`]); canonical list spines stay opaque
    /// alternatives and alternatives are deduplicated.
    fn flat_choice(&mut self, m: MtypeId) -> std::rc::Rc<Vec<NfRef>> {
        if let Some(k) = self.flats.get(&m) {
            return k.clone();
        }
        let MtypeKind::Choice(cs) = self.graph.kind(m) else {
            unreachable!("flat_choice on a non-Choice");
        };
        let cs = cs.clone();
        let mut out: Vec<NfRef> = Vec::with_capacity(cs.len());
        for &c in &cs {
            match self.chase(c) {
                NfRef::Unit => out.push(NfRef::Unit),
                NfRef::Node(t) => {
                    if matches!(self.graph.kind(t), MtypeKind::Choice(_))
                        && self.scc.get(&t) != self.scc.get(&m)
                        && list_element_type(self.graph, t).is_none()
                    {
                        let inner = self.flat_choice(t);
                        out.extend(inner.iter().copied());
                    } else {
                        out.push(NfRef::Node(t));
                    }
                }
            }
        }
        let mut seen: Vec<NfRef> = Vec::new();
        out.retain(|r| {
            if seen.contains(r) {
                false
            } else {
                seen.push(*r);
                true
            }
        });
        let k = std::rc::Rc::new(out);
        self.flats.insert(m, k.clone());
        k
    }

    /// Hashes one acyclic terminal from its children's final
    /// fingerprints (cyclic SCCs compile recipes instead — see
    /// [`Self::finish_scc`]).
    fn node_value(&mut self, t: MtypeId) -> u128 {
        match self.graph.kind(t) {
            MtypeKind::Integer(r) => mix128(mix128(CTAG_INTEGER, r.lo as u128), r.hi as u128),
            MtypeKind::Character(rep) => {
                let mut h = CTAG_CHARACTER;
                for b in format!("{rep}").bytes() {
                    h = mix128(h, u128::from(b));
                }
                h
            }
            MtypeKind::Real(p) => mix128(
                mix128(CTAG_REAL, u128::from(p.mantissa_bits)),
                u128::from(p.exponent_bits),
            ),
            MtypeKind::Unit => CTAG_UNIT,
            MtypeKind::Dynamic => CTAG_DYNAMIC,
            MtypeKind::Port(p) => {
                let c = self.chase(*p);
                let v = self.refval(c);
                mix128(CTAG_PORT, v)
            }
            MtypeKind::Record(_) => {
                let kids = self.kids(t);
                self.kids_value(CTAG_RECORD, &kids)
            }
            MtypeKind::Choice(_) => {
                let kids = self.kids(t);
                self.kids_value(CTAG_CHOICE, &kids)
            }
            MtypeKind::Recursive(_) => unreachable!("resolve() removes binders"),
        }
    }

    fn kids_value(&mut self, tag: u128, kids: &[NfRef]) -> u128 {
        let mut vals: Vec<u128> = kids.iter().map(|&k| self.refval(k)).collect();
        if self.opts.comm {
            vals.sort_unstable();
        }
        let mut h = mix128(tag, kids.len() as u128);
        for v in vals {
            h = mix128(h, v);
        }
        h
    }

    fn refval(&self, nf: NfRef) -> u128 {
        match nf {
            NfRef::Unit => CTAG_UNIT,
            NfRef::Node(t) => self.fps.get(&t).copied().unwrap_or(CTAG_OPAQUE),
        }
    }
}

/// Per-kind node counts for the Mtype reachable from `root`; used by
/// mismatch diagnostics ("left has 3 Reals, right has 4").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MtypeSummary {
    /// Count of `Integer` nodes reachable.
    pub integers: usize,
    /// Count of `Character` nodes reachable.
    pub characters: usize,
    /// Count of `Real` nodes reachable.
    pub reals: usize,
    /// Count of `Unit` nodes reachable.
    pub units: usize,
    /// Count of `Record` nodes reachable.
    pub records: usize,
    /// Count of `Choice` nodes reachable.
    pub choices: usize,
    /// Count of `Recursive` binders reachable.
    pub recursives: usize,
    /// Count of `Port` nodes reachable.
    pub ports: usize,
    /// Count of `Dynamic` nodes reachable.
    pub dynamics: usize,
}

impl MtypeSummary {
    /// Computes the summary of the Mtype reachable from `root`.
    pub fn of(graph: &MtypeGraph, root: MtypeId) -> Self {
        let mut s = MtypeSummary::default();
        for id in graph.reachable(root) {
            match graph.kind(id) {
                MtypeKind::Integer(_) => s.integers += 1,
                MtypeKind::Character(_) => s.characters += 1,
                MtypeKind::Real(_) => s.reals += 1,
                MtypeKind::Unit => s.units += 1,
                MtypeKind::Record(_) => s.records += 1,
                MtypeKind::Choice(_) => s.choices += 1,
                MtypeKind::Recursive(_) => s.recursives += 1,
                MtypeKind::Port(_) => s.ports += 1,
                MtypeKind::Dynamic => s.dynamics += 1,
            }
        }
        s
    }

    /// Total number of reachable nodes counted.
    pub fn total(&self) -> usize {
        self.integers
            + self.characters
            + self.reals
            + self.units
            + self.records
            + self.choices
            + self.recursives
            + self.ports
            + self.dynamics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{IntRange, RealPrecision, Repertoire};

    #[test]
    fn flatten_is_identity_on_flat_records() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let r = g.record(vec![i, i]);
        assert_eq!(flatten_record(&g, r), vec![i, i]);
        assert_eq!(flatten_record(&g, i), vec![i]);
    }

    #[test]
    fn flatten_removes_units_entirely() {
        let mut g = MtypeGraph::new();
        let u = g.unit();
        let r = g.record(vec![u, u]);
        assert!(flatten_record(&g, r).is_empty());
        assert_eq!(flatten_record_keep_units(&g, r).len(), 2);
    }

    #[test]
    fn flatten_stops_at_list_spines() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let list = g.list_of(i);
        let r = g.record(vec![i, list]);
        // The list resolves to a Choice (not a Record), so it is a leaf.
        assert_eq!(flatten_record(&g, r), vec![i, list]);
    }

    #[test]
    fn flatten_resolves_through_binders() {
        // A binder wrapping a Record is transparent for flattening.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let r = g.real(RealPrecision::SINGLE);
        let inner = g.record(vec![i, r]);
        let wrapped = g.recursive(|_, _| inner);
        let outer = g.record(vec![i, wrapped]);
        assert_eq!(flatten_record(&g, outer), vec![i, i, r]);
    }

    #[test]
    fn flatten_keeps_genuine_cycles_as_leaves() {
        // Rec X. Record(Int, X): flattening X's body must not loop.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let rec = g.recursive(|g, me| g.record(vec![i, me]));
        let flat = flatten_record(&g, rec);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat[0], i);
        // The cycle leaf resolves back to the record body.
        assert_eq!(g.resolve(flat[1]), g.resolve(rec));
    }

    #[test]
    fn flatten_choice_dedupes() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let c1 = g.choice(vec![i, i]);
        assert_eq!(flatten_choice(&g, c1), vec![i]);
        let u = g.unit();
        let c2 = g.choice(vec![c1, u]);
        assert_eq!(flatten_choice(&g, c2), vec![i, u]);
    }

    #[test]
    fn fingerprint_invariant_under_assoc_comm() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let c = g.character(Repertoire::Unicode);
        let inner = g.record(vec![r, c]);
        let nested = g.record(vec![i, inner]);
        let flat = g.record(vec![c, r, i]);
        assert_eq!(fingerprint(&g, nested), fingerprint(&g, flat));
        let different = g.record(vec![c, r]);
        assert_ne!(fingerprint(&g, nested), fingerprint(&g, different));
    }

    #[test]
    fn fingerprint_alpha_invariant_for_cycles() {
        let mut g1 = MtypeGraph::new();
        let r1 = g1.real(RealPrecision::SINGLE);
        let l1 = g1.list_of(r1);

        let mut g2 = MtypeGraph::new();
        // Same type built with padding nodes first, so arena ids differ.
        let _pad = g2.integer(IntRange::boolean());
        let r2 = g2.real(RealPrecision::SINGLE);
        let l2 = g2.list_of(r2);

        assert_eq!(fingerprint(&g1, l1), fingerprint(&g2, l2));
    }

    #[test]
    fn fingerprint_invariant_under_binder_placement() {
        // Mutually recursive A = Record(Int, B), B = Record(Real, A),
        // built twice with the μ-binder on A first, then on B first.
        let build = |binder_on_a: bool| -> (MtypeGraph, MtypeId) {
            let mut g = MtypeGraph::new();
            let i = g.integer(IntRange::signed_bits(32));
            let r = g.real(RealPrecision::SINGLE);
            if binder_on_a {
                let a = g.recursive(|g, me_a| {
                    let b = g.record(vec![r, me_a]);
                    g.record(vec![i, b])
                });
                (g, a)
            } else {
                let b = g.recursive(|g, me_b| {
                    let a = g.record(vec![i, me_b]);
                    g.record(vec![r, a])
                });
                // A = Record(Int, B).
                let a = g.record(vec![i, b]);
                (g, a)
            }
        };
        let (g1, a1) = build(true);
        let (g2, a2) = build(false);
        assert_eq!(
            fingerprint(&g1, a1),
            fingerprint(&g2, a2),
            "fingerprints must not depend on where lowering cut the cycle"
        );
    }

    #[test]
    fn fingerprint_distinguishes_element_types() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let d = g.real(RealPrecision::DOUBLE);
        let lr = g.list_of(r);
        let ld = g.list_of(d);
        assert_ne!(fingerprint(&g, lr), fingerprint(&g, ld));
    }

    #[test]
    fn transparent_binder_hashes_like_body() {
        // Rec X. Int (X unused) fingerprints like plain Int.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let rec = g.recursive(|_, _| i);
        assert_eq!(fingerprint(&g, rec), fingerprint(&g, i));
    }

    #[test]
    fn unary_and_empty_collapse_invariance() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let unary = g.record(vec![i]);
        assert_eq!(fingerprint(&g, unary), fingerprint(&g, i));
        let u = g.unit();
        let empty = g.record(vec![]);
        assert_eq!(fingerprint(&g, empty), fingerprint(&g, u));
        let single_choice = g.choice(vec![i]);
        assert_eq!(fingerprint(&g, single_choice), fingerprint(&g, i));
    }

    #[test]
    fn canonical_fp_is_label_insensitive_and_cross_graph_stable() {
        let mut g1 = MtypeGraph::new();
        let r1 = g1.real(RealPrecision::SINGLE);
        let p1 = g1.record(vec![r1, r1]);
        g1.set_label(p1, "Point");

        let mut g2 = MtypeGraph::new();
        let _pad = g2.integer(IntRange::boolean()); // shift arena ids
        let r2 = g2.real(RealPrecision::SINGLE);
        let p2 = g2.record(vec![r2, r2]);
        // No label at all on the second graph.
        assert_eq!(
            canonical_fingerprint(&g1, p1),
            canonical_fingerprint(&g2, p2)
        );
    }

    #[test]
    fn canonical_fp_sees_past_the_bounded_fingerprint_depth() {
        // A chain of Ports deeper than FINGERPRINT_DEPTH: the bounded
        // fingerprint truncates and collides, the canonical one must not.
        let build = |g: &mut MtypeGraph, leaf: MtypeId| -> MtypeId {
            let mut cur = leaf;
            for _ in 0..(FINGERPRINT_DEPTH + 4) {
                cur = g.port(cur);
            }
            cur
        };
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let deep_i = build(&mut g, i);
        let deep_r = build(&mut g, r);
        assert_eq!(fingerprint(&g, deep_i), fingerprint(&g, deep_r));
        assert_ne!(
            canonical_fingerprint(&g, deep_i),
            canonical_fingerprint(&g, deep_r)
        );
    }

    #[test]
    fn canonical_fp_full_opts_match_iso_rules() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let c = g.character(Repertoire::Unicode);
        let inner = g.record(vec![r, c]);
        let nested = g.record(vec![i, inner]);
        let flat = g.record(vec![c, r, i]);
        assert_eq!(
            canonical_fingerprint(&g, nested),
            canonical_fingerprint(&g, flat)
        );
        let unary = g.record(vec![i]);
        assert_eq!(
            canonical_fingerprint(&g, unary),
            canonical_fingerprint(&g, i)
        );
        let single = g.choice(vec![i]);
        assert_eq!(
            canonical_fingerprint(&g, single),
            canonical_fingerprint(&g, i)
        );
        let u = g.unit();
        let empty = g.record(vec![]);
        assert_eq!(
            canonical_fingerprint(&g, empty),
            canonical_fingerprint(&g, u)
        );
    }

    #[test]
    fn canonical_fp_strict_opts_stay_order_sensitive() {
        // Without commutativity Record(Int, Real) and Record(Real, Int)
        // are distinguished by the comparer, so the strict fingerprint
        // must keep them apart — a collision here would poison any
        // verdict cache keyed by the fingerprint.
        let strict = CanonOpts::strict();
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let ir = g.record(vec![i, r]);
        let ri = g.record(vec![r, i]);
        assert_ne!(
            canonical_fingerprint_opts(&g, ir, &strict),
            canonical_fingerprint_opts(&g, ri, &strict)
        );
        assert_eq!(
            canonical_fingerprint(&g, ir),
            canonical_fingerprint(&g, ri),
            "comm rule on: same fingerprint"
        );
        // Strict opts also keep singleton choices and unary records.
        let single = g.choice(vec![i]);
        assert_ne!(
            canonical_fingerprint_opts(&g, single, &strict),
            canonical_fingerprint_opts(&g, i, &strict)
        );
        // But identical shapes still agree cross-graph.
        let mut h = MtypeGraph::new();
        let hi = h.integer(IntRange::signed_bits(32));
        let hr = h.real(RealPrecision::SINGLE);
        let hir = h.record(vec![hi, hr]);
        assert_eq!(
            canonical_fingerprint_opts(&g, ir, &strict),
            canonical_fingerprint_opts(&h, hir, &strict)
        );
    }

    #[test]
    fn canonical_fp_handles_cycles_and_binder_placement() {
        let mut g1 = MtypeGraph::new();
        let r1 = g1.real(RealPrecision::SINGLE);
        let l1 = g1.list_of(r1);
        let mut g2 = MtypeGraph::new();
        let r2 = g2.real(RealPrecision::SINGLE);
        let l2 = g2.list_of(r2);
        assert_eq!(
            canonical_fingerprint(&g1, l1),
            canonical_fingerprint(&g2, l2)
        );
        let d2 = g2.real(RealPrecision::DOUBLE);
        let ld = g2.list_of(d2);
        assert_ne!(
            canonical_fingerprint(&g2, l2),
            canonical_fingerprint(&g2, ld)
        );

        // Mutually recursive pair cut at different points (see the
        // bounded-fingerprint test of the same name).
        let build = |binder_on_a: bool| -> (MtypeGraph, MtypeId) {
            let mut g = MtypeGraph::new();
            let i = g.integer(IntRange::signed_bits(32));
            let r = g.real(RealPrecision::SINGLE);
            if binder_on_a {
                let a = g.recursive(|g, me_a| {
                    let b = g.record(vec![r, me_a]);
                    g.record(vec![i, b])
                });
                (g, a)
            } else {
                let b = g.recursive(|g, me_b| {
                    let a = g.record(vec![i, me_b]);
                    g.record(vec![r, a])
                });
                let a = g.record(vec![i, b]);
                (g, a)
            }
        };
        let (ga, aa) = build(true);
        let (gb, ab) = build(false);
        assert_eq!(
            canonical_fingerprint(&ga, aa),
            canonical_fingerprint(&gb, ab)
        );
    }

    #[test]
    fn summary_counts() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let list = g.list_of(point);
        let s = MtypeSummary::of(&g, list);
        assert_eq!(s.reals, 1); // hash-consed single Real node
        assert_eq!(s.records, 2); // point + cons cell
        assert_eq!(s.recursives, 1);
        assert_eq!(s.choices, 1);
        assert_eq!(s.units, 1);
        assert_eq!(s.total(), 6);
    }
}
