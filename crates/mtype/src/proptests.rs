//! Property-based tests over randomly generated Mtype graphs.

use proptest::prelude::*;

use crate::canon::{fingerprint, flatten_choice, flatten_record};
use crate::graph::{MtypeGraph, MtypeId};
use crate::kind::{IntRange, MtypeKind, RealPrecision, Repertoire};

/// A recipe for building an Mtype in a fresh graph; proptest generates
/// recipes, we materialise them.
#[derive(Debug, Clone)]
pub(crate) enum Recipe {
    Int(u32),
    Char(u8),
    Real(bool),
    Unit,
    Record(Vec<Recipe>),
    Choice(Vec<Recipe>),
    List(Box<Recipe>),
    Port(Box<Recipe>),
}

pub(crate) fn build(g: &mut MtypeGraph, r: &Recipe) -> MtypeId {
    match r {
        Recipe::Int(bits) => g.integer(IntRange::signed_bits(bits % 63 + 1)),
        Recipe::Char(sel) => g.character(match sel % 3 {
            0 => Repertoire::Ascii,
            1 => Repertoire::Latin1,
            _ => Repertoire::Unicode,
        }),
        Recipe::Real(double) => {
            g.real(if *double { RealPrecision::DOUBLE } else { RealPrecision::SINGLE })
        }
        Recipe::Unit => g.unit(),
        Recipe::Record(cs) => {
            let kids = cs.iter().map(|c| build(g, c)).collect();
            g.record(kids)
        }
        Recipe::Choice(cs) => {
            let kids = cs.iter().map(|c| build(g, c)).collect();
            g.choice(kids)
        }
        Recipe::List(e) => {
            let elem = build(g, e);
            g.list_of(elem)
        }
        Recipe::Port(e) => {
            let payload = build(g, e);
            g.port(payload)
        }
    }
}

pub(crate) fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        any::<u32>().prop_map(Recipe::Int),
        any::<u8>().prop_map(Recipe::Char),
        any::<bool>().prop_map(Recipe::Real),
        Just(Recipe::Unit),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Recipe::Record),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Recipe::Choice),
            inner.clone().prop_map(|r| Recipe::List(Box::new(r))),
            inner.prop_map(|r| Recipe::Port(Box::new(r))),
        ]
    })
}

proptest! {
    #[test]
    fn generated_graphs_validate(recipe in recipe_strategy()) {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, &recipe);
        prop_assert!(g.validate().is_ok());
        prop_assert!(root.index() < g.len());
    }

    #[test]
    fn fingerprint_is_deterministic(recipe in recipe_strategy()) {
        let mut g1 = MtypeGraph::new();
        let r1 = build(&mut g1, &recipe);
        let mut g2 = MtypeGraph::new();
        // Pad g2 so arena indices differ.
        let _ = g2.integer(IntRange::signed_bits(63));
        let _ = g2.unit();
        let r2 = build(&mut g2, &recipe);
        prop_assert_eq!(fingerprint(&g1, r1), fingerprint(&g2, r2));
    }

    #[test]
    fn import_preserves_fingerprint(recipe in recipe_strategy()) {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, &recipe);
        let mut h = MtypeGraph::new();
        let copied = h.import(&g, root);
        prop_assert!(h.validate().is_ok());
        prop_assert_eq!(fingerprint(&g, root), fingerprint(&h, copied));
    }

    #[test]
    fn flattened_records_contain_no_records_or_units(recipe in recipe_strategy()) {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, &recipe);
        for id in g.reachable(root) {
            if matches!(g.kind(id), MtypeKind::Record(_)) {
                for c in flatten_record(&g, id) {
                    prop_assert!(!matches!(g.kind(c), MtypeKind::Record(_) | MtypeKind::Unit));
                }
            }
        }
    }

    #[test]
    fn flattened_choices_contain_no_choices(recipe in recipe_strategy()) {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, &recipe);
        for id in g.reachable(root) {
            if matches!(g.kind(id), MtypeKind::Choice(_)) {
                let flat = flatten_choice(&g, id);
                prop_assert!(!flat.is_empty());
                for c in &flat {
                    prop_assert!(!matches!(g.kind(*c), MtypeKind::Choice(_)));
                }
                // Deduped: all ids distinct.
                let mut sorted = flat.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), flat.len());
            }
        }
    }

    #[test]
    fn display_never_panics_and_is_nonempty(recipe in recipe_strategy()) {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, &recipe);
        let s = g.display(root).to_string();
        prop_assert!(!s.is_empty());
    }

    #[test]
    fn reachable_is_closed(recipe in recipe_strategy()) {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, &recipe);
        let reach = g.reachable(root);
        for &id in &reach {
            for &c in g.kind(id).children() {
                prop_assert!(reach.contains(&c));
            }
        }
    }
}
