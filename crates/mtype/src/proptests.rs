//! Property-style tests over randomly generated Mtype graphs.
//!
//! Each property runs against a deterministic stream of random type
//! recipes (seeded [`StdRng`]), so failures reproduce exactly while the
//! coverage stays property-shaped.

use mockingbird_rng::StdRng;

use crate::canon::{fingerprint, flatten_choice, flatten_record};
use crate::graph::{MtypeGraph, MtypeId};
use crate::kind::{IntRange, MtypeKind, RealPrecision, Repertoire};

/// A recipe for building an Mtype in a fresh graph; the RNG generates
/// recipes, we materialise them.
#[derive(Debug, Clone)]
pub(crate) enum Recipe {
    Int(u32),
    Char(u8),
    Real(bool),
    Unit,
    Record(Vec<Recipe>),
    Choice(Vec<Recipe>),
    List(Box<Recipe>),
    Port(Box<Recipe>),
}

pub(crate) fn build(g: &mut MtypeGraph, r: &Recipe) -> MtypeId {
    match r {
        Recipe::Int(bits) => g.integer(IntRange::signed_bits(bits % 63 + 1)),
        Recipe::Char(sel) => g.character(match sel % 3 {
            0 => Repertoire::Ascii,
            1 => Repertoire::Latin1,
            _ => Repertoire::Unicode,
        }),
        Recipe::Real(double) => g.real(if *double {
            RealPrecision::DOUBLE
        } else {
            RealPrecision::SINGLE
        }),
        Recipe::Unit => g.unit(),
        Recipe::Record(cs) => {
            let kids = cs.iter().map(|c| build(g, c)).collect();
            g.record(kids)
        }
        Recipe::Choice(cs) => {
            let kids = cs.iter().map(|c| build(g, c)).collect();
            g.choice(kids)
        }
        Recipe::List(e) => {
            let elem = build(g, e);
            g.list_of(elem)
        }
        Recipe::Port(e) => {
            let payload = build(g, e);
            g.port(payload)
        }
    }
}

fn random_leaf(rng: &mut StdRng) -> Recipe {
    match rng.gen_range(0..4) {
        0 => Recipe::Int(rng.gen_range(0..u32::MAX)),
        1 => Recipe::Char(rng.gen_range(0u8..=255)),
        2 => Recipe::Real(rng.gen_bool(0.5)),
        _ => Recipe::Unit,
    }
}

pub(crate) fn random_recipe(rng: &mut StdRng, depth: usize) -> Recipe {
    if depth == 0 {
        return random_leaf(rng);
    }
    match rng.gen_range(0..5) {
        0 => {
            let n = rng.gen_range(0..4);
            Recipe::Record((0..n).map(|_| random_recipe(rng, depth - 1)).collect())
        }
        1 => {
            let n = rng.gen_range(1..4);
            Recipe::Choice((0..n).map(|_| random_recipe(rng, depth - 1)).collect())
        }
        2 => Recipe::List(Box::new(random_recipe(rng, depth - 1))),
        3 => Recipe::Port(Box::new(random_recipe(rng, depth - 1))),
        _ => random_leaf(rng),
    }
}

/// Runs `prop` against `cases` random recipes; each case is seeded by its
/// index so a counterexample replays exactly.
fn for_recipes(cases: u64, mut prop: impl FnMut(&Recipe)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1usize..=4);
        let recipe = random_recipe(&mut rng, depth);
        prop(&recipe);
    }
}

#[test]
fn generated_graphs_validate() {
    for_recipes(128, |recipe| {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, recipe);
        assert!(g.validate().is_ok(), "invalid graph for {recipe:?}");
        assert!(root.index() < g.len());
    });
}

#[test]
fn fingerprint_is_deterministic() {
    for_recipes(128, |recipe| {
        let mut g1 = MtypeGraph::new();
        let r1 = build(&mut g1, recipe);
        let mut g2 = MtypeGraph::new();
        // Pad g2 so arena indices differ.
        let _ = g2.integer(IntRange::signed_bits(63));
        let _ = g2.unit();
        let r2 = build(&mut g2, recipe);
        assert_eq!(fingerprint(&g1, r1), fingerprint(&g2, r2), "for {recipe:?}");
    });
}

#[test]
fn import_preserves_fingerprint() {
    for_recipes(128, |recipe| {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, recipe);
        let mut h = MtypeGraph::new();
        let copied = h.import(&g, root);
        assert!(h.validate().is_ok());
        assert_eq!(
            fingerprint(&g, root),
            fingerprint(&h, copied),
            "for {recipe:?}"
        );
    });
}

#[test]
fn flattened_records_contain_no_records_or_units() {
    for_recipes(128, |recipe| {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, recipe);
        for id in g.reachable(root) {
            if matches!(g.kind(id), MtypeKind::Record(_)) {
                for c in flatten_record(&g, id) {
                    assert!(!matches!(g.kind(c), MtypeKind::Record(_) | MtypeKind::Unit));
                }
            }
        }
    });
}

#[test]
fn flattened_choices_contain_no_choices() {
    for_recipes(128, |recipe| {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, recipe);
        for id in g.reachable(root) {
            if matches!(g.kind(id), MtypeKind::Choice(_)) {
                let flat = flatten_choice(&g, id);
                assert!(!flat.is_empty());
                for c in &flat {
                    assert!(!matches!(g.kind(*c), MtypeKind::Choice(_)));
                }
                // Deduped: all ids distinct.
                let mut sorted = flat.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), flat.len());
            }
        }
    });
}

#[test]
fn display_never_panics_and_is_nonempty() {
    for_recipes(128, |recipe| {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, recipe);
        let s = g.display(root).to_string();
        assert!(!s.is_empty());
    });
}

#[test]
fn reachable_is_closed() {
    for_recipes(128, |recipe| {
        let mut g = MtypeGraph::new();
        let root = build(&mut g, recipe);
        let reach = g.reachable(root);
        for &id in &reach {
            for &c in g.kind(id).children() {
                assert!(reach.contains(&c));
            }
        }
    });
}
