//! Arena-based Mtype graphs.
//!
//! Declarations translate into graphs of Mtype nodes. Recursive
//! declarations produce *cycles*: a [`MtypeKind::Recursive`] node is placed
//! on the cycle and edges back to it encode self-reference (paper §3.2,
//! Fig. 8). An arena with index handles ([`MtypeId`]) represents such
//! graphs without reference counting or unsafe code.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::kind::{IntRange, MtypeKind, RealPrecision, Repertoire};

/// Source of process-unique graph identities (see [`MtypeGraph::uid`]).
static NEXT_GRAPH_UID: AtomicU64 = AtomicU64::new(1);

fn next_graph_uid() -> u64 {
    NEXT_GRAPH_UID.fetch_add(1, Ordering::Relaxed)
}

/// A handle to a node in an [`MtypeGraph`].
///
/// Ids are only meaningful relative to the graph that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MtypeId(pub(crate) u32);

impl MtypeId {
    /// The raw index of this node in its graph's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MtypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One node of an Mtype graph: a kind plus an optional provenance label
/// used in diagnostics ("the Mtype of Java class `Line`").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtypeNode {
    /// The node's kind and children.
    pub kind: MtypeKind,
    /// Where the node came from, for diagnostics; not significant for
    /// equivalence.
    pub label: Option<String>,
}

/// An arena of Mtype nodes forming a (possibly cyclic) graph.
///
/// Acyclic nodes are hash-consed: building the same primitive or the same
/// `Record`/`Choice`/`Port` over identical children returns the same
/// [`MtypeId`], so structural sharing is the default. `Recursive` nodes
/// are never consed (each binder is distinct until the comparer proves
/// otherwise).
///
/// # Example
///
/// ```
/// use mockingbird_mtype::{MtypeGraph, RealPrecision};
/// let mut g = MtypeGraph::new();
/// let r1 = g.real(RealPrecision::SINGLE);
/// let r2 = g.real(RealPrecision::SINGLE);
/// assert_eq!(r1, r2); // hash-consed
/// let point = g.record(vec![r1, r2]);
/// assert_eq!(g.node(point).kind.children().len(), 2);
/// ```
#[derive(Debug)]
pub struct MtypeGraph {
    nodes: Vec<MtypeNode>,
    cons: HashMap<MtypeKind, MtypeId>,
    /// Alternate provenance labels recorded when a hash-cons hit arrives
    /// with a label that differs from the one already attached (first
    /// label wins, see [`set_label`](MtypeGraph::set_label)).
    alt_labels: HashMap<MtypeId, Vec<String>>,
    /// Process-unique identity of this graph *object*. Cloning a graph
    /// assigns a fresh uid, so two graphs share a uid only if one is a
    /// frozen [`snapshot`](MtypeGraph::snapshot) of the other at a fixed
    /// version. Caches use the uid to decide whether graph-local
    /// [`MtypeId`]s may be reused.
    uid: u64,
    /// Bumped on every mutation; used to invalidate cached snapshots.
    version: u64,
    /// Cached frozen copy of this graph at `(version, snapshot)`.
    frozen: Option<(u64, Arc<MtypeGraph>)>,
}

impl Clone for MtypeGraph {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            cons: self.cons.clone(),
            alt_labels: self.alt_labels.clone(),
            // A clone may diverge from the original, so it gets its own
            // identity; content-addressed caches still apply across uids.
            uid: next_graph_uid(),
            version: self.version,
            frozen: None,
        }
    }
}

impl Default for MtypeGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl MtypeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            cons: HashMap::new(),
            alt_labels: HashMap::new(),
            uid: next_graph_uid(),
            version: 0,
            frozen: None,
        }
    }

    /// Process-unique identity of this graph object. Two graphs report the
    /// same uid only when one is a frozen snapshot of the other, in which
    /// case [`MtypeId`]s are interchangeable between them.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Mutation counter: bumped by every node addition, label change or
    /// binder patch. Snapshots are keyed by this.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Returns a cheap `Arc`-frozen copy of the graph at its current
    /// version. Repeated calls return the *same* `Arc` until the graph is
    /// mutated again, so snapshots taken between mutations share both
    /// storage and [`uid`](MtypeGraph::uid) — which is what lets comparer
    /// caches reuse correspondences across consumers of one snapshot.
    pub fn snapshot(&mut self) -> Arc<MtypeGraph> {
        if let Some((v, s)) = &self.frozen {
            if *v == self.version {
                return s.clone();
            }
        }
        let arc = Arc::new(self.clone());
        self.frozen = Some((self.version, arc.clone()));
        arc
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrows the node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: MtypeId) -> &MtypeNode {
        &self.nodes[id.index()]
    }

    /// The kind of the node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn kind(&self, id: MtypeId) -> &MtypeKind {
        &self.nodes[id.index()].kind
    }

    /// Iterates over `(id, node)` pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (MtypeId, &MtypeNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (MtypeId(i as u32), n))
    }

    /// Adds a node without hash-consing. Use the kind-specific builders
    /// where possible; this is the escape hatch for cyclic construction.
    pub fn add(&mut self, kind: MtypeKind) -> MtypeId {
        let id = MtypeId(u32::try_from(self.nodes.len()).expect("mtype arena overflow"));
        self.nodes.push(MtypeNode { kind, label: None });
        self.version += 1;
        id
    }

    fn intern(&mut self, kind: MtypeKind) -> MtypeId {
        if let Some(&id) = self.cons.get(&kind) {
            return id;
        }
        let id = self.add(kind.clone());
        self.cons.insert(kind, id);
        id
    }

    /// Builds an `Integer` Mtype with the given range.
    pub fn integer(&mut self, range: IntRange) -> MtypeId {
        self.intern(MtypeKind::Integer(range))
    }

    /// Builds a `Character` Mtype with the given repertoire.
    pub fn character(&mut self, repertoire: Repertoire) -> MtypeId {
        self.intern(MtypeKind::Character(repertoire))
    }

    /// Builds a `Real` Mtype with the given precision.
    pub fn real(&mut self, precision: RealPrecision) -> MtypeId {
        self.intern(MtypeKind::Real(precision))
    }

    /// Builds the `Unit` Mtype.
    pub fn unit(&mut self) -> MtypeId {
        self.intern(MtypeKind::Unit)
    }

    /// Builds the `Dynamic` (Any-like) Mtype.
    pub fn dynamic(&mut self) -> MtypeId {
        self.intern(MtypeKind::Dynamic)
    }

    /// Builds a `Record` over `children`, in order.
    pub fn record(&mut self, children: Vec<MtypeId>) -> MtypeId {
        self.intern(MtypeKind::Record(children))
    }

    /// Builds a `Choice` over `children`.
    pub fn choice(&mut self, children: Vec<MtypeId>) -> MtypeId {
        self.intern(MtypeKind::Choice(children))
    }

    /// Builds a `Port` carrying `payload`.
    pub fn port(&mut self, payload: MtypeId) -> MtypeId {
        self.intern(MtypeKind::Port(payload))
    }

    /// Builds a `Recursive` binder whose body is produced by `f`, which
    /// receives the binder's own id so the body can refer back to it.
    ///
    /// ```
    /// use mockingbird_mtype::{MtypeGraph, MtypeKind, RealPrecision};
    /// let mut g = MtypeGraph::new();
    /// let real = g.real(RealPrecision::SINGLE);
    /// // Rec X. Choice(Unit, Record(Real, X)) — the canonical list.
    /// let list = g.recursive(|g, me| {
    ///     let unit = g.unit();
    ///     let cell = g.record(vec![real, me]);
    ///     g.choice(vec![unit, cell])
    /// });
    /// assert!(matches!(g.kind(list), MtypeKind::Recursive(_)));
    /// ```
    pub fn recursive(&mut self, f: impl FnOnce(&mut Self, MtypeId) -> MtypeId) -> MtypeId {
        // Reserve the binder with a placeholder body (itself), then patch.
        let binder = self.add(MtypeKind::Recursive(MtypeId(0)));
        if let MtypeKind::Recursive(body) = &mut self.nodes[binder.index()].kind {
            *body = binder;
        }
        let body = f(self, binder);
        if let MtypeKind::Recursive(b) = &mut self.nodes[binder.index()].kind {
            *b = body;
        }
        binder
    }

    /// Rewrites the body of an existing `Recursive` binder. Used by
    /// lowering passes that discover a recursive reference mid-way and
    /// must tie the knot after the body is complete.
    ///
    /// # Panics
    ///
    /// Panics if `binder` is not a `Recursive` node.
    pub fn patch_recursive(&mut self, binder: MtypeId, body: MtypeId) {
        match &mut self.nodes[binder.index()].kind {
            MtypeKind::Recursive(slot) => *slot = body,
            other => panic!("patch_recursive on non-Recursive node {}", other.tag()),
        }
        self.version += 1;
    }

    /// Builds the canonical Mtype of an indefinite-size homogeneous
    /// ordered collection of `elem`: `Rec X. Choice(Unit, Record(elem, X))`
    /// (paper §3.2 and Fig. 8). Java `Vector`s, C runtime-sized arrays and
    /// IDL `sequence`s all translate to this shape.
    pub fn list_of(&mut self, elem: MtypeId) -> MtypeId {
        self.recursive(|g, me| {
            let unit = g.unit();
            let cell = g.record(vec![elem, me]);
            g.choice(vec![unit, cell])
        })
    }

    /// Builds `Choice(Unit, referent)`: the Mtype of a nullable pointer or
    /// reference (paper §3.2).
    pub fn nullable(&mut self, referent: MtypeId) -> MtypeId {
        let unit = self.unit();
        self.choice(vec![unit, referent])
    }

    /// Builds the Mtype of a function: `port(Record(inputs, port(outputs)))`
    /// where `inputs`/`outputs` are Records over the parameter Mtypes
    /// (paper §3.3).
    pub fn function(&mut self, inputs: Vec<MtypeId>, outputs: Vec<MtypeId>) -> MtypeId {
        let out_rec = self.record(outputs);
        let reply = self.port(out_rec);
        let mut inv = inputs;
        inv.push(reply);
        let inv_rec = self.record(inv);
        self.port(inv_rec)
    }

    /// Builds the Mtype of an object passed by reference:
    /// `port(Choice(m_1, ..., m_n))` over its method invocation Mtypes
    /// (paper §3.3). Each `m_i` should be the *invocation* Record of a
    /// method, i.e. `Record(I_i, port(O_i))`.
    pub fn object_reference(&mut self, method_invocations: Vec<MtypeId>) -> MtypeId {
        let choice = self.choice(method_invocations);
        self.port(choice)
    }

    /// Attaches a provenance label to a node. Labels are for diagnostics
    /// only.
    ///
    /// The **first** label attached to a node wins: hash-consing means one
    /// arena node can stand for declarations from several sources, and
    /// silently overwriting would make diagnostics claim the wrong
    /// provenance. Later distinct labels are recorded as alternates,
    /// retrievable via [`alt_labels`](MtypeGraph::alt_labels).
    pub fn set_label(&mut self, id: MtypeId, label: impl Into<String>) {
        let label = label.into();
        self.version += 1;
        match &mut self.nodes[id.index()].label {
            slot @ None => *slot = Some(label),
            Some(existing) => {
                if *existing != label {
                    let alts = self.alt_labels.entry(id).or_default();
                    if !alts.contains(&label) {
                        alts.push(label);
                    }
                }
            }
        }
    }

    /// The (first-attached) provenance label of a node, if any.
    pub fn label(&self, id: MtypeId) -> Option<&str> {
        self.nodes[id.index()].label.as_deref()
    }

    /// Alternate provenance labels attached after the first (deduplicated,
    /// in attachment order). Empty for nodes labelled at most once.
    pub fn alt_labels(&self, id: MtypeId) -> &[String] {
        self.alt_labels.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Checks structural well-formedness:
    /// every child id is in range, every `Recursive` body is *contractive*
    /// (the cycle passes through at least one `Record`, `Choice` or `Port`
    /// constructor, so `Rec X. X` is rejected), and `Choice` nodes have at
    /// least one alternative.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (id, node) in self.iter() {
            for &c in node.kind.children() {
                if c.index() >= self.nodes.len() {
                    return Err(format!("{id}: dangling child {c}"));
                }
            }
            match &node.kind {
                MtypeKind::Choice(cs) if cs.is_empty() => {
                    return Err(format!("{id}: Choice with no alternatives"));
                }
                MtypeKind::Recursive(body) if !self.is_contractive(*body, id) => {
                    return Err(format!("{id}: non-contractive recursion"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Whether the path from `body` back to `binder` (if any) passes
    /// through a structural constructor.
    fn is_contractive(&self, body: MtypeId, binder: MtypeId) -> bool {
        // Walk through transparent nodes (Recursive chains) only; hitting
        // the binder through such a chain means non-contractive.
        let mut cur = body;
        let mut seen = Vec::new();
        loop {
            if cur == binder {
                return false;
            }
            if seen.contains(&cur) {
                return true; // cycle elsewhere, fine
            }
            seen.push(cur);
            match self.kind(cur) {
                MtypeKind::Recursive(b) => cur = *b,
                _ => return true,
            }
        }
    }

    /// Resolves through `Recursive` binders to the underlying structural
    /// node. Returns `id` itself if it is not a binder. Cycles of bare
    /// binders (non-contractive, rejected by [`validate`]) resolve to the
    /// last binder seen.
    ///
    /// [`validate`]: MtypeGraph::validate
    pub fn resolve(&self, id: MtypeId) -> MtypeId {
        let mut cur = id;
        let mut hops = 0usize;
        while let MtypeKind::Recursive(body) = self.kind(cur) {
            cur = *body;
            hops += 1;
            if hops > self.nodes.len() {
                return cur;
            }
        }
        cur
    }

    /// The set of node ids reachable from `root` (including `root`), in
    /// depth-first preorder.
    pub fn reachable(&self, root: MtypeId) -> Vec<MtypeId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            out.push(id);
            let kids = self.kind(id).children();
            for &c in kids.iter().rev() {
                if !seen[c.index()] {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Copies the subgraph reachable from `root` in `other` into `self`,
    /// preserving cycles; returns the id of the copied root.
    pub fn import(&mut self, other: &MtypeGraph, root: MtypeId) -> MtypeId {
        let mut map: HashMap<MtypeId, MtypeId> = HashMap::new();
        self.import_rec(other, root, &mut map)
    }

    fn import_rec(
        &mut self,
        other: &MtypeGraph,
        id: MtypeId,
        map: &mut HashMap<MtypeId, MtypeId>,
    ) -> MtypeId {
        if let Some(&n) = map.get(&id) {
            return n;
        }
        // Reserve a slot first so cycles terminate.
        let new_id = self.add(MtypeKind::Unit);
        map.insert(id, new_id);
        let mut kind = other.kind(id).clone();
        let children: Vec<MtypeId> = kind
            .children()
            .iter()
            .map(|&c| self.import_rec(other, c, map))
            .collect();
        for (slot, c) in kind.children_mut().iter_mut().zip(children) {
            *slot = c;
        }
        self.nodes[new_id.index()].kind = kind;
        self.nodes[new_id.index()].label = other.node(id).label.clone();
        let alts = other.alt_labels(id);
        if !alts.is_empty() {
            self.alt_labels.insert(new_id, alts.to_vec());
        }
        new_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{IntRange, RealPrecision, Repertoire};

    #[test]
    fn hash_consing_dedupes_acyclic_nodes() {
        let mut g = MtypeGraph::new();
        let a = g.integer(IntRange::signed_bits(32));
        let b = g.integer(IntRange::signed_bits(32));
        assert_eq!(a, b);
        let c = g.integer(IntRange::signed_bits(16));
        assert_ne!(a, c);
        let r1 = g.record(vec![a, c]);
        let r2 = g.record(vec![b, c]);
        assert_eq!(r1, r2);
        let r3 = g.record(vec![c, a]);
        assert_ne!(r1, r3); // consing is order-sensitive; comparer handles comm.
    }

    #[test]
    fn recursive_builder_ties_the_knot() {
        let mut g = MtypeGraph::new();
        let real = g.real(RealPrecision::SINGLE);
        let list = g.list_of(real);
        let MtypeKind::Recursive(body) = *g.kind(list) else {
            panic!("expected Recursive");
        };
        let MtypeKind::Choice(alts) = g.kind(body) else {
            panic!("expected Choice body");
        };
        assert_eq!(alts.len(), 2);
        let MtypeKind::Record(cell) = g.kind(alts[1]) else {
            panic!("expected Record cell");
        };
        assert_eq!(cell[0], real);
        assert_eq!(cell[1], list, "tail must point back at the binder");
    }

    #[test]
    fn function_shape_matches_section_3_3() {
        // F(int) -> float has Mtype port(Record(Integer, port(Real))).
        let mut g = MtypeGraph::new();
        let int = g.integer(IntRange::signed_bits(32));
        let real = g.real(RealPrecision::SINGLE);
        let f = g.function(vec![int], vec![real]);
        let MtypeKind::Port(inv) = *g.kind(f) else {
            panic!()
        };
        let MtypeKind::Record(parts) = g.kind(inv) else {
            panic!()
        };
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], int);
        let MtypeKind::Port(out) = *g.kind(parts[1]) else {
            panic!()
        };
        let MtypeKind::Record(outs) = g.kind(out) else {
            panic!()
        };
        assert_eq!(outs, &vec![real]);
    }

    #[test]
    fn object_reference_shape() {
        let mut g = MtypeGraph::new();
        let int = g.integer(IntRange::signed_bits(32));
        let m1 = g.record(vec![int]);
        let m2 = g.record(vec![int, int]);
        let obj = g.object_reference(vec![m1, m2]);
        let MtypeKind::Port(c) = *g.kind(obj) else {
            panic!()
        };
        assert!(matches!(g.kind(c), MtypeKind::Choice(alts) if alts.len() == 2));
    }

    #[test]
    fn validate_accepts_lists_rejects_bare_loops() {
        let mut g = MtypeGraph::new();
        let ch = g.character(Repertoire::Unicode);
        let _ = g.list_of(ch);
        assert!(g.validate().is_ok());

        let mut bad = MtypeGraph::new();
        let binder = bad.add(MtypeKind::Recursive(MtypeId(0)));
        // Rec X. X — body is the binder itself (the placeholder default).
        assert!(bad.validate().unwrap_err().contains("non-contractive"));
        let _ = binder;
    }

    #[test]
    fn validate_rejects_empty_choice() {
        let mut g = MtypeGraph::new();
        let _ = g.add(MtypeKind::Choice(vec![]));
        assert!(g.validate().unwrap_err().contains("no alternatives"));
    }

    #[test]
    fn resolve_skips_binder_chains() {
        let mut g = MtypeGraph::new();
        let real = g.real(RealPrecision::DOUBLE);
        let list = g.list_of(real);
        let body = match *g.kind(list) {
            MtypeKind::Recursive(b) => b,
            _ => unreachable!(),
        };
        assert_eq!(g.resolve(list), body);
        assert_eq!(g.resolve(real), real);
    }

    #[test]
    fn reachable_covers_cycles_once() {
        let mut g = MtypeGraph::new();
        let real = g.real(RealPrecision::SINGLE);
        let list = g.list_of(real);
        let r = g.reachable(list);
        // Recursive, Choice, Unit, Record, Real = 5 distinct nodes.
        assert_eq!(r.len(), 5);
        assert_eq!(r[0], list);
    }

    #[test]
    fn import_preserves_structure_and_cycles() {
        let mut a = MtypeGraph::new();
        let real = a.real(RealPrecision::SINGLE);
        let list = a.list_of(real);
        a.set_label(list, "PointVector");

        let mut b = MtypeGraph::new();
        let copied = b.import(&a, list);
        assert!(b.validate().is_ok());
        assert_eq!(b.label(copied), Some("PointVector"));
        let MtypeKind::Recursive(body) = *b.kind(copied) else {
            panic!()
        };
        let MtypeKind::Choice(alts) = b.kind(body) else {
            panic!()
        };
        let MtypeKind::Record(cell) = b.kind(alts[1]) else {
            panic!()
        };
        assert_eq!(cell[1], copied, "cycle must survive import");
    }

    #[test]
    fn labels_do_not_affect_consing_lookup_of_existing_nodes() {
        let mut g = MtypeGraph::new();
        let a = g.unit();
        g.set_label(a, "void");
        let b = g.unit();
        assert_eq!(a, b);
        assert_eq!(g.label(b), Some("void"));
    }

    #[test]
    fn cons_hit_with_different_label_keeps_first_and_records_alternate() {
        let mut g = MtypeGraph::new();
        // Two declarations lower to the same consed node but carry
        // different provenance labels.
        let a = g.integer(IntRange::signed_bits(32));
        g.set_label(a, "c:int");
        let b = g.integer(IntRange::signed_bits(32));
        assert_eq!(a, b, "cons hit expected");
        g.set_label(b, "java:int");
        g.set_label(b, "java:int"); // duplicates are not recorded twice
        assert_eq!(g.label(a), Some("c:int"), "first label wins");
        assert_eq!(g.alt_labels(a), ["java:int".to_string()]);
        // An unlabelled node reports no alternates.
        let r = g.real(RealPrecision::SINGLE);
        assert!(g.alt_labels(r).is_empty());
    }

    #[test]
    fn snapshot_is_reused_until_mutation() {
        let mut g = MtypeGraph::new();
        let int = g.integer(IntRange::signed_bits(32));
        let s1 = g.snapshot();
        let s2 = g.snapshot();
        assert!(Arc::ptr_eq(&s1, &s2), "same version, same Arc");
        assert_eq!(s1.uid(), s2.uid());
        assert_ne!(s1.uid(), g.uid(), "snapshot is its own object");
        let v = g.version();
        let _ = g.record(vec![int, int]);
        assert!(g.version() > v);
        let s3 = g.snapshot();
        assert!(!Arc::ptr_eq(&s1, &s3), "mutation invalidates the snapshot");
        // Ids remain valid across snapshots (the arena is append-only).
        assert_eq!(s3.kind(int), g.kind(int));
    }

    #[test]
    fn clone_gets_a_fresh_uid() {
        let g = MtypeGraph::new();
        let c = g.clone();
        assert_ne!(g.uid(), c.uid());
    }

    #[test]
    fn nullable_builds_choice_with_unit() {
        let mut g = MtypeGraph::new();
        let int = g.integer(IntRange::signed_bits(8));
        let n = g.nullable(int);
        let MtypeKind::Choice(alts) = g.kind(n) else {
            panic!()
        };
        assert!(matches!(g.kind(alts[0]), MtypeKind::Unit));
        assert_eq!(alts[1], int);
    }
}
