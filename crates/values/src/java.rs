//! A Java heap of object graphs.
//!
//! The Java side of a stub traverses real reference structure: instances
//! with fields, arrays, strings, `Vector`s, `null`, and aliasing. The
//! [`JCodec`] converts between [`JValue`] graphs and neutral [`MValue`]s
//! guided by the annotated declaration, mirroring the Stype→Mtype rules:
//! a `non-null` pointer converts without the Choice wrapper (and a null
//! found there is an error), `no-alias` is verified against the actual
//! graph, `Vector` subclasses convert element-wise per their `element`
//! annotation.

use std::collections::HashSet;

use mockingbird_stype::ann::{Ann, LengthAnn, PassMode};
use mockingbird_stype::ast::{ArrayLen, Prim, SNode, Stype, Universe};
use mockingbird_stype::lower::JAVA_VECTOR;

use crate::mvalue::{MValue, ValueError};

/// A reference into a [`JHeap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JRef(pub usize);

/// A Java value: a primitive, `null`, or a heap reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JValue {
    /// `boolean`.
    Bool(bool),
    /// `byte`.
    Byte(i8),
    /// `short`.
    Short(i16),
    /// `char` (UTF-16 code unit).
    Char(u16),
    /// `int`.
    Int(i32),
    /// `long`.
    Long(i64),
    /// `float`.
    Float(f32),
    /// `double`.
    Double(f64),
    /// The null reference.
    Null,
    /// A reference to a heap object.
    Ref(JRef),
}

/// A heap object.
#[derive(Debug, Clone, PartialEq)]
pub enum JObject {
    /// A class instance with fields in declaration order.
    Instance {
        /// The runtime class name.
        class: String,
        /// Field values in declaration order.
        fields: Vec<JValue>,
    },
    /// An array.
    Array(Vec<JValue>),
    /// A `java.lang.String`.
    Str(String),
    /// A `java.util.Vector` (or subclass) and its elements.
    Vector(Vec<JValue>),
}

/// A growable Java heap.
#[derive(Debug, Clone, Default)]
pub struct JHeap {
    objects: Vec<JObject>,
}

impl JHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        JHeap::default()
    }

    /// Allocates an object, returning its reference.
    pub fn alloc(&mut self, obj: JObject) -> JRef {
        self.objects.push(obj);
        JRef(self.objects.len() - 1)
    }

    /// Borrows the object behind a reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is dangling (heap references are only
    /// created by [`JHeap::alloc`], so this indicates a cross-heap mixup).
    pub fn get(&self, r: JRef) -> &JObject {
        &self.objects[r.0]
    }

    /// Mutably borrows the object behind a reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is dangling.
    pub fn get_mut(&mut self, r: JRef) -> &mut JObject {
        &mut self.objects[r.0]
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Convenience: allocates a string object.
    pub fn string(&mut self, s: impl Into<String>) -> JValue {
        JValue::Ref(self.alloc(JObject::Str(s.into())))
    }

    /// Convenience: allocates an instance.
    pub fn instance(&mut self, class: impl Into<String>, fields: Vec<JValue>) -> JValue {
        JValue::Ref(self.alloc(JObject::Instance {
            class: class.into(),
            fields,
        }))
    }

    /// Convenience: allocates a vector.
    pub fn vector(&mut self, items: Vec<JValue>) -> JValue {
        JValue::Ref(self.alloc(JObject::Vector(items)))
    }

    /// Convenience: allocates an array.
    pub fn array(&mut self, items: Vec<JValue>) -> JValue {
        JValue::Ref(self.alloc(JObject::Array(items)))
    }
}

fn err<T>(m: impl Into<String>) -> Result<T, ValueError> {
    Err(ValueError(m.into()))
}

/// Converts between Java object graphs and neutral values.
pub struct JCodec<'u> {
    uni: &'u Universe,
}

impl<'u> JCodec<'u> {
    /// Creates a codec resolving class names against `uni`.
    pub fn new(uni: &'u Universe) -> Self {
        JCodec { uni }
    }

    /// Converts a Java value of declared type `ty` to a neutral value.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError`] on shape mismatches, `non-null`/`no-alias`
    /// violations, or constructs needing annotations (unannotated
    /// `Vector`s, dynamic values).
    pub fn to_mvalue(&self, heap: &JHeap, ty: &Stype, v: &JValue) -> Result<MValue, ValueError> {
        let mut aliases = HashSet::new();
        self.to_m(heap, ty, &Ann::default(), v, &mut aliases, 0)
    }

    /// Builds a Java value of declared type `ty` from a neutral value,
    /// allocating objects into `heap`.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError`] on shape mismatches.
    pub fn from_mvalue(
        &self,
        heap: &mut JHeap,
        ty: &Stype,
        v: &MValue,
    ) -> Result<JValue, ValueError> {
        self.from_m(heap, ty, &Ann::default(), v, 0)
    }

    #[allow(clippy::too_many_arguments)]
    fn to_m(
        &self,
        heap: &JHeap,
        ty: &Stype,
        ctx: &Ann,
        v: &JValue,
        aliases: &mut HashSet<JRef>,
        depth: usize,
    ) -> Result<MValue, ValueError> {
        if depth > 1024 {
            return err("object graph too deep (cyclic data under a non-recursive type?)");
        }
        let ann = ctx.merge_under(&ty.ann);
        match &ty.node {
            SNode::Prim(p) => prim_to_m(*p, &ann, v),
            SNode::Str => match v {
                JValue::Ref(r) => match heap.get(*r) {
                    JObject::Str(s) => Ok(MValue::string(s)),
                    other => err(format!("expected a String object, found {other:?}")),
                },
                JValue::Null => err("null String (annotate the reference nullable if intended)"),
                other => err(format!("expected a String reference, found {other:?}")),
            },
            SNode::Named(n) => {
                let decl = self
                    .uni
                    .get(n)
                    .ok_or_else(|| ValueError(format!("unknown class `{n}`")))?
                    .clone();
                let mut inner = ann.clone();
                inner.non_null = false;
                inner.no_alias = false;
                self.to_m(heap, &decl.ty, &inner, v, aliases, depth + 1)
            }
            SNode::Pointer(target) => {
                match v {
                    JValue::Null => {
                        if ann.non_null {
                            err("null found in a reference annotated non-null")
                        } else {
                            Ok(MValue::null())
                        }
                    }
                    JValue::Ref(r) => {
                        if ann.no_alias && !aliases.insert(*r) {
                            return err(format!(
                                "aliasing detected at object #{} under a no-alias annotation",
                                r.0
                            ));
                        }
                        // Pass collection annotations through the pointer.
                        let inner = Ann {
                            element: ann.element.clone(),
                            ..Ann::default()
                        };
                        let m = self.to_m(heap, target, &inner, v, aliases, depth + 1)?;
                        Ok(if ann.non_null { m } else { MValue::some(m) })
                    }
                    other => err(format!("expected a reference, found {other:?}")),
                }
            }
            SNode::Array { elem, len } => match v {
                JValue::Ref(r) => match heap.get(*r) {
                    JObject::Array(items) => {
                        let converted = items
                            .iter()
                            .map(|item| {
                                self.to_m(heap, elem, &Ann::default(), item, aliases, depth + 1)
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        match (len, &ann.length) {
                            (ArrayLen::Fixed(n), _) | (_, Some(LengthAnn::Static(n)))
                                if matches!(len, ArrayLen::Fixed(_))
                                    || matches!(ann.length, Some(LengthAnn::Static(_))) =>
                            {
                                if converted.len() != *n {
                                    return err(format!(
                                        "array has {} elements, type expects {n}",
                                        converted.len()
                                    ));
                                }
                                Ok(MValue::Record(converted))
                            }
                            _ => Ok(MValue::List(converted)),
                        }
                    }
                    other => err(format!("expected an array object, found {other:?}")),
                },
                JValue::Null => err("null array (Java arrays convert as non-null collections)"),
                other => err(format!("expected an array reference, found {other:?}")),
            },
            SNode::Sequence(elem) => {
                self.collection_to_m(heap, &ann, Some(elem), v, aliases, depth)
            }
            SNode::Struct(fields) => {
                // IDL structs cross into Java as value instances.
                let fields = fields.clone();
                self.instance_to_m(heap, &fields, v, aliases, depth)
            }
            SNode::Class {
                fields, extends, ..
            } => {
                if self.is_collection(extends.as_deref()) {
                    return self.collection_to_m(heap, &ann, None, v, aliases, depth);
                }
                if ann.pass_mode == Some(PassMode::ByReference) {
                    return err("by-reference objects convert at invocation time, not as data");
                }
                let fields = fields.clone();
                self.instance_to_m(heap, &fields, v, aliases, depth)
            }
            SNode::Enum(members) => match v {
                JValue::Int(i) if (*i as usize) < members.len() && *i >= 0 => {
                    Ok(MValue::Int(*i as i128))
                }
                other => err(format!("expected an enum ordinal, found {other:?}")),
            },
            other => err(format!("Java values of this type are not data: {other:?}")),
        }
    }

    fn collection_to_m(
        &self,
        heap: &JHeap,
        ann: &Ann,
        inline_elem: Option<&Stype>,
        v: &JValue,
        aliases: &mut HashSet<JRef>,
        depth: usize,
    ) -> Result<MValue, ValueError> {
        let JValue::Ref(r) = v else {
            return err(format!("expected a collection reference, found {v:?}"));
        };
        let items = match heap.get(*r) {
            JObject::Vector(items) | JObject::Array(items) => items,
            other => return err(format!("expected a Vector, found {other:?}")),
        };
        // Element conversion: the `element` annotation names the declared
        // element class; without it the collection holds dynamic values,
        // which need annotation (paper §3.4).
        match (&ann.element, inline_elem) {
            (Some(elem_name), _) => {
                let elem_ty = Stype::pointer(Stype::named(elem_name.clone())).with_ann(|a| {
                    a.non_null = ann.non_null;
                });
                let converted = items
                    .iter()
                    .map(|item| {
                        self.to_m(heap, &elem_ty, &Ann::default(), item, aliases, depth + 1)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(MValue::List(converted))
            }
            (None, Some(elem)) => {
                let converted = items
                    .iter()
                    .map(|item| self.to_m(heap, elem, &Ann::default(), item, aliases, depth + 1))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(MValue::List(converted))
            }
            (None, None) => err(
                "collection has no element annotation: annotate it with element=<Class> \
                 (paper §3.4: \"PointVector can only contain non-null Point objects\")",
            ),
        }
    }

    fn instance_to_m(
        &self,
        heap: &JHeap,
        fields: &[mockingbird_stype::ast::Field],
        v: &JValue,
        aliases: &mut HashSet<JRef>,
        depth: usize,
    ) -> Result<MValue, ValueError> {
        match v {
            JValue::Ref(r) => match heap.get(*r) {
                JObject::Instance { fields: jvals, .. } => {
                    if jvals.len() != fields.len() {
                        return err(format!(
                            "instance has {} fields, class declares {}",
                            jvals.len(),
                            fields.len()
                        ));
                    }
                    let items = fields
                        .iter()
                        .zip(jvals)
                        .map(|(f, jv)| {
                            self.to_m(heap, &f.ty, &Ann::default(), jv, aliases, depth + 1)
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(MValue::Record(items))
                }
                other => err(format!("expected an instance, found {other:?}")),
            },
            JValue::Null => err("null instance (wrap the use in a nullable reference)"),
            other => err(format!("expected an instance reference, found {other:?}")),
        }
    }

    #[allow(clippy::wrong_self_convention)] // `from_m` mirrors `to_m` on the codec
    fn from_m(
        &self,
        heap: &mut JHeap,
        ty: &Stype,
        ctx: &Ann,
        v: &MValue,
        depth: usize,
    ) -> Result<JValue, ValueError> {
        if depth > 1024 {
            return err("value nesting too deep");
        }
        let ann = ctx.merge_under(&ty.ann);
        match &ty.node {
            SNode::Prim(p) => prim_from_m(*p, &ann, v),
            SNode::Str => match v.as_string() {
                Some(s) => Ok(heap.string(s)),
                None => err(format!("expected a character list for String, got {v}")),
            },
            SNode::Named(n) => {
                let decl = self
                    .uni
                    .get(n)
                    .ok_or_else(|| ValueError(format!("unknown class `{n}`")))?
                    .clone();
                let mut inner = ann.clone();
                inner.non_null = false;
                inner.no_alias = false;
                self.from_m(heap, &decl.ty, &inner, v, depth + 1)
            }
            SNode::Pointer(target) => {
                let inner_value = if ann.non_null {
                    Some(v)
                } else {
                    match v {
                        MValue::Choice { index: 0, .. } => None,
                        MValue::Choice { index: 1, value } => Some(value.as_ref()),
                        other => {
                            return err(format!(
                                "nullable reference expects a Choice value, got {other}"
                            ))
                        }
                    }
                };
                match inner_value {
                    None => Ok(JValue::Null),
                    Some(inner) => {
                        let passed = Ann {
                            element: ann.element.clone(),
                            ..Ann::default()
                        };
                        self.from_m(heap, target, &passed, inner, depth + 1)
                    }
                }
            }
            SNode::Array { elem, len } => {
                let items: Vec<&MValue> = match (v, len) {
                    (MValue::Record(items), ArrayLen::Fixed(n)) => {
                        if items.len() != *n {
                            return err(format!("expected {n} elements, got {}", items.len()));
                        }
                        items.iter().collect()
                    }
                    (MValue::List(items), _) => items.iter().collect(),
                    (other, _) => return err(format!("expected array elements, got {other}")),
                };
                let converted = items
                    .into_iter()
                    .map(|item| self.from_m(heap, elem, &Ann::default(), item, depth + 1))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(heap.array(converted))
            }
            SNode::Sequence(elem) => {
                let MValue::List(items) = v else {
                    return err(format!("expected a list for a collection, got {v}"));
                };
                let converted = items
                    .iter()
                    .map(|item| self.from_m(heap, elem, &Ann::default(), item, depth + 1))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(heap.vector(converted))
            }
            SNode::Struct(fields) => {
                let MValue::Record(items) = v else {
                    return err(format!("expected a record for a struct instance, got {v}"));
                };
                if items.len() != fields.len() {
                    return err(format!(
                        "struct declares {} fields, value has {}",
                        fields.len(),
                        items.len()
                    ));
                }
                let fields = fields.clone();
                let converted = fields
                    .iter()
                    .zip(items)
                    .map(|(f, item)| self.from_m(heap, &f.ty, &Ann::default(), item, depth + 1))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(heap.instance("", converted))
            }
            SNode::Class {
                fields, extends, ..
            } => {
                if self.is_collection(extends.as_deref()) {
                    let MValue::List(items) = v else {
                        return err(format!("expected a list for a Vector subclass, got {v}"));
                    };
                    let elem_name = ann
                        .element
                        .clone()
                        .ok_or_else(|| ValueError("collection has no element annotation".into()))?;
                    let elem_ty = Stype::pointer(Stype::named(elem_name))
                        .with_ann(|a| a.non_null = ann.non_null);
                    let converted = items
                        .iter()
                        .map(|item| self.from_m(heap, &elem_ty, &Ann::default(), item, depth + 1))
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(heap.vector(converted));
                }
                let MValue::Record(items) = v else {
                    return err(format!("expected a record for a class instance, got {v}"));
                };
                if items.len() != fields.len() {
                    return err(format!(
                        "class declares {} fields, value has {}",
                        fields.len(),
                        items.len()
                    ));
                }
                let converted = fields
                    .iter()
                    .zip(items)
                    .map(|(f, item)| self.from_m(heap, &f.ty, &Ann::default(), item, depth + 1))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(heap.instance("", converted))
            }
            SNode::Enum(members) => match v {
                MValue::Int(i) if *i >= 0 && (*i as usize) < members.len() => {
                    Ok(JValue::Int(*i as i32))
                }
                other => err(format!("expected an enum ordinal, got {other}")),
            },
            other => err(format!("cannot build Java data of this type: {other:?}")),
        }
    }

    fn is_collection(&self, extends: Option<&str>) -> bool {
        let mut cur = extends;
        let mut hops = 0;
        while let Some(name) = cur {
            if name == JAVA_VECTOR || name == "java.util.AbstractList" {
                return true;
            }
            hops += 1;
            if hops > 64 {
                return false;
            }
            cur = match self.uni.get(name) {
                Some(decl) => match &decl.ty.node {
                    SNode::Class { extends, .. } => extends.as_deref(),
                    _ => None,
                },
                None => None,
            };
        }
        false
    }
}

fn prim_to_m(p: Prim, ann: &Ann, v: &JValue) -> Result<MValue, ValueError> {
    match (p, v) {
        (Prim::Bool, JValue::Bool(b)) => Ok(MValue::Int(*b as i128)),
        (Prim::I8, JValue::Byte(x)) => Ok(MValue::Int(*x as i128)),
        (Prim::I16, JValue::Short(x)) => Ok(MValue::Int(*x as i128)),
        (Prim::Char16, JValue::Char(c)) => {
            if ann.as_integer {
                Ok(MValue::Int(*c as i128))
            } else {
                Ok(MValue::Char(
                    char::from_u32(*c as u32).unwrap_or('\u{FFFD}'),
                ))
            }
        }
        (Prim::I32, JValue::Int(x)) => Ok(MValue::Int(*x as i128)),
        (Prim::I64, JValue::Long(x)) => Ok(MValue::Int(*x as i128)),
        (Prim::F32, JValue::Float(x)) => Ok(MValue::Real(*x as f64)),
        (Prim::F64, JValue::Double(x)) => Ok(MValue::Real(*x)),
        (Prim::Void, _) => Ok(MValue::Unit),
        (Prim::Any, _) => {
            err("dynamic (Object-typed) values need an element/type annotation to convert")
        }
        (p, v) => err(format!("Java value {v:?} does not fit primitive {p:?}")),
    }
}

fn prim_from_m(p: Prim, ann: &Ann, v: &MValue) -> Result<JValue, ValueError> {
    match (p, v) {
        (Prim::Bool, MValue::Int(x)) => Ok(JValue::Bool(*x != 0)),
        (Prim::I8, MValue::Int(x)) => Ok(JValue::Byte(*x as i8)),
        (Prim::I16, MValue::Int(x)) => Ok(JValue::Short(*x as i16)),
        (Prim::Char16, MValue::Char(c)) if !ann.as_integer => Ok(JValue::Char(*c as u16)),
        (Prim::Char16, MValue::Int(x)) if ann.as_integer => Ok(JValue::Char(*x as u16)),
        (Prim::I32, MValue::Int(x)) => Ok(JValue::Int(*x as i32)),
        (Prim::I64, MValue::Int(x)) => Ok(JValue::Long(*x as i64)),
        (Prim::F32, MValue::Real(x)) => Ok(JValue::Float(*x as f32)),
        (Prim::F64, MValue::Real(x)) => Ok(JValue::Double(*x)),
        (Prim::Void, MValue::Unit) => Ok(JValue::Null),
        (p, v) => err(format!("value {v} does not fit Java primitive {p:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_stype::ast::{Decl, Field, Lang};

    fn paper_universe() -> Universe {
        let mut u = Universe::new();
        u.insert(Decl::new(
            "Point",
            Lang::Java,
            Stype::class(
                vec![Field::new("x", Stype::f32()), Field::new("y", Stype::f32())],
                vec![],
            ),
        ))
        .unwrap();
        u.insert(Decl::new(
            "Line",
            Lang::Java,
            Stype::class(
                vec![
                    Field::new(
                        "start",
                        Stype::pointer(Stype::named("Point")).with_ann(|a| {
                            a.non_null = true;
                            a.no_alias = true;
                        }),
                    ),
                    Field::new(
                        "end",
                        Stype::pointer(Stype::named("Point")).with_ann(|a| {
                            a.non_null = true;
                            a.no_alias = true;
                        }),
                    ),
                ],
                vec![],
            ),
        ))
        .unwrap();
        u.insert(Decl::new(
            "PointVector",
            Lang::Java,
            Stype::class_extending(vec![], vec![], JAVA_VECTOR).with_ann(|a| {
                a.element = Some("Point".into());
                a.non_null = true;
            }),
        ))
        .unwrap();
        u
    }

    #[test]
    fn point_instance_converts_to_record() {
        let uni = paper_universe();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        let p = heap.instance("Point", vec![JValue::Float(1.0), JValue::Float(2.0)]);
        let m = codec.to_mvalue(&heap, &Stype::named("Point"), &p).unwrap();
        assert_eq!(
            m,
            MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)])
        );
        let back = codec
            .from_mvalue(&mut heap, &Stype::named("Point"), &m)
            .unwrap();
        let m2 = codec
            .to_mvalue(&heap, &Stype::named("Point"), &back)
            .unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn line_with_non_null_points() {
        let uni = paper_universe();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        let p1 = heap.instance("Point", vec![JValue::Float(0.0), JValue::Float(0.0)]);
        let p2 = heap.instance("Point", vec![JValue::Float(1.0), JValue::Float(1.0)]);
        let line = heap.instance("Line", vec![p1, p2]);
        let m = codec
            .to_mvalue(&heap, &Stype::named("Line"), &line)
            .unwrap();
        assert_eq!(
            m,
            MValue::Record(vec![
                MValue::Record(vec![MValue::Real(0.0), MValue::Real(0.0)]),
                MValue::Record(vec![MValue::Real(1.0), MValue::Real(1.0)]),
            ])
        );
    }

    #[test]
    fn null_in_non_null_field_is_an_error() {
        let uni = paper_universe();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        let p1 = heap.instance("Point", vec![JValue::Float(0.0), JValue::Float(0.0)]);
        let line = heap.instance("Line", vec![p1, JValue::Null]);
        let e = codec
            .to_mvalue(&heap, &Stype::named("Line"), &line)
            .unwrap_err();
        assert!(e.to_string().contains("non-null"));
    }

    #[test]
    fn aliasing_in_no_alias_field_is_an_error() {
        let uni = paper_universe();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        let p = heap.instance("Point", vec![JValue::Float(0.0), JValue::Float(0.0)]);
        let line = heap.instance("Line", vec![p, p]);
        let e = codec
            .to_mvalue(&heap, &Stype::named("Line"), &line)
            .unwrap_err();
        assert!(e.to_string().contains("aliasing"));
    }

    #[test]
    fn point_vector_converts_to_list() {
        let uni = paper_universe();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        let p1 = heap.instance("Point", vec![JValue::Float(1.0), JValue::Float(2.0)]);
        let p2 = heap.instance("Point", vec![JValue::Float(3.0), JValue::Float(4.0)]);
        let pv = heap.vector(vec![p1, p2]);
        let m = codec
            .to_mvalue(&heap, &Stype::named("PointVector"), &pv)
            .unwrap();
        assert_eq!(
            m,
            MValue::List(vec![
                MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]),
                MValue::Record(vec![MValue::Real(3.0), MValue::Real(4.0)]),
            ])
        );
        let back = codec
            .from_mvalue(&mut heap, &Stype::named("PointVector"), &m)
            .unwrap();
        let m2 = codec
            .to_mvalue(&heap, &Stype::named("PointVector"), &back)
            .unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn unannotated_vector_is_an_error_with_guidance() {
        let mut uni = Universe::new();
        uni.insert(Decl::new(
            "Bag",
            Lang::Java,
            Stype::class_extending(vec![], vec![], JAVA_VECTOR),
        ))
        .unwrap();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        let bag = heap.vector(vec![]);
        let e = codec
            .to_mvalue(&heap, &Stype::named("Bag"), &bag)
            .unwrap_err();
        assert!(e.to_string().contains("element="), "{e}");
    }

    #[test]
    fn strings_and_arrays() {
        let uni = Universe::new();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        let s = heap.string("hi");
        assert_eq!(
            codec.to_mvalue(&heap, &Stype::string(), &s).unwrap(),
            MValue::string("hi")
        );
        let arr = heap.array(vec![JValue::Int(1), JValue::Int(2)]);
        let ty = Stype::array_indefinite(Stype::i32());
        assert_eq!(
            codec.to_mvalue(&heap, &ty, &arr).unwrap(),
            MValue::List(vec![MValue::Int(1), MValue::Int(2)])
        );
        let back = codec
            .from_mvalue(&mut heap, &ty, &MValue::List(vec![MValue::Int(9)]))
            .unwrap();
        assert_eq!(
            codec.to_mvalue(&heap, &ty, &back).unwrap(),
            MValue::List(vec![MValue::Int(9)])
        );
    }

    #[test]
    fn nullable_reference_round_trip() {
        let uni = paper_universe();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        let ty = Stype::pointer(Stype::named("Point"));
        assert_eq!(
            codec.to_mvalue(&heap, &ty, &JValue::Null).unwrap(),
            MValue::null()
        );
        let p = heap.instance("Point", vec![JValue::Float(5.0), JValue::Float(6.0)]);
        let m = codec.to_mvalue(&heap, &ty, &p).unwrap();
        assert!(matches!(m, MValue::Choice { index: 1, .. }));
        let back = codec.from_mvalue(&mut heap, &ty, &MValue::null()).unwrap();
        assert_eq!(back, JValue::Null);
    }

    #[test]
    fn primitive_vocabulary_round_trips() {
        let uni = Universe::new();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        for (ty, jv, mv) in [
            (Stype::boolean(), JValue::Bool(true), MValue::Int(1)),
            (Stype::i8(), JValue::Byte(-3), MValue::Int(-3)),
            (Stype::i16(), JValue::Short(300), MValue::Int(300)),
            (Stype::char16(), JValue::Char('Z' as u16), MValue::Char('Z')),
            (Stype::i32(), JValue::Int(-7), MValue::Int(-7)),
            (Stype::i64(), JValue::Long(1 << 40), MValue::Int(1 << 40)),
            (Stype::f32(), JValue::Float(1.5), MValue::Real(1.5)),
            (Stype::f64(), JValue::Double(2.5), MValue::Real(2.5)),
        ] {
            assert_eq!(codec.to_mvalue(&heap, &ty, &jv).unwrap(), mv);
            assert_eq!(codec.from_mvalue(&mut heap, &ty, &mv).unwrap(), jv);
        }
    }

    #[test]
    fn dynamic_values_need_annotation() {
        let uni = Universe::new();
        let codec = JCodec::new(&uni);
        let heap = JHeap::new();
        let e = codec
            .to_mvalue(&heap, &Stype::any(), &JValue::Int(1))
            .unwrap_err();
        assert!(e.to_string().contains("annotation"));
    }
}
