//! Property-style tests: random C-representable types and values must
//! survive memory-image round trips on both target models, and random
//! Java object graphs must survive heap round trips. Shapes come from a
//! deterministic seeded RNG so failures replay exactly.

use mockingbird_rng::StdRng;

use mockingbird_stype::ast::{Field, Stype, Universe};

use crate::cmem::{CCodec, CMemory, CTarget, ReadContext};
use crate::java::{JCodec, JHeap};
use crate::MValue;

/// A C-representable type paired with a value inhabiting it.
#[derive(Debug, Clone)]
enum CShape {
    Bool(bool),
    I8(i8),
    U8(u8),
    I16(i16),
    U16(u16),
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    Char(u8),
    Struct(Vec<CShape>),
    Array(Vec<CShape>),
    Nullable(Option<Box<CShape>>),
}

impl CShape {
    fn stype(&self) -> Stype {
        match self {
            CShape::Bool(_) => Stype::boolean(),
            CShape::I8(_) => Stype::i8(),
            CShape::U8(_) => Stype::u8(),
            CShape::I16(_) => Stype::i16(),
            CShape::U16(_) => Stype::u16(),
            CShape::I32(_) => Stype::i32(),
            CShape::I64(_) => Stype::i64(),
            CShape::F32(_) => Stype::f32(),
            CShape::F64(_) => Stype::f64(),
            CShape::Char(_) => Stype::char8(),
            CShape::Struct(fs) => Stype::struct_of(
                fs.iter()
                    .enumerate()
                    .map(|(i, f)| Field::new(format!("f{i}"), f.stype()))
                    .collect(),
            ),
            CShape::Array(es) => {
                let elem = es.first().map(|e| e.stype()).unwrap_or_else(Stype::i32);
                Stype::array_fixed(elem, es.len())
            }
            CShape::Nullable(inner) => {
                let target = match inner {
                    Some(v) => v.stype(),
                    None => Stype::i32(),
                };
                Stype::pointer(target)
            }
        }
    }

    fn value(&self) -> MValue {
        match self {
            CShape::Bool(b) => MValue::Int(*b as i128),
            CShape::I8(v) => MValue::Int(*v as i128),
            CShape::U8(v) => MValue::Int(*v as i128),
            CShape::I16(v) => MValue::Int(*v as i128),
            CShape::U16(v) => MValue::Int(*v as i128),
            CShape::I32(v) => MValue::Int(*v as i128),
            CShape::I64(v) => MValue::Int(*v as i128),
            CShape::F32(v) => MValue::Real(*v as f64),
            CShape::F64(v) => MValue::Real(*v),
            CShape::Char(b) => MValue::Char(*b as char),
            CShape::Struct(fs) => MValue::Record(fs.iter().map(CShape::value).collect()),
            CShape::Array(es) => MValue::Record(es.iter().map(CShape::value).collect()),
            CShape::Nullable(None) => MValue::null(),
            CShape::Nullable(Some(v)) => MValue::some(v.value()),
        }
    }
}

fn random_leaf(rng: &mut StdRng) -> CShape {
    match rng.gen_range(0..10) {
        0 => CShape::Bool(rng.gen_bool(0.5)),
        1 => CShape::I8(rng.gen_range(i8::MIN..=i8::MAX)),
        2 => CShape::U8(rng.gen_range(u8::MIN..=u8::MAX)),
        3 => CShape::I16(rng.gen_range(i16::MIN..=i16::MAX)),
        4 => CShape::U16(rng.gen_range(u16::MIN..=u16::MAX)),
        5 => CShape::I32(rng.gen_range(i32::MIN..=i32::MAX)),
        6 => CShape::I64(rng.gen_range(i64::MIN..=i64::MAX)),
        7 => CShape::F32(rng.gen_range(-1.0e30f32..1.0e30)),
        8 => CShape::F64(rng.gen_range(-1.0e300f64..1.0e300)),
        _ => CShape::Char(rng.gen_range(0x20u8..0x7F)),
    }
}

fn random_shape(rng: &mut StdRng, depth: usize) -> CShape {
    if depth == 0 {
        return random_leaf(rng);
    }
    match rng.gen_range(0..4) {
        0 => {
            let n = rng.gen_range(1..4);
            CShape::Struct((0..n).map(|_| random_shape(rng, depth - 1)).collect())
        }
        1 => {
            // Arrays are homogeneous: repeat one shape so element types
            // are equal by construction.
            let elem = random_shape(rng, depth - 1);
            let n = rng.gen_range(1usize..4);
            CShape::Array(vec![elem; n])
        }
        2 => {
            // Java references point at objects, so nullable targets are
            // always struct-shaped (the C side can point at anything, but
            // the shared shape keeps both codecs in play).
            if rng.gen_bool(0.4) {
                CShape::Nullable(None)
            } else {
                let n = rng.gen_range(1..3);
                let fields = (0..n).map(|_| random_shape(rng, depth - 1)).collect();
                CShape::Nullable(Some(Box::new(CShape::Struct(fields))))
            }
        }
        _ => random_leaf(rng),
    }
}

fn for_shapes(cases: u64, mut prop: impl FnMut(&CShape)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1usize..=3);
        let shape = random_shape(&mut rng, depth);
        prop(&shape);
    }
}

#[test]
fn c_memory_round_trip_lp64_le() {
    for_shapes(64, |s| {
        let uni = Universe::new();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let ty = s.stype();
        let v = s.value();
        let addr = codec.write_new(&mut mem, &ty, &v).unwrap();
        let back = codec
            .read_at(&mem, &ty, addr, &ReadContext::default())
            .unwrap();
        assert_eq!(back, v, "for {s:?}");
    });
}

#[test]
fn c_memory_round_trip_ilp32_be() {
    for_shapes(64, |s| {
        let uni = Universe::new();
        let codec = CCodec::new(&uni, CTarget::ILP32_BE);
        let mut mem = CMemory::new(CTarget::ILP32_BE);
        let ty = s.stype();
        let v = s.value();
        let addr = codec.write_new(&mut mem, &ty, &v).unwrap();
        let back = codec
            .read_at(&mem, &ty, addr, &ReadContext::default())
            .unwrap();
        assert_eq!(back, v, "for {s:?}");
    });
}

#[test]
fn layouts_are_aligned_and_sized() {
    for_shapes(64, |s| {
        let uni = Universe::new();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let ty = s.stype();
        let l = codec.layout_of(&ty).unwrap();
        assert!(l.align.is_power_of_two());
        assert_eq!(l.size % l.align, 0, "size is a multiple of alignment");
        assert!(l.align <= 8);
    });
}

/// Java heap round trips for struct-like shapes (structs become
/// instances; nullable pointers become references).
#[test]
fn java_heap_round_trip() {
    // Java has no unsigned/char8: skip shapes containing them.
    fn javaable(s: &CShape) -> bool {
        match s {
            CShape::U8(_) | CShape::U16(_) | CShape::Char(_) => false,
            CShape::Struct(fs) => fs.iter().all(javaable),
            CShape::Array(es) => es.iter().all(javaable),
            CShape::Nullable(Some(v)) => javaable(v),
            _ => true,
        }
    }
    let mut tested = 0usize;
    for_shapes(96, |s| {
        if !javaable(s) {
            return;
        }
        tested += 1;
        let uni = Universe::new();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        let ty = s.stype();
        let v = s.value();
        let jv = codec.from_mvalue(&mut heap, &ty, &v).unwrap();
        let back = codec.to_mvalue(&heap, &ty, &jv).unwrap();
        assert_eq!(back, v, "for {s:?}");
    });
    assert!(
        tested >= 16,
        "enough Java-compatible shapes sampled ({tested})"
    );
}
