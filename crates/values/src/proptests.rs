//! Property tests: random C-representable types and values must survive
//! memory-image round trips on both target models, and random Java
//! object graphs must survive heap round trips.

use proptest::prelude::*;

use mockingbird_stype::ast::{Field, Stype, Universe};

use crate::cmem::{CCodec, CMemory, CTarget, ReadContext};
use crate::java::{JCodec, JHeap};
use crate::MValue;

/// A C-representable type paired with a value inhabiting it.
#[derive(Debug, Clone)]
enum CShape {
    Bool(bool),
    I8(i8),
    U8(u8),
    I16(i16),
    U16(u16),
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    Char(u8),
    Struct(Vec<CShape>),
    Array(Vec<CShape>),
    Nullable(Option<Box<CShape>>),
}

impl CShape {
    fn stype(&self) -> Stype {
        match self {
            CShape::Bool(_) => Stype::boolean(),
            CShape::I8(_) => Stype::i8(),
            CShape::U8(_) => Stype::u8(),
            CShape::I16(_) => Stype::i16(),
            CShape::U16(_) => Stype::u16(),
            CShape::I32(_) => Stype::i32(),
            CShape::I64(_) => Stype::i64(),
            CShape::F32(_) => Stype::f32(),
            CShape::F64(_) => Stype::f64(),
            CShape::Char(_) => Stype::char8(),
            CShape::Struct(fs) => Stype::struct_of(
                fs.iter()
                    .enumerate()
                    .map(|(i, f)| Field::new(format!("f{i}"), f.stype()))
                    .collect(),
            ),
            CShape::Array(es) => {
                let elem = es.first().map(|e| e.stype()).unwrap_or_else(Stype::i32);
                Stype::array_fixed(elem, es.len())
            }
            CShape::Nullable(inner) => {
                let target = match inner {
                    Some(v) => v.stype(),
                    None => Stype::i32(),
                };
                Stype::pointer(target)
            }
        }
    }

    fn value(&self) -> MValue {
        match self {
            CShape::Bool(b) => MValue::Int(*b as i128),
            CShape::I8(v) => MValue::Int(*v as i128),
            CShape::U8(v) => MValue::Int(*v as i128),
            CShape::I16(v) => MValue::Int(*v as i128),
            CShape::U16(v) => MValue::Int(*v as i128),
            CShape::I32(v) => MValue::Int(*v as i128),
            CShape::I64(v) => MValue::Int(*v as i128),
            CShape::F32(v) => MValue::Real(*v as f64),
            CShape::F64(v) => MValue::Real(*v),
            CShape::Char(b) => MValue::Char(*b as char),
            CShape::Struct(fs) => MValue::Record(fs.iter().map(CShape::value).collect()),
            CShape::Array(es) => MValue::Record(es.iter().map(CShape::value).collect()),
            CShape::Nullable(None) => MValue::null(),
            CShape::Nullable(Some(v)) => MValue::some(v.value()),
        }
    }
}

fn leaf() -> impl Strategy<Value = CShape> {
    prop_oneof![
        any::<bool>().prop_map(CShape::Bool),
        any::<i8>().prop_map(CShape::I8),
        any::<u8>().prop_map(CShape::U8),
        any::<i16>().prop_map(CShape::I16),
        any::<u16>().prop_map(CShape::U16),
        any::<i32>().prop_map(CShape::I32),
        any::<i64>().prop_map(CShape::I64),
        (-1.0e30f32..1.0e30).prop_map(CShape::F32),
        (-1.0e300f64..1.0e300).prop_map(CShape::F64),
        (0x20u8..0x7F).prop_map(CShape::Char),
    ]
}

fn shape() -> impl Strategy<Value = CShape> {
    leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(CShape::Struct),
            // Arrays: homogeneous, so replicate one element's *type* by
            // cloning its shape with fresh values is overkill — use the
            // same shape repeated (types equal by construction).
            (inner.clone(), 1usize..4)
                .prop_map(|(e, n)| CShape::Array(vec![e; n])),
            // Java references point at objects, so nullable targets are
            // always struct-shaped (the C side can point at anything, but
            // the shared shape keeps both codecs in play).
            prop::option::of(
                prop::collection::vec(inner, 1..3).prop_map(CShape::Struct),
            )
            .prop_map(|o| CShape::Nullable(o.map(Box::new))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn c_memory_round_trip_lp64_le(s in shape()) {
        let uni = Universe::new();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let ty = s.stype();
        let v = s.value();
        let addr = codec.write_new(&mut mem, &ty, &v).unwrap();
        let back = codec.read_at(&mem, &ty, addr, &ReadContext::default()).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn c_memory_round_trip_ilp32_be(s in shape()) {
        let uni = Universe::new();
        let codec = CCodec::new(&uni, CTarget::ILP32_BE);
        let mut mem = CMemory::new(CTarget::ILP32_BE);
        let ty = s.stype();
        let v = s.value();
        let addr = codec.write_new(&mut mem, &ty, &v).unwrap();
        let back = codec.read_at(&mem, &ty, addr, &ReadContext::default()).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn layouts_are_aligned_and_sized(s in shape()) {
        let uni = Universe::new();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let ty = s.stype();
        let l = codec.layout_of(&ty).unwrap();
        prop_assert!(l.align.is_power_of_two());
        prop_assert_eq!(l.size % l.align, 0, "size is a multiple of alignment");
        prop_assert!(l.align <= 8);
    }

    /// Java heap round trips for struct-like shapes (structs become
    /// instances; nullable pointers become references).
    #[test]
    fn java_heap_round_trip(s in shape()) {
        // Arrays of nullable pointers etc. are fine; chars in Java are
        // 16-bit so the Latin-1 subset used here survives.
        let uni = Universe::new();
        let codec = JCodec::new(&uni);
        let mut heap = JHeap::new();
        // Java has no unsigned/char8: translate the C shape into its
        // Java-compatible skeleton by value round-trip through the C
        // type only when representable; otherwise skip.
        fn javaable(s: &CShape) -> bool {
            match s {
                CShape::U8(_) | CShape::U16(_) | CShape::Char(_) => false,
                CShape::Struct(fs) => fs.iter().all(javaable),
                CShape::Array(es) => es.iter().all(javaable),
                CShape::Nullable(Some(v)) => javaable(v),
                _ => true,
            }
        }
        prop_assume!(javaable(&s));
        let ty = s.stype();
        let v = s.value();
        let jv = codec.from_mvalue(&mut heap, &ty, &v).unwrap();
        let back = codec.to_mvalue(&heap, &ty, &jv).unwrap();
        prop_assert_eq!(back, v);
    }
}
