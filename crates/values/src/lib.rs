//! Runtime value models for Mockingbird stubs.
//!
//! A generated stub moves *values* between two representations. This
//! crate provides the three value models the stubs operate on:
//!
//! - [`mvalue::MValue`] — the neutral value form mirroring Mtype
//!   structure; the coercion-plan VM converts `MValue → MValue`;
//! - [`cmem`] — a simulated C address space with faithful struct layout
//!   (alignment, padding, pointer width, endianness), so the C side of a
//!   stub reads and writes real memory images;
//! - [`java`] — a Java heap of object graphs (instances, arrays,
//!   strings, vectors, with null and aliasing), so the Java side of a
//!   stub traverses real reference structure.
//!
//! Both language models convert to and from `MValue` *guided by the
//! annotated Stype declaration*, mirroring the Stype→Mtype translation
//! rules exactly: a `non-null` annotated pointer reads without a Choice
//! wrapper, an indefinite array reads as a list, a `no-alias` annotation
//! is checked against the actual object graph.

pub mod cmem;
pub mod java;
pub mod mvalue;

pub use cmem::{CCodec, CMemory, CTarget, Endian, Layout, LayoutError, ReadContext};
pub use java::{JCodec, JHeap, JObject, JRef, JValue};
pub use mvalue::{list_element_type, typecheck, MValue, PortRef, ValueError};

#[cfg(test)]
mod proptests;
