//! The neutral value form.

use std::fmt;

use mockingbird_mtype::{MtypeGraph, MtypeId, MtypeKind};

/// An opaque reference to a port registered with the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortRef(pub u64);

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port#{}", self.0)
    }
}

/// A value structured like an Mtype.
///
/// `List` is the value form of the canonical recursive collection Mtype
/// (`Rec X. Choice(Unit, Record(elem, X))`); representing it natively
/// keeps conversion iterative instead of one stack frame per element.
#[derive(Debug, Clone, PartialEq)]
pub enum MValue {
    /// An integer.
    Int(i128),
    /// A character.
    Char(char),
    /// A floating point number (held at full precision; narrowing happens
    /// at the language boundary).
    Real(f64),
    /// The unit value.
    Unit,
    /// An ordered aggregate.
    Record(Vec<MValue>),
    /// One alternative of a Choice, by index.
    Choice {
        /// Which alternative is active.
        index: usize,
        /// The alternative's value.
        value: Box<MValue>,
    },
    /// A homogeneous ordered collection of indefinite size.
    List(Vec<MValue>),
    /// A reference to a port.
    Port(PortRef),
    /// A dynamically typed value (the Any-like extension): a rendering of
    /// its Mtype plus the value itself.
    Dynamic {
        /// Display form of the value's Mtype, used for runtime checks.
        tag: String,
        /// The payload.
        value: Box<MValue>,
    },
}

impl MValue {
    /// Builds a string value (a list of characters).
    pub fn string(s: &str) -> MValue {
        MValue::List(s.chars().map(MValue::Char).collect())
    }

    /// Reads a string value back, if this is a list of characters.
    pub fn as_string(&self) -> Option<String> {
        match self {
            MValue::List(items) => items
                .iter()
                .map(|v| match v {
                    MValue::Char(c) => Some(*c),
                    _ => None,
                })
                .collect(),
            _ => None,
        }
    }

    /// The nil/none value of a nullable reference
    /// (`Choice(Unit, τ)` alternative 0).
    pub fn null() -> MValue {
        MValue::Choice {
            index: 0,
            value: Box::new(MValue::Unit),
        }
    }

    /// A present nullable reference (`Choice(Unit, τ)` alternative 1).
    pub fn some(value: MValue) -> MValue {
        MValue::Choice {
            index: 1,
            value: Box::new(value),
        }
    }
}

/// Errors from value/Mtype mismatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value error: {}", self.0)
    }
}

impl std::error::Error for ValueError {}

/// Checks that `value` inhabits the Mtype rooted at `ty` (ranges,
/// repertoire membership is not glyph-checked, arity, alternative
/// indices, list element types).
///
/// # Errors
///
/// Returns [`ValueError`] naming the first violation.
pub fn typecheck(graph: &MtypeGraph, ty: MtypeId, value: &MValue) -> Result<(), ValueError> {
    typecheck_at(graph, ty, value, 0)
}

fn typecheck_at(
    graph: &MtypeGraph,
    ty: MtypeId,
    value: &MValue,
    depth: usize,
) -> Result<(), ValueError> {
    if depth > 4096 {
        return Err(ValueError("value nesting exceeds supported depth".into()));
    }
    let ty = graph.resolve(ty);
    match (graph.kind(ty), value) {
        (MtypeKind::Integer(r), MValue::Int(v)) => {
            if r.contains(*v) {
                Ok(())
            } else {
                Err(ValueError(format!("integer {v} outside range {r}")))
            }
        }
        (MtypeKind::Character(_), MValue::Char(_)) => Ok(()),
        (MtypeKind::Real(_), MValue::Real(_)) => Ok(()),
        (MtypeKind::Unit, MValue::Unit) => Ok(()),
        (MtypeKind::Dynamic, MValue::Dynamic { .. }) => Ok(()),
        (MtypeKind::Port(_), MValue::Port(_)) => Ok(()),
        (MtypeKind::Record(children), MValue::Record(items)) => {
            if children.len() != items.len() {
                return Err(ValueError(format!(
                    "record arity: value has {} fields, type has {}",
                    items.len(),
                    children.len()
                )));
            }
            let children = children.clone();
            for (c, item) in children.iter().zip(items) {
                typecheck_at(graph, *c, item, depth + 1)?;
            }
            Ok(())
        }
        (MtypeKind::Choice(alts), MValue::Choice { index, value }) => {
            let alts = alts.clone();
            match alts.get(*index) {
                Some(&alt) => typecheck_at(graph, alt, value, depth + 1),
                None => Err(ValueError(format!(
                    "choice index {index} out of {} alternatives",
                    alts.len()
                ))),
            }
        }
        // A List inhabits the canonical list shape.
        (MtypeKind::Choice(_), MValue::List(items)) => {
            let elem = list_element_type(graph, ty)
                .ok_or_else(|| ValueError("list value against a non-list Choice".into()))?;
            for item in items {
                typecheck_at(graph, elem, item, depth + 1)?;
            }
            Ok(())
        }
        (kind, value) => Err(ValueError(format!(
            "value {value:?} does not inhabit {} Mtype",
            kind.tag()
        ))),
    }
}

pub use mockingbird_mtype::canon::list_element_type;

impl MValue {
    /// Depth-bounded rendering: values deeper than 64 constructors (or
    /// pathological data fed to error paths) print `…` instead of
    /// recursing without limit.
    fn fmt_depth(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        if depth > 64 {
            return write!(f, "…");
        }
        match self {
            MValue::Int(v) => write!(f, "{v}"),
            MValue::Char(c) => write!(f, "{c:?}"),
            MValue::Real(r) => write!(f, "{r}"),
            MValue::Unit => write!(f, "()"),
            MValue::Record(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    v.fmt_depth(f, depth + 1)?;
                }
                write!(f, ")")
            }
            MValue::Choice { index, value } => {
                write!(f, "#{index}(")?;
                value.fmt_depth(f, depth + 1)?;
                write!(f, ")")
            }
            MValue::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    v.fmt_depth(f, depth + 1)?;
                }
                write!(f, "]")
            }
            MValue::Port(p) => write!(f, "{p}"),
            MValue::Dynamic { tag, value } => {
                write!(f, "any<{tag}>(")?;
                value.fmt_depth(f, depth + 1)?;
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for MValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_depth(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_mtype::{IntRange, RealPrecision};

    #[test]
    fn typecheck_accepts_inhabitants() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(8));
        let r = g.real(RealPrecision::SINGLE);
        let rec = g.record(vec![i, r]);
        typecheck(
            &g,
            rec,
            &MValue::Record(vec![MValue::Int(5), MValue::Real(1.5)]),
        )
        .unwrap();
    }

    #[test]
    fn typecheck_rejects_range_violations_and_arity() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(8));
        assert!(typecheck(&g, i, &MValue::Int(128)).is_err());
        assert!(typecheck(&g, i, &MValue::Real(1.0)).is_err());
        let rec = g.record(vec![i, i]);
        assert!(typecheck(&g, rec, &MValue::Record(vec![MValue::Int(1)])).is_err());
    }

    #[test]
    fn typecheck_choice_and_nullable() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(8));
        let n = g.nullable(i);
        typecheck(&g, n, &MValue::null()).unwrap();
        typecheck(&g, n, &MValue::some(MValue::Int(3))).unwrap();
        assert!(typecheck(&g, n, &MValue::some(MValue::Real(0.0))).is_err());
        assert!(typecheck(
            &g,
            n,
            &MValue::Choice {
                index: 2,
                value: Box::new(MValue::Unit)
            }
        )
        .is_err());
    }

    #[test]
    fn lists_inhabit_recursive_collections() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let list = g.list_of(r);
        typecheck(
            &g,
            list,
            &MValue::List(vec![MValue::Real(1.0), MValue::Real(2.0)]),
        )
        .unwrap();
        typecheck(&g, list, &MValue::List(vec![])).unwrap();
        assert!(typecheck(&g, list, &MValue::List(vec![MValue::Int(1)])).is_err());
    }

    #[test]
    fn list_element_type_detects_canonical_shape() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::DOUBLE);
        let list = g.list_of(r);
        assert_eq!(list_element_type(&g, list), Some(r));
        let i = g.integer(IntRange::boolean());
        let plain = g.choice(vec![i, r]);
        assert_eq!(list_element_type(&g, plain), None);
    }

    #[test]
    fn string_round_trip() {
        let v = MValue::string("héllo");
        assert_eq!(v.as_string().as_deref(), Some("héllo"));
        assert_eq!(MValue::Int(3).as_string(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            MValue::Record(vec![MValue::Int(1), MValue::Real(2.0)]).to_string(),
            "(1, 2)"
        );
        assert_eq!(MValue::null().to_string(), "#0(())");
        assert_eq!(MValue::List(vec![MValue::Int(1)]).to_string(), "[1]");
        assert_eq!(MValue::Port(PortRef(7)).to_string(), "port#7");
    }
}
