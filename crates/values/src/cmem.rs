//! A simulated C address space with faithful data layout.
//!
//! The coercion plan "incorporates ... information related to the
//! concrete representation of their values in memory" (paper §4). This
//! module supplies that concrete representation: a byte-addressed heap,
//! C struct layout (alignment, padding, trailing padding), pointer
//! width and endianness per [`CTarget`], and a codec that moves
//! [`MValue`]s in and out of memory images guided by annotated Stypes.
//!
//! Mirroring the paper's prototype, *reading* a C `union` requires a
//! discriminator the declaration alone cannot supply (union support was
//! "currently incomplete", §6); the codec accepts an optional
//! discriminator callback and errors without one.

use std::collections::{HashMap, HashSet};
use std::fmt;

use mockingbird_stype::ann::{Ann, LengthAnn, PassMode};
use mockingbird_stype::ast::{ArrayLen, Prim, SNode, Stype, Universe};

use crate::mvalue::MValue;

/// Byte order of the simulated target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endian {
    /// Little-endian (x86, the paper's Windows 95/NT machines).
    Little,
    /// Big-endian (POWER, the paper's AIX machines).
    Big,
}

/// The simulated C target model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CTarget {
    /// Pointer size in bytes (8 for LP64, 4 for ILP32).
    pub ptr_size: usize,
    /// Byte order.
    pub endian: Endian,
}

impl CTarget {
    /// LP64 little-endian (modern x86-64).
    pub const LP64_LE: CTarget = CTarget {
        ptr_size: 8,
        endian: Endian::Little,
    };
    /// ILP32 big-endian (the paper's AIX/POWER machines).
    pub const ILP32_BE: CTarget = CTarget {
        ptr_size: 4,
        endian: Endian::Big,
    };
}

impl Default for CTarget {
    fn default() -> Self {
        CTarget::LP64_LE
    }
}

/// Errors from layout computation or memory codec operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutError(pub String);

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C layout error: {}", self.0)
    }
}

impl std::error::Error for LayoutError {}

fn err<T>(m: impl Into<String>) -> Result<T, LayoutError> {
    Err(LayoutError(m.into()))
}

/// Size and alignment of a C type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Size in bytes, including padding.
    pub size: usize,
    /// Alignment in bytes.
    pub align: usize,
}

impl Layout {
    fn scalar(size: usize) -> Layout {
        Layout {
            size,
            align: size.max(1),
        }
    }
}

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

/// A growable byte-addressed heap. Address 0 is reserved as NULL.
#[derive(Debug, Clone)]
pub struct CMemory {
    mem: Vec<u8>,
    target: CTarget,
}

impl CMemory {
    /// Creates an empty heap for the target model.
    pub fn new(target: CTarget) -> Self {
        // Reserve the null page's first bytes so no allocation is at 0.
        CMemory {
            mem: vec![0u8; 16],
            target,
        }
    }

    /// The target model.
    pub fn target(&self) -> CTarget {
        self.target
    }

    /// Total bytes allocated.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// Whether only the reserved null page exists.
    pub fn is_empty(&self) -> bool {
        self.mem.len() <= 16
    }

    /// Allocates `size` bytes at `align`, returning the address.
    pub fn alloc(&mut self, size: usize, align: usize) -> u64 {
        let addr = align_up(self.mem.len(), align.max(1));
        self.mem.resize(addr + size.max(1), 0);
        addr as u64
    }

    fn check(&self, addr: u64, len: usize) -> Result<usize, LayoutError> {
        let a = addr as usize;
        if addr == 0 {
            return err("null pointer dereference");
        }
        if a + len > self.mem.len() {
            return err(format!("out-of-bounds access at {addr}+{len}"));
        }
        Ok(a)
    }

    /// Reads `len` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] on null or out-of-bounds access.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], LayoutError> {
        let a = self.check(addr, len)?;
        Ok(&self.mem[a..a + len])
    }

    /// Writes raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] on null or out-of-bounds access.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), LayoutError> {
        let a = self.check(addr, data.len())?;
        self.mem[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads an unsigned integer of `size` bytes in target byte order.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] on bad access or unsupported size.
    pub fn read_uint(&self, addr: u64, size: usize) -> Result<u64, LayoutError> {
        let bytes = self.read_bytes(addr, size)?;
        let mut v: u64 = 0;
        match self.target.endian {
            Endian::Little => {
                for (i, b) in bytes.iter().enumerate() {
                    v |= (*b as u64) << (8 * i);
                }
            }
            Endian::Big => {
                for b in bytes {
                    v = (v << 8) | *b as u64;
                }
            }
        }
        Ok(v)
    }

    /// Writes an unsigned integer of `size` bytes in target byte order.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] on bad access.
    pub fn write_uint(&mut self, addr: u64, size: usize, v: u64) -> Result<(), LayoutError> {
        let mut buf = [0u8; 8];
        match self.target.endian {
            Endian::Little => {
                for (i, b) in buf[..size].iter_mut().enumerate() {
                    *b = (v >> (8 * i)) as u8;
                }
            }
            Endian::Big => {
                for (i, b) in buf[..size].iter_mut().enumerate() {
                    *b = (v >> (8 * (size - 1 - i))) as u8;
                }
            }
        }
        self.write_bytes(addr, &buf[..size])
    }

    /// Reads a pointer-sized address.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] on bad access.
    pub fn read_ptr(&self, addr: u64) -> Result<u64, LayoutError> {
        self.read_uint(addr, self.target.ptr_size)
    }

    /// Writes a pointer-sized address.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] on bad access.
    pub fn write_ptr(&mut self, addr: u64, value: u64) -> Result<(), LayoutError> {
        self.write_uint(addr, self.target.ptr_size, value)
    }
}

/// Supplies lengths for runtime-sized arrays (keyed by the
/// `length=param(name)` annotation) and discriminators for unions when
/// reading memory images.
#[derive(Default)]
pub struct ReadContext<'a> {
    /// Values of absorbed length parameters by name.
    pub lengths: HashMap<String, usize>,
    /// Given a union's arm count, picks the active arm.
    pub union_pick: Option<&'a dyn Fn(usize) -> usize>,
}

impl fmt::Debug for ReadContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadContext")
            .field("lengths", &self.lengths)
            .field("union_pick", &self.union_pick.map(|_| "<fn>"))
            .finish()
    }
}

/// Moves values between [`MValue`]s and C memory images, guided by
/// annotated Stypes resolved against a [`Universe`].
pub struct CCodec<'u> {
    uni: &'u Universe,
    target: CTarget,
}

impl<'u> CCodec<'u> {
    /// Creates a codec for declarations in `uni` on the given target.
    pub fn new(uni: &'u Universe, target: CTarget) -> Self {
        CCodec { uni, target }
    }

    /// Computes the size and alignment of a C type.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] for types without an in-memory layout
    /// (functions, indefinite arrays, interfaces) or unresolved names.
    pub fn layout_of(&self, ty: &Stype) -> Result<Layout, LayoutError> {
        self.layout_node(ty, &Ann::default(), 0)
    }

    fn layout_node(&self, ty: &Stype, ctx: &Ann, depth: usize) -> Result<Layout, LayoutError> {
        if depth > 256 {
            return err("type nesting too deep (recursive type without pointer indirection?)");
        }
        let ann = ctx.merge_under(&ty.ann);
        match &ty.node {
            SNode::Prim(p) => Ok(match p {
                Prim::Bool | Prim::I8 | Prim::U8 | Prim::Char8 => Layout::scalar(1),
                Prim::I16 | Prim::U16 | Prim::Char16 => Layout::scalar(2),
                Prim::I32 | Prim::U32 | Prim::F32 => Layout::scalar(4),
                Prim::I64 | Prim::U64 | Prim::F64 => Layout::scalar(8),
                Prim::Void => Layout { size: 0, align: 1 },
                Prim::Any => return err("the dynamic type has no C layout"),
            }),
            SNode::Named(n) => {
                let decl = self
                    .uni
                    .get(n)
                    .ok_or_else(|| LayoutError(format!("unknown type `{n}`")))?;
                self.layout_node(&decl.ty.clone(), &ann, depth + 1)
            }
            SNode::Pointer(_) => Ok(Layout::scalar(self.target.ptr_size)),
            SNode::Array { elem, len } => {
                let effective = match &ann.length {
                    Some(LengthAnn::Static(n)) => ArrayLen::Fixed(*n),
                    Some(_) => ArrayLen::Indefinite,
                    None => *len,
                };
                match effective {
                    ArrayLen::Fixed(n) => {
                        let e = self.layout_node(elem, &Ann::default(), depth + 1)?;
                        Ok(Layout {
                            size: e.size * n,
                            align: e.align,
                        })
                    }
                    ArrayLen::Indefinite => {
                        err("indefinite array has no standalone layout (decays to a pointer)")
                    }
                }
            }
            SNode::Struct(fields) => {
                let mut size = 0usize;
                let mut align = 1usize;
                for f in fields {
                    let l = self.layout_node(&f.ty, &Ann::default(), depth + 1)?;
                    size = align_up(size, l.align) + l.size;
                    align = align.max(l.align);
                }
                Ok(Layout {
                    size: align_up(size.max(1), align),
                    align,
                })
            }
            SNode::Union(arms) => {
                let mut size = 0usize;
                let mut align = 1usize;
                for f in arms {
                    let l = self.layout_node(&f.ty, &Ann::default(), depth + 1)?;
                    size = size.max(l.size);
                    align = align.max(l.align);
                }
                Ok(Layout {
                    size: align_up(size.max(1), align),
                    align,
                })
            }
            SNode::Enum(_) => Ok(Layout::scalar(4)),
            SNode::Class { fields, .. } => {
                if ann.pass_mode == Some(PassMode::ByReference) {
                    return err("by-reference class has no value layout");
                }
                let as_struct = Stype::struct_of(fields.clone());
                self.layout_node(&as_struct, &Ann::default(), depth + 1)
            }
            SNode::Interface { .. } | SNode::Function(_) => {
                err("functions and interfaces have no value layout")
            }
            SNode::Sequence(_) | SNode::Str => {
                err("sequences/strings have no standalone C layout (use a pointer)")
            }
        }
    }

    /// Field offsets of a struct-like type, in declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] when any field lacks a layout.
    pub fn field_offsets(
        &self,
        fields: &[mockingbird_stype::ast::Field],
    ) -> Result<Vec<usize>, LayoutError> {
        let mut offsets = Vec::with_capacity(fields.len());
        let mut size = 0usize;
        for f in fields {
            let l = self.layout_node(&f.ty, &Ann::default(), 0)?;
            size = align_up(size, l.align);
            offsets.push(size);
            size += l.size;
        }
        Ok(offsets)
    }

    /// Allocates space for `ty` and writes `value` into it, returning the
    /// address.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the value does not fit the type or the
    /// type has no layout.
    pub fn write_new(
        &self,
        mem: &mut CMemory,
        ty: &Stype,
        value: &MValue,
    ) -> Result<u64, LayoutError> {
        let l = self.layout_of(ty)?;
        let addr = mem.alloc(l.size, l.align);
        self.write_at(mem, ty, addr, value)?;
        Ok(addr)
    }

    /// Writes `value` at `addr` according to `ty`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] on shape mismatches or bad accesses.
    pub fn write_at(
        &self,
        mem: &mut CMemory,
        ty: &Stype,
        addr: u64,
        value: &MValue,
    ) -> Result<(), LayoutError> {
        self.write_node(mem, ty, &Ann::default(), addr, value, 0)
    }

    fn write_node(
        &self,
        mem: &mut CMemory,
        ty: &Stype,
        ctx: &Ann,
        addr: u64,
        value: &MValue,
        depth: usize,
    ) -> Result<(), LayoutError> {
        if depth > 1024 {
            return err("value nesting too deep");
        }
        let ann = ctx.merge_under(&ty.ann);
        match &ty.node {
            SNode::Prim(p) => self.write_prim(mem, *p, &ann, addr, value),
            SNode::Named(n) => {
                let decl = self
                    .uni
                    .get(n)
                    .ok_or_else(|| LayoutError(format!("unknown type `{n}`")))?
                    .clone();
                let mut inner = ann.clone();
                inner.length = None;
                inner.non_null = false;
                inner.is_string = false;
                self.write_node(mem, &decl.ty, &inner, addr, value, depth + 1)
            }
            SNode::Pointer(target) => {
                if ann.is_string {
                    let Some(s) = value.as_string() else {
                        return err(format!("expected a string value, got {value}"));
                    };
                    // NUL-terminated Latin-1 byte string.
                    let mut bytes: Vec<u8> = Vec::with_capacity(s.len() + 1);
                    for c in s.chars() {
                        let code = c as u32;
                        if code > 0xFF {
                            return err(format!("character {c:?} not representable in char*"));
                        }
                        bytes.push(code as u8);
                    }
                    bytes.push(0);
                    let buf = mem.alloc(bytes.len(), 1);
                    mem.write_bytes(buf, &bytes)?;
                    return mem.write_ptr(addr, buf);
                }
                match &ann.length {
                    Some(LengthAnn::Static(n)) => {
                        let MValue::Record(items) = value else {
                            return err(format!("expected {n} array elements, got {value}"));
                        };
                        if items.len() != *n {
                            return err(format!("expected {n} elements, got {}", items.len()));
                        }
                        let elem_l = self.layout_node(target, &Ann::default(), depth + 1)?;
                        let buf = mem.alloc(elem_l.size * n, elem_l.align);
                        for (i, item) in items.iter().enumerate() {
                            self.write_node(
                                mem,
                                target,
                                &Ann::default(),
                                buf + (i * elem_l.size) as u64,
                                item,
                                depth + 1,
                            )?;
                        }
                        return mem.write_ptr(addr, buf);
                    }
                    Some(_) => {
                        let MValue::List(items) = value else {
                            return err(format!("expected a list value, got {value}"));
                        };
                        let elem_l = self.layout_node(target, &Ann::default(), depth + 1)?;
                        let buf = mem.alloc(elem_l.size * items.len().max(1), elem_l.align);
                        for (i, item) in items.iter().enumerate() {
                            self.write_node(
                                mem,
                                target,
                                &Ann::default(),
                                buf + (i * elem_l.size) as u64,
                                item,
                                depth + 1,
                            )?;
                        }
                        return mem.write_ptr(addr, buf);
                    }
                    None => {}
                }
                // Plain pointer: nullable unless annotated non-null.
                let inner_value = if ann.non_null {
                    Some(value)
                } else {
                    match value {
                        MValue::Choice { index: 0, .. } => None,
                        MValue::Choice { index: 1, value } => Some(value.as_ref()),
                        other => {
                            return err(format!(
                                "nullable pointer expects a Choice value, got {other}"
                            ))
                        }
                    }
                };
                match inner_value {
                    None => mem.write_ptr(addr, 0),
                    Some(v) => {
                        let l = self.layout_node(target, &Ann::default(), depth + 1)?;
                        let buf = mem.alloc(l.size, l.align);
                        self.write_node(mem, target, &Ann::default(), buf, v, depth + 1)?;
                        mem.write_ptr(addr, buf)
                    }
                }
            }
            SNode::Array { elem, len } => {
                let effective = match &ann.length {
                    Some(LengthAnn::Static(n)) => ArrayLen::Fixed(*n),
                    Some(_) => ArrayLen::Indefinite,
                    None => *len,
                };
                let elem_l = self.layout_node(elem, &Ann::default(), depth + 1)?;
                match effective {
                    ArrayLen::Fixed(n) => {
                        let MValue::Record(items) = value else {
                            return err(format!("expected {n} array elements, got {value}"));
                        };
                        if items.len() != n {
                            return err(format!("expected {n} elements, got {}", items.len()));
                        }
                        for (i, item) in items.iter().enumerate() {
                            self.write_node(
                                mem,
                                elem,
                                &Ann::default(),
                                addr + (i * elem_l.size) as u64,
                                item,
                                depth + 1,
                            )?;
                        }
                        Ok(())
                    }
                    ArrayLen::Indefinite => {
                        let MValue::List(items) = value else {
                            return err(format!("expected a list value, got {value}"));
                        };
                        for (i, item) in items.iter().enumerate() {
                            self.write_node(
                                mem,
                                elem,
                                &Ann::default(),
                                addr + (i * elem_l.size) as u64,
                                item,
                                depth + 1,
                            )?;
                        }
                        Ok(())
                    }
                }
            }
            SNode::Struct(fields) => {
                let MValue::Record(items) = value else {
                    return err(format!("expected a record value for struct, got {value}"));
                };
                if items.len() != fields.len() {
                    return err(format!(
                        "struct has {} fields, value has {}",
                        fields.len(),
                        items.len()
                    ));
                }
                let offsets = self.field_offsets(fields)?;
                for ((f, off), item) in fields.iter().zip(offsets).zip(items) {
                    self.write_node(
                        mem,
                        &f.ty,
                        &Ann::default(),
                        addr + off as u64,
                        item,
                        depth + 1,
                    )?;
                }
                Ok(())
            }
            SNode::Union(arms) => {
                let MValue::Choice { index, value } = value else {
                    return err(format!("expected a choice value for union, got {value}"));
                };
                let arm = arms
                    .get(*index)
                    .ok_or_else(|| LayoutError(format!("union arm {index} out of range")))?;
                self.write_node(mem, &arm.ty, &Ann::default(), addr, value, depth + 1)
            }
            SNode::Enum(members) => {
                let MValue::Int(v) = value else {
                    return err(format!("expected an integer for enum, got {value}"));
                };
                if *v < 0 || *v >= members.len() as i128 {
                    return err(format!("enum value {v} out of range"));
                }
                mem.write_uint(addr, 4, *v as u64)
            }
            SNode::Class { fields, .. } => {
                let as_struct = Stype::struct_of(fields.clone());
                self.write_node(mem, &as_struct, &Ann::default(), addr, value, depth + 1)
            }
            other => err(format!("cannot write a value of this C type: {other:?}")),
        }
    }

    fn write_prim(
        &self,
        mem: &mut CMemory,
        p: Prim,
        ann: &Ann,
        addr: u64,
        value: &MValue,
    ) -> Result<(), LayoutError> {
        match (p, value) {
            (Prim::Bool, MValue::Int(v)) => mem.write_uint(addr, 1, (*v != 0) as u64),
            (Prim::Char8, MValue::Char(c)) if !ann.as_integer => {
                let code = *c as u32;
                if code > 0xFF {
                    return err(format!("character {c:?} not representable in char"));
                }
                mem.write_uint(addr, 1, code as u64)
            }
            (Prim::Char16, MValue::Char(c)) if !ann.as_integer => {
                let code = *c as u32;
                if code > 0xFFFF {
                    return err(format!("character {c:?} not representable in wchar_t"));
                }
                mem.write_uint(addr, 2, code as u64)
            }
            (Prim::Char8, MValue::Int(v)) if ann.as_integer => mem.write_uint(addr, 1, *v as u64),
            (Prim::Char16, MValue::Int(v)) if ann.as_integer => mem.write_uint(addr, 2, *v as u64),
            (Prim::I8 | Prim::U8, MValue::Int(v)) => mem.write_uint(addr, 1, *v as u64),
            (Prim::I16 | Prim::U16, MValue::Int(v)) => mem.write_uint(addr, 2, *v as u64),
            (Prim::I32 | Prim::U32, MValue::Int(v)) => mem.write_uint(addr, 4, *v as u64),
            (Prim::I64 | Prim::U64, MValue::Int(v)) => mem.write_uint(addr, 8, *v as u64),
            (Prim::F32, MValue::Real(r)) => mem.write_uint(addr, 4, (*r as f32).to_bits() as u64),
            (Prim::F64, MValue::Real(r)) => mem.write_uint(addr, 8, r.to_bits()),
            (Prim::Void, MValue::Unit) => Ok(()),
            (p, v) => err(format!("value {v} does not fit C primitive {p:?}")),
        }
    }

    /// Reads the value of `ty` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] on bad accesses, missing lengths for
    /// runtime-sized arrays, unions without a discriminator, or `no-alias`
    /// violations in the actual data.
    pub fn read_at(
        &self,
        mem: &CMemory,
        ty: &Stype,
        addr: u64,
        ctx: &ReadContext<'_>,
    ) -> Result<MValue, LayoutError> {
        let mut aliases = HashSet::new();
        self.read_node(mem, ty, &Ann::default(), addr, ctx, &mut aliases, 0)
    }

    #[allow(clippy::too_many_arguments)]
    fn read_node(
        &self,
        mem: &CMemory,
        ty: &Stype,
        ctxann: &Ann,
        addr: u64,
        ctx: &ReadContext<'_>,
        aliases: &mut HashSet<u64>,
        depth: usize,
    ) -> Result<MValue, LayoutError> {
        if depth > 1024 {
            return err("data structure too deep (cyclic data under a non-recursive type?)");
        }
        let ann = ctxann.merge_under(&ty.ann);
        match &ty.node {
            SNode::Prim(p) => self.read_prim(mem, *p, &ann, addr),
            SNode::Named(n) => {
                let decl = self
                    .uni
                    .get(n)
                    .ok_or_else(|| LayoutError(format!("unknown type `{n}`")))?
                    .clone();
                let mut inner = ann.clone();
                inner.length = None;
                inner.non_null = false;
                inner.is_string = false;
                self.read_node(mem, &decl.ty, &inner, addr, ctx, aliases, depth + 1)
            }
            SNode::Pointer(target) => {
                let p = mem.read_ptr(addr)?;
                if ann.is_string {
                    if p == 0 {
                        return err("null string pointer");
                    }
                    let mut out = String::new();
                    let mut i = 0u64;
                    loop {
                        let b = mem.read_uint(p + i, 1)? as u8;
                        if b == 0 {
                            break;
                        }
                        out.push(b as char);
                        i += 1;
                        if i > 1 << 20 {
                            return err("unterminated string");
                        }
                    }
                    return Ok(MValue::string(&out));
                }
                if let Some(len_ann) = &ann.length {
                    {
                        let (n, fixed) = match len_ann {
                            LengthAnn::Static(n) => (*n, true),
                            LengthAnn::Param(name) => (
                                *ctx.lengths.get(name).ok_or_else(|| {
                                    LayoutError(format!("length parameter `{name}` not supplied"))
                                })?,
                                false,
                            ),
                            LengthAnn::Runtime => {
                                return err("runtime-length array needs a length parameter binding")
                            }
                        };
                        if p == 0 {
                            return err("null array pointer");
                        }
                        let elem_l = self.layout_node(target, &Ann::default(), depth + 1)?;
                        let mut items = Vec::with_capacity(n);
                        for i in 0..n {
                            items.push(self.read_node(
                                mem,
                                target,
                                &Ann::default(),
                                p + (i * elem_l.size) as u64,
                                ctx,
                                aliases,
                                depth + 1,
                            )?);
                        }
                        return Ok(if fixed {
                            MValue::Record(items)
                        } else {
                            MValue::List(items)
                        });
                    }
                }
                if p == 0 {
                    if ann.non_null {
                        return err("null found in pointer annotated non-null");
                    }
                    return Ok(MValue::null());
                }
                if ann.no_alias && !aliases.insert(p) {
                    return err(format!(
                        "aliasing detected at address {p} under a no-alias annotation"
                    ));
                }
                let inner =
                    self.read_node(mem, target, &Ann::default(), p, ctx, aliases, depth + 1)?;
                Ok(if ann.non_null {
                    inner
                } else {
                    MValue::some(inner)
                })
            }
            SNode::Array { elem, len } => {
                let effective = match &ann.length {
                    Some(LengthAnn::Static(n)) => ArrayLen::Fixed(*n),
                    Some(LengthAnn::Param(name)) => {
                        let n = *ctx.lengths.get(name).ok_or_else(|| {
                            LayoutError(format!("length parameter `{name}` not supplied"))
                        })?;
                        let elem_l = self.layout_node(elem, &Ann::default(), depth + 1)?;
                        let mut items = Vec::with_capacity(n);
                        for i in 0..n {
                            items.push(self.read_node(
                                mem,
                                elem,
                                &Ann::default(),
                                addr + (i * elem_l.size) as u64,
                                ctx,
                                aliases,
                                depth + 1,
                            )?);
                        }
                        return Ok(MValue::List(items));
                    }
                    Some(LengthAnn::Runtime) => {
                        return err("runtime-length array needs a length parameter binding")
                    }
                    None => *len,
                };
                match effective {
                    ArrayLen::Fixed(n) => {
                        let elem_l = self.layout_node(elem, &Ann::default(), depth + 1)?;
                        let mut items = Vec::with_capacity(n);
                        for i in 0..n {
                            items.push(self.read_node(
                                mem,
                                elem,
                                &Ann::default(),
                                addr + (i * elem_l.size) as u64,
                                ctx,
                                aliases,
                                depth + 1,
                            )?);
                        }
                        Ok(MValue::Record(items))
                    }
                    ArrayLen::Indefinite => {
                        err("indefinite array in memory needs a length annotation")
                    }
                }
            }
            SNode::Struct(fields) => {
                let offsets = self.field_offsets(fields)?;
                let mut items = Vec::with_capacity(fields.len());
                for (f, off) in fields.iter().zip(offsets) {
                    items.push(self.read_node(
                        mem,
                        &f.ty,
                        &Ann::default(),
                        addr + off as u64,
                        ctx,
                        aliases,
                        depth + 1,
                    )?);
                }
                Ok(MValue::Record(items))
            }
            SNode::Union(arms) => {
                let pick = ctx.union_pick.ok_or_else(|| {
                    LayoutError(
                        "reading a C union requires a discriminator (union support is \
                         incomplete without one, paper §6)"
                            .into(),
                    )
                })?;
                let index = pick(arms.len());
                let arm = arms.get(index).ok_or_else(|| {
                    LayoutError(format!("union discriminator {index} out of range"))
                })?;
                let v =
                    self.read_node(mem, &arm.ty, &Ann::default(), addr, ctx, aliases, depth + 1)?;
                Ok(MValue::Choice {
                    index,
                    value: Box::new(v),
                })
            }
            SNode::Enum(members) => {
                let v = mem.read_uint(addr, 4)? as i128;
                if v >= members.len() as i128 {
                    return err(format!("enum discriminant {v} out of range"));
                }
                Ok(MValue::Int(v))
            }
            SNode::Class { fields, .. } => {
                let as_struct = Stype::struct_of(fields.clone());
                self.read_node(
                    mem,
                    &as_struct,
                    &Ann::default(),
                    addr,
                    ctx,
                    aliases,
                    depth + 1,
                )
            }
            other => err(format!("cannot read a value of this C type: {other:?}")),
        }
    }

    fn read_prim(
        &self,
        mem: &CMemory,
        p: Prim,
        ann: &Ann,
        addr: u64,
    ) -> Result<MValue, LayoutError> {
        Ok(match p {
            Prim::Bool => MValue::Int((mem.read_uint(addr, 1)? != 0) as i128),
            Prim::Char8 => {
                let b = mem.read_uint(addr, 1)? as u8;
                if ann.as_integer {
                    MValue::Int(b as i128)
                } else {
                    MValue::Char(b as char)
                }
            }
            Prim::Char16 => {
                let w = mem.read_uint(addr, 2)? as u16;
                if ann.as_integer {
                    MValue::Int(w as i128)
                } else {
                    MValue::Char(char::from_u32(w as u32).unwrap_or('\u{FFFD}'))
                }
            }
            Prim::I8 => MValue::Int(mem.read_uint(addr, 1)? as u8 as i8 as i128),
            Prim::U8 => MValue::Int(mem.read_uint(addr, 1)? as i128),
            Prim::I16 => MValue::Int(mem.read_uint(addr, 2)? as u16 as i16 as i128),
            Prim::U16 => MValue::Int(mem.read_uint(addr, 2)? as i128),
            Prim::I32 => MValue::Int(mem.read_uint(addr, 4)? as u32 as i32 as i128),
            Prim::U32 => MValue::Int(mem.read_uint(addr, 4)? as i128),
            Prim::I64 => MValue::Int(mem.read_uint(addr, 8)? as i64 as i128),
            Prim::U64 => MValue::Int(mem.read_uint(addr, 8)? as i128),
            Prim::F32 => MValue::Real(f32::from_bits(mem.read_uint(addr, 4)? as u32) as f64),
            Prim::F64 => MValue::Real(f64::from_bits(mem.read_uint(addr, 8)?)),
            Prim::Void => MValue::Unit,
            Prim::Any => return err("the dynamic type has no C representation"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_stype::ast::{Decl, Field, Lang};

    fn empty() -> Universe {
        Universe::new()
    }

    #[test]
    fn scalar_layouts() {
        let uni = empty();
        let c = CCodec::new(&uni, CTarget::LP64_LE);
        assert_eq!(
            c.layout_of(&Stype::i8()).unwrap(),
            Layout { size: 1, align: 1 }
        );
        assert_eq!(
            c.layout_of(&Stype::f64()).unwrap(),
            Layout { size: 8, align: 8 }
        );
        assert_eq!(
            c.layout_of(&Stype::pointer(Stype::i32())).unwrap(),
            Layout { size: 8, align: 8 }
        );
        let c32 = CCodec::new(&uni, CTarget::ILP32_BE);
        assert_eq!(
            c32.layout_of(&Stype::pointer(Stype::i32())).unwrap(),
            Layout { size: 4, align: 4 }
        );
    }

    #[test]
    fn struct_layout_has_padding() {
        // struct { char c; double d; char e; } — offsets 0, 8, 16; size 24.
        let uni = empty();
        let c = CCodec::new(&uni, CTarget::LP64_LE);
        let fields = vec![
            Field::new("c", Stype::char8()),
            Field::new("d", Stype::f64()),
            Field::new("e", Stype::char8()),
        ];
        assert_eq!(c.field_offsets(&fields).unwrap(), vec![0, 8, 16]);
        let s = Stype::struct_of(fields);
        assert_eq!(c.layout_of(&s).unwrap(), Layout { size: 24, align: 8 });
    }

    #[test]
    fn fixed_array_layout() {
        let uni = empty();
        let c = CCodec::new(&uni, CTarget::LP64_LE);
        let a = Stype::array_fixed(Stype::f32(), 2);
        assert_eq!(c.layout_of(&a).unwrap(), Layout { size: 8, align: 4 });
        assert!(c.layout_of(&Stype::array_indefinite(Stype::f32())).is_err());
    }

    #[test]
    fn scalar_round_trips_both_endians() {
        let uni = empty();
        for target in [CTarget::LP64_LE, CTarget::ILP32_BE] {
            let codec = CCodec::new(&uni, target);
            let mut mem = CMemory::new(target);
            for (ty, v) in [
                (Stype::i32(), MValue::Int(-123456)),
                (Stype::u64(), MValue::Int(1 << 40)),
                (Stype::f32(), MValue::Real(1.5)),
                (Stype::f64(), MValue::Real(-2.25)),
                (Stype::boolean(), MValue::Int(1)),
                (Stype::char8(), MValue::Char('A')),
                (Stype::char16(), MValue::Char('é')),
                (Stype::i8(), MValue::Int(-5)),
                (Stype::i16(), MValue::Int(-300)),
            ] {
                let addr = codec.write_new(&mut mem, &ty, &v).unwrap();
                let back = codec
                    .read_at(&mem, &ty, addr, &ReadContext::default())
                    .unwrap();
                assert_eq!(back, v, "{ty:?} on {target:?}");
            }
        }
    }

    #[test]
    fn struct_round_trip_with_padding() {
        let uni = empty();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let s = Stype::struct_of(vec![
            Field::new("c", Stype::char8()),
            Field::new("d", Stype::f64()),
        ]);
        let v = MValue::Record(vec![MValue::Char('x'), MValue::Real(3.25)]);
        let addr = codec.write_new(&mut mem, &s, &v).unwrap();
        assert_eq!(
            codec
                .read_at(&mem, &s, addr, &ReadContext::default())
                .unwrap(),
            v
        );
    }

    #[test]
    fn nullable_pointer_round_trip() {
        let uni = empty();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let ty = Stype::pointer(Stype::i32());
        let addr = codec.write_new(&mut mem, &ty, &MValue::null()).unwrap();
        assert_eq!(
            codec
                .read_at(&mem, &ty, addr, &ReadContext::default())
                .unwrap(),
            MValue::null()
        );
        let addr = codec
            .write_new(&mut mem, &ty, &MValue::some(MValue::Int(9)))
            .unwrap();
        assert_eq!(
            codec
                .read_at(&mem, &ty, addr, &ReadContext::default())
                .unwrap(),
            MValue::some(MValue::Int(9))
        );
    }

    #[test]
    fn non_null_pointer_rejects_null_on_read() {
        let uni = empty();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let ty = Stype::pointer(Stype::i32()).with_ann(|a| a.non_null = true);
        // Write a direct value through the non-null pointer path.
        let addr = codec.write_new(&mut mem, &ty, &MValue::Int(5)).unwrap();
        assert_eq!(
            codec
                .read_at(&mem, &ty, addr, &ReadContext::default())
                .unwrap(),
            MValue::Int(5)
        );
        // A hand-written null violates the annotation.
        let null_addr = mem.alloc(8, 8);
        mem.write_ptr(null_addr, 0).unwrap();
        let errv = codec
            .read_at(&mem, &ty, null_addr, &ReadContext::default())
            .unwrap_err();
        assert!(errv.to_string().contains("non-null"));
    }

    #[test]
    fn length_param_arrays_read_as_lists() {
        let mut uni = empty();
        uni.insert(Decl::new(
            "point",
            Lang::C,
            Stype::array_fixed(Stype::f32(), 2),
        ))
        .unwrap();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let ty = Stype::pointer(Stype::named("point"))
            .with_ann(|a| a.length = Some(LengthAnn::Param("count".into())));
        let pts = MValue::List(vec![
            MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]),
            MValue::Record(vec![MValue::Real(3.0), MValue::Real(4.0)]),
        ]);
        let addr = codec.write_new(&mut mem, &ty, &pts).unwrap();
        let mut ctx = ReadContext::default();
        ctx.lengths.insert("count".into(), 2);
        assert_eq!(codec.read_at(&mem, &ty, addr, &ctx).unwrap(), pts);
        // Missing length is an error.
        let errv = codec
            .read_at(&mem, &ty, addr, &ReadContext::default())
            .unwrap_err();
        assert!(errv.to_string().contains("count"));
    }

    #[test]
    fn string_round_trip() {
        let uni = empty();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let ty = Stype::pointer(Stype::char8()).with_ann(|a| a.is_string = true);
        let v = MValue::string("hello");
        let addr = codec.write_new(&mut mem, &ty, &v).unwrap();
        assert_eq!(
            codec
                .read_at(&mem, &ty, addr, &ReadContext::default())
                .unwrap(),
            v
        );
    }

    #[test]
    fn union_needs_discriminator() {
        let uni = empty();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let u = Stype::union_of(vec![
            Field::new("i", Stype::i32()),
            Field::new("f", Stype::f32()),
        ]);
        let v = MValue::Choice {
            index: 1,
            value: Box::new(MValue::Real(2.5)),
        };
        let addr = codec.write_new(&mut mem, &u, &v).unwrap();
        assert!(codec
            .read_at(&mem, &u, addr, &ReadContext::default())
            .unwrap_err()
            .to_string()
            .contains("discriminator"));
        let pick = |_n: usize| 1usize;
        let ctx = ReadContext {
            lengths: HashMap::new(),
            union_pick: Some(&pick),
        };
        assert_eq!(codec.read_at(&mem, &u, addr, &ctx).unwrap(), v);
    }

    #[test]
    fn recursive_linked_list_through_pointers() {
        let mut uni = empty();
        uni.insert(Decl::new(
            "node",
            Lang::C,
            Stype::struct_of(vec![
                Field::new("value", Stype::i32()),
                Field::new("next", Stype::pointer(Stype::named("node"))),
            ]),
        ))
        .unwrap();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let ty = Stype::named("node");
        let v = MValue::Record(vec![
            MValue::Int(1),
            MValue::some(MValue::Record(vec![MValue::Int(2), MValue::null()])),
        ]);
        let addr = codec.write_new(&mut mem, &ty, &v).unwrap();
        assert_eq!(
            codec
                .read_at(&mem, &ty, addr, &ReadContext::default())
                .unwrap(),
            v
        );
    }

    #[test]
    fn no_alias_violation_detected() {
        let mut uni = empty();
        uni.insert(Decl::new(
            "pair",
            Lang::C,
            Stype::struct_of(vec![
                Field::new(
                    "a",
                    Stype::pointer(Stype::i32()).with_ann(|x| {
                        x.non_null = true;
                        x.no_alias = true;
                    }),
                ),
                Field::new(
                    "b",
                    Stype::pointer(Stype::i32()).with_ann(|x| {
                        x.non_null = true;
                        x.no_alias = true;
                    }),
                ),
            ]),
        ))
        .unwrap();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        // Build a pair whose two pointers alias the same int.
        let int_addr = mem.alloc(4, 4);
        mem.write_uint(int_addr, 4, 7).unwrap();
        let pair_addr = mem.alloc(16, 8);
        mem.write_ptr(pair_addr, int_addr).unwrap();
        mem.write_ptr(pair_addr + 8, int_addr).unwrap();
        let errv = codec
            .read_at(
                &mem,
                &Stype::named("pair"),
                pair_addr,
                &ReadContext::default(),
            )
            .unwrap_err();
        assert!(errv.to_string().contains("aliasing"));
    }

    #[test]
    fn enum_round_trip_and_range_check() {
        let uni = empty();
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let e = Stype::enum_of(vec!["A".into(), "B".into()]);
        let addr = codec.write_new(&mut mem, &e, &MValue::Int(1)).unwrap();
        assert_eq!(
            codec
                .read_at(&mem, &e, addr, &ReadContext::default())
                .unwrap(),
            MValue::Int(1)
        );
        assert!(codec.write_at(&mut mem, &e, addr, &MValue::Int(5)).is_err());
    }

    #[test]
    fn oob_and_null_accesses_error() {
        let mut mem = CMemory::new(CTarget::LP64_LE);
        assert!(mem.read_uint(0, 4).is_err());
        assert!(mem.read_uint(1 << 20, 4).is_err());
        assert!(mem.write_uint(0, 4, 1).is_err());
    }
}
