//! Observability primitives for the mockingbird runtime.
//!
//! This crate is dependency-free and provides three building blocks:
//!
//! * [`Histogram`] — a lock-free, log-bucketed latency histogram
//!   (HDR-style: log2 tiers subdivided into 16 linear sub-buckets,
//!   bounding relative quantile error at ~6%). Recording is a handful
//!   of relaxed atomic adds; snapshots are plain data and merge
//!   losslessly, so per-operation histograms from many nodes can be
//!   aggregated offline.
//! * [`TraceContext`] — a 128-bit trace id plus 64-bit span id and a
//!   sampled flag, propagated in-band inside the GIOP frame header so
//!   one logical call keeps one trace id across retries, hedged
//!   duplicates and the server's dispatch worker.
//! * [`SpanLog`] — a bounded ring of [`SpanRecord`]s capturing sampled
//!   slow calls (timing, endpoint, breaker state, fused-vs-interpretive
//!   path, bytes moved) for after-the-fact inspection.

pub mod histogram;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use span::{SpanKind, SpanLog, SpanRecord};
pub use trace::TraceContext;
