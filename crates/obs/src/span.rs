//! Sampled span capture.
//!
//! A [`SpanLog`] is a bounded ring of [`SpanRecord`]s. The runtime
//! records one span per sampled attempt (client side, with endpoint and
//! breaker state) and one per dispatch (server side); when a hedged
//! race resolves, the winning attempt's span is flagged via
//! [`SpanLog::mark_winner`]. The ring is lossy by design — it holds the
//! most recent `capacity` spans and is meant for slow-call forensics,
//! not as a durable trace store.

use crate::trace::TraceContext;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Which side of the call recorded the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    Client,
    Server,
}

/// One captured call attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub trace_id: u128,
    pub span_id: u64,
    /// Span id of the logical call this attempt belongs to; 0 for roots.
    pub parent_span_id: u64,
    pub kind: SpanKind,
    pub operation: String,
    /// Remote endpoint (client side) or peer (server side); may be empty.
    pub endpoint: String,
    /// Circuit-breaker state at attempt time; empty when no breaker.
    pub breaker: String,
    /// Whether the fused wire-program path served this call.
    pub fused: bool,
    /// Microseconds since the owning [`SpanLog`] was created.
    pub start_us: u64,
    pub duration_us: u64,
    pub bytes_out: u64,
    pub bytes_in: u64,
    /// Set on the attempt that won a hedged race.
    pub winner: bool,
    pub error: Option<String>,
}

impl SpanRecord {
    /// Start a record from a context; the caller fills in the rest.
    pub fn new(ctx: TraceContext, kind: SpanKind, operation: impl Into<String>) -> SpanRecord {
        SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: 0,
            kind,
            operation: operation.into(),
            endpoint: String::new(),
            breaker: String::new(),
            fused: false,
            start_us: 0,
            duration_us: 0,
            bytes_out: 0,
            bytes_in: 0,
            winner: false,
            error: None,
        }
    }
}

/// Bounded ring of recent spans.
pub struct SpanLog {
    inner: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    epoch: Instant,
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::new(512)
    }
}

impl SpanLog {
    pub fn new(capacity: usize) -> SpanLog {
        SpanLog {
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// Microseconds since this log was created; use for `start_us`.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Append a span, evicting the oldest when full.
    pub fn record(&self, span: SpanRecord) {
        let mut q = self.inner.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(span);
    }

    /// Flag the span identified by `(trace_id, span_id)` as the winner
    /// of a hedged race. Returns whether it was found (it may already
    /// have been evicted).
    pub fn mark_winner(&self, trace_id: u128, span_id: u64) -> bool {
        let mut q = self.inner.lock().unwrap();
        for s in q.iter_mut().rev() {
            if s.trace_id == trace_id && s.span_id == span_id {
                s.winner = true;
                return true;
            }
        }
        false
    }

    /// Copy out the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let log = SpanLog::new(4);
        for i in 0..10u64 {
            let mut s = SpanRecord::new(TraceContext::root(), SpanKind::Client, "op");
            s.duration_us = i;
            log.record(s);
        }
        let spans = log.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(
            spans.iter().map(|s| s.duration_us).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn mark_winner_finds_the_span() {
        let log = SpanLog::new(8);
        let ctx = TraceContext::root();
        let a = ctx.child();
        let b = ctx.child();
        log.record(SpanRecord::new(a, SpanKind::Client, "op"));
        log.record(SpanRecord::new(b, SpanKind::Client, "op"));
        assert!(log.mark_winner(ctx.trace_id, b.span_id));
        assert!(!log.mark_winner(ctx.trace_id, 0xdead));
        let spans = log.snapshot();
        assert!(!spans[0].winner);
        assert!(spans[1].winner);
    }

    #[test]
    fn clock_is_monotonic_and_clear_empties() {
        let log = SpanLog::default();
        let a = log.now_us();
        let b = log.now_us();
        assert!(b >= a);
        log.record(SpanRecord::new(TraceContext::root(), SpanKind::Server, "x"));
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(log.is_empty());
    }
}
