//! Lock-free log-bucketed histogram.
//!
//! Values below 16 land in exact unit buckets; larger values are split
//! by their highest set bit into log2 tiers of 16 linear sub-buckets
//! each. Bucket width at magnitude `2^h` is `2^(h-4)`, so the relative
//! width of any bucket is at most 1/16 and a midpoint representative is
//! within ~3% of any value that fell in it. The full `u64` range maps
//! onto [`BUCKETS`] buckets (~7.8 KiB of counters per histogram).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: each power-of-two tier has `2^SUB_BITS`
/// linear buckets.
const SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << SUB_BITS; // 16

/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// Map a value to its bucket index. Contiguous: 15 → 15, 16 → 16.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        let h = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = ((v >> (h - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
        (h - SUB_BITS + 1) as usize * SUB_COUNT + sub
    }
}

/// Inclusive-exclusive `[lo, hi)` bounds of a bucket.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB_COUNT {
        (idx as u64, idx as u64 + 1)
    } else {
        let h = (idx / SUB_COUNT) as u32 + SUB_BITS - 1;
        let sub = (idx % SUB_COUNT) as u64;
        let width = 1u64 << (h - SUB_BITS);
        let lo = (1u64 << h) + sub * width;
        (lo, lo.saturating_add(width))
    }
}

/// Midpoint representative of a bucket, used for quantile estimates.
fn bucket_mid(idx: usize) -> u64 {
    let (lo, hi) = bucket_bounds(idx);
    lo + (hi - lo - 1) / 2
}

/// A lock-free latency histogram. All methods take `&self`; recording
/// is wait-free (relaxed atomic increments) and safe from any number of
/// threads. Values are unitless `u64`s — the runtime records
/// microseconds.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        // Wraps for pathological inputs; latencies in µs never get close.
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Record a duration in microseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Take a point-in-time copy of the counters. If recorders are
    /// running concurrently the copy may straddle an in-flight record
    /// (count off by the handful of racing writers); once writers are
    /// quiescent the snapshot is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// Plain-data copy of a [`Histogram`]. Mergeable: bucket boundaries are
/// a pure function of the index, so adding counts bucket-wise is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`). Returns the midpoint
    /// of the bucket holding the target rank, clamped to the observed
    /// `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another snapshot into this one. Exact: boundaries depend
    /// only on the bucket index, never on what was recorded.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterate non-empty buckets as `(lo, hi, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Raw bucket counts (length [`BUCKETS`]).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every bucket's hi equals the next bucket's lo, across the
        // whole range, and every value maps inside its bucket bounds.
        let mut prev_hi = 0u64;
        for idx in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, prev_hi, "gap before bucket {idx}");
            assert!(hi > lo || hi == u64::MAX);
            prev_hi = hi;
        }
        for &v in &[
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1000,
            65_535,
            65_536,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "{v} outside [{lo},{hi})"
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut rng = 0x1234_5678_u64;
        for _ in 0..10_000 {
            // xorshift
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let v = rng >> (rng % 48); // spread across magnitudes
            let (lo, hi) = bucket_bounds(bucket_index(v));
            if v >= 16 {
                let width = hi - lo;
                assert!(width as f64 / lo as f64 <= 1.0 / 16.0 + 1e-9);
            }
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1000);
        let p50 = s.quantile(0.5);
        assert!((460..=540).contains(&p50), "p50={p50}");
        let p99 = s.quantile(0.99);
        assert!((920..=1000).contains(&p99), "p99={p99}");
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // Property: after N threads each record M values, the total
        // count, the bucket sum and the value sum are all exact.
        const THREADS: u64 = 8;
        const PER: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            joins.push(std::thread::spawn(move || {
                let mut local_sum = 0u64;
                for i in 0..PER {
                    let v = (t * 1_000_003 + i * 37) % 1_000_000;
                    h.record(v);
                    local_sum += v;
                }
                local_sum
            }));
        }
        let expect_sum: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let s = h.snapshot();
        assert_eq!(s.count(), THREADS * PER);
        assert_eq!(s.counts().iter().sum::<u64>(), THREADS * PER);
        assert_eq!(s.sum(), expect_sum);
    }

    #[test]
    fn merge_round_trips_bucket_boundaries() {
        // Property: recording a stream into one histogram equals
        // splitting the stream across two histograms and merging the
        // snapshots — bucket-for-bucket, plus count/sum/min/max.
        let mut rng = 0x9e37_79b9_u64;
        let whole = Histogram::new();
        let left = Histogram::new();
        let right = Histogram::new();
        for i in 0..50_000u64 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let v = rng >> (rng % 40);
            whole.record(v);
            if i % 2 == 0 { &left } else { &right }.record(v);
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged, whole.snapshot());
        // Quantiles agree exactly since the bucket contents agree.
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(q), whole.snapshot().quantile(q));
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.counts().iter().sum::<u64>(), 0);
    }
}
