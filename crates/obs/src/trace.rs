//! Propagated trace contexts.
//!
//! A [`TraceContext`] names one logical call: the 128-bit `trace_id` is
//! minted once when the client opens the call and survives retries,
//! hedged duplicates and the hop to the server; each attempt (and the
//! server's dispatch) gets its own 64-bit `span_id` via [`child`].
//! The `sampled` flag travels with the context so the server captures
//! spans exactly when the client asked for them.
//!
//! [`child`]: TraceContext::child

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;

/// Trace identity carried in the GIOP service-context slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identity of the logical call; constant across attempts and hops.
    pub trace_id: u128,
    /// Identity of this attempt / hop within the trace.
    pub span_id: u64,
    /// Whether span capture was requested for this trace.
    pub sampled: bool,
}

// splitmix64: a full-period mixing function. Sequential inputs produce
// statistically independent outputs, which is all id generation needs —
// uniqueness within a process plus a per-process seed, not secrecy.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static COUNTER: AtomicU64 = AtomicU64::new(0);
static SEED: OnceLock<u64> = OnceLock::new();

fn seed() -> u64 {
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        // Mix in an address so two processes started the same nanosecond
        // (or a platform with a coarse clock) still diverge.
        splitmix64(nanos ^ (&COUNTER as *const _ as u64))
    })
}

fn fresh_u64() -> u64 {
    let n = COUNTER.fetch_add(1, Relaxed);
    let v = splitmix64(seed().wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    if v == 0 {
        1
    } else {
        v
    }
}

impl TraceContext {
    /// Mint a fresh root context (new trace id + span id), sampled.
    pub fn root() -> TraceContext {
        let hi = fresh_u64() as u128;
        let lo = fresh_u64() as u128;
        let trace_id = (hi << 64) | lo;
        TraceContext {
            trace_id: if trace_id == 0 { 1 } else { trace_id },
            span_id: fresh_u64(),
            sampled: true,
        }
    }

    /// Derive a child context: same trace id and sampling decision,
    /// fresh span id. Used per retry attempt, per hedged duplicate and
    /// by the server's dispatch worker.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: fresh_u64(),
            sampled: self.sampled,
        }
    }

    /// Override the sampling decision.
    pub fn with_sampled(mut self, sampled: bool) -> TraceContext {
        self.sampled = sampled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn root_ids_are_distinct_and_nonzero() {
        let mut traces = HashSet::new();
        let mut spans = HashSet::new();
        for _ in 0..10_000 {
            let t = TraceContext::root();
            assert_ne!(t.trace_id, 0);
            assert_ne!(t.span_id, 0);
            assert!(t.sampled);
            assert!(traces.insert(t.trace_id));
            assert!(spans.insert(t.span_id));
        }
    }

    #[test]
    fn child_keeps_trace_identity() {
        let root = TraceContext::root().with_sampled(false);
        let c1 = root.child();
        let c2 = root.child();
        assert_eq!(c1.trace_id, root.trace_id);
        assert_eq!(c2.trace_id, root.trace_id);
        assert!(!c1.sampled);
        assert_ne!(c1.span_id, root.span_id);
        assert_ne!(c1.span_id, c2.span_id);
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let joins: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..1000)
                        .map(|_| TraceContext::root().span_id)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = HashSet::new();
        for j in joins {
            for id in j.join().unwrap() {
                assert!(all.insert(id), "duplicate span id");
            }
        }
    }
}
