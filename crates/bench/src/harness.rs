//! A minimal, dependency-free benchmark harness with a criterion-shaped
//! API.
//!
//! The bench targets (`harness = false`) drive this directly via the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros. Each benchmark is
//! calibrated (iteration count grown until a sample is measurable), then
//! sampled repeatedly; the median per-iteration time is reported, plus
//! derived throughput when [`BenchmarkGroup::throughput`] was set.
//!
//! Running with `--test` (what `cargo test --benches` passes) or with
//! `MB_BENCH_QUICK=1` executes every benchmark body once and skips
//! measurement, so benches double as smoke tests. Positional CLI
//! arguments filter benchmarks by substring, as with criterion.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput basis for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name and/or a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter, shown as `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{param}", name.into()),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Measures the body passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, run `iters` times back to back.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
        }
    }
}

/// The harness entry point; one per bench binary.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut quick = std::env::var_os("MB_BENCH_QUICK").is_some();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                quick = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion { filter, quick }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: Config::default(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self, name, &Config::default(), None, f);
        self
    }
}

/// A group of benchmarks sharing configuration and a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: Config,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the total time budget for measuring each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        let throughput = self.throughput;
        run_one(self.criterion, &full, &self.config, throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        let throughput = self.throughput;
        run_one(self.criterion, &full, &self.config, throughput, f);
        self
    }

    /// Ends the group (formatting no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

fn run_one(
    c: &mut Criterion,
    name: &str,
    config: &Config,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filter) = &c.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    if c.quick {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{name:<56} ok (quick mode, 1 iter)");
        return;
    }

    // Calibrate: grow the iteration count until one sample is measurable.
    let mut iters: u64 = 1;
    let per_iter_ns = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos();
        if ns >= 1_000_000 || iters >= 1 << 24 {
            break (ns as f64 / iters as f64).max(0.1);
        }
        iters *= 2;
    };

    // Sample: aim for measurement_time split across sample_size samples.
    let per_sample = config.measurement_time.as_nanos() as f64 / config.sample_size as f64;
    let sample_iters = ((per_sample / per_iter_ns) as u64).max(1);
    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / sample_iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];

    let mut line = format!(
        "{name:<56} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mib_s = n as f64 / (median * 1e-9) / (1024.0 * 1024.0);
            line.push_str(&format!("  thrpt: {mib_s:.1} MiB/s"));
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {elem_s:.0} elem/s"));
        }
        None => {}
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("encode", 64).to_string(), "encode/64");
        assert_eq!(
            BenchmarkId::from_parameter("CursorMoved").to_string(),
            "CursorMoved"
        );
    }

    #[test]
    fn quick_mode_runs_body_once() {
        let mut c = Criterion {
            filter: None,
            quick: true,
        };
        let mut count = 0u32;
        c.bench_function("t", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            quick: true,
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes/match-me/1", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
