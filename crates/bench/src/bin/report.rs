//! The experiment report: regenerates every table/figure reproduction of
//! DESIGN.md §4 with live measurements and prints them as the tables
//! recorded in EXPERIMENTS.md.
//!
//! Usage: `report [t1|f5|e1|e2|e3|x1|x2|x3|x4|x5|x6|x7|x8|x9|x10|x11|x12|x13]...`
//! (no args = everything). `x5` additionally writes `BENCH_compile.json`
//! with the measured cache hit rate and warm-vs-cold speedup; `x6`
//! writes `BENCH_marshal.json` with the fused-vs-interpretive
//! marshalling speedup over a 200-class corpus; `x7` writes
//! `BENCH_resilience.json` with success rates and p99 latency under
//! injected faults, with and without the breaker+hedging supervision
//! stack; `x8` writes `BENCH_observability.json` with the tracing-on vs
//! tracing-off p50 and a scrape of the server's Prometheus endpoint;
//! `x9` writes `BENCH_reactor.json` with the connection-scaling curve
//! (reactor vs thread-per-connection, fan-in latency, churn flatness);
//! `x10` writes `BENCH_mesh.json` with failover latency when a replica
//! is killed mid-load behind the mesh naming layer, plus gossip
//! convergence rounds; `x11` writes `BENCH_native.json` with the
//! three-way marshal comparison (interpreter vs opcode VM vs emitted
//! native stubs — the second Futamura projection); `x12` writes
//! `BENCH_overload.json` with goodput and tail latency at 1×/2×/4×
//! offered load under the adaptive overload-control stack, plus the
//! kill-and-recover time when a replica dies mid-load; `x13` writes
//! `BENCH_store.json` with the artifact-store cold-start replay (a
//! fresh process compiling nothing because the on-disk segment store
//! already holds every verdict and wire program) and the cluster-warm
//! mesh join (three peers serving artifacts over `MBAR`, every record
//! content-hash verified on receipt).
//! `MB_BENCH_QUICK=1` shrinks every experiment to CI-smoke size.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use mockingbird_rng::StdRng;

use mockingbird::baselines::bridge::{direct_marshal, ImposedPath};
use mockingbird::baselines::{c_to_java, generate_java};
use mockingbird::comparer::{Comparer, Mode, RuleSet};
use mockingbird::corpus::collab::{collaboration, MESSAGE_TYPES};
use mockingbird::corpus::notes::{notes_api, NOTES_CLASSES};
use mockingbird::corpus::{isomorphic_variant, random_mtype, sample_value, visualage};
use mockingbird::mtype::kind::TABLE1_TAGS;
use mockingbird::mtype::{IntRange, MtypeGraph, RealPrecision, Repertoire};
use mockingbird::stype::ast::Stype;
use mockingbird::stype::lower::Lowerer;
use mockingbird::stype::script::apply_script;
use mockingbird::values::{Endian, MValue};
use mockingbird::wire::{CdrReader, CdrWriter};
use mockingbird::Session;

use mockingbird_bench::{
    c_fitter_impl, fitter_remote_loopback, fitter_session, fitter_stub, point_list,
};

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Per-call microseconds over `iters` runs of `f`.
fn per_call_us(iters: usize, mut f: impl FnMut()) -> f64 {
    // Warm up.
    for _ in 0..iters.min(100) {
        f();
    }
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn t1() {
    println!("== T1: Table 1 — the Mtype inventory ==");
    let mut g = MtypeGraph::new();
    let ch = g.character(Repertoire::Latin1);
    let int = g.integer(IntRange::signed_bits(32));
    let real = g.real(RealPrecision::SINGLE);
    let unit = g.unit();
    let record = g.record(vec![int, real]);
    let choice = g.choice(vec![int, real]);
    let recursive = g.list_of(real);
    let port = g.port(record);
    let reps = [ch, int, real, unit, record, choice, recursive, port];
    println!("{:<11} Description", "Mtype");
    for id in reps {
        let k = g.kind(id);
        println!("{:<11} {}", k.tag(), k.description());
    }
    assert_eq!(TABLE1_TAGS.len(), 8);
    println!();
}

fn f5() {
    println!("== F1–F5: the fitter example (paper §2–§3.4) ==");
    let ((), secs) = time(|| {
        let mut s = fitter_session().expect("session builds");
        println!("C fitter Mtype:  {}", s.display_mtype("fitter").unwrap());
        println!("JavaIdeal Mtype: {}", s.display_mtype("JavaIdeal").unwrap());
        let plan = s.compare("JavaIdeal", "fitter", Mode::Equivalence).unwrap();
        println!("match: YES ({} node pairs)", plan.len());
    });
    println!("pipeline wall time: {:.4}s", secs);
    let (stub, _) = fitter_stub().unwrap();
    let out = stub.call(&[point_list(5)], &c_fitter_impl).unwrap();
    println!("stub(5 points) -> {out}");
    println!();
}

fn f4() {
    println!("== F3–F4: imposed types from the IDL compiler and X2Y baselines ==");
    let mut s = Session::new();
    s.load_idl(
        "interface JavaFriendly {
           struct Point { float x; float y; };
           struct Line { Point start; Point end; };
           typedef sequence<Point> PointVector;
           Line fitter(in PointVector pts);
         };",
    )
    .unwrap();
    s.load_c(
        "typedef float cpoint[2];
         void fitter(cpoint pts[], int count, cpoint *start, cpoint *end);",
    )
    .unwrap();
    for (file, src) in generate_java(s.universe(), "JavaFriendly.Point") {
        println!("--- {file} (imposed) ---\n{src}");
    }
    println!("--- X2Y translation of the C fitter ---");
    println!("{}", c_to_java(s.universe(), "fitter").unwrap());
}

fn e1() {
    println!("== E1: VisualAge scaling (paper §5) ==");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "classes", "methods", "annotations", "lower (s)", "compare (s)", "matched"
    );
    for n in [12usize, 50, 100, 250, 500] {
        let mut pair = visualage(n, 42);
        let annotations = pair
            .script
            .lines()
            .filter(|l| l.starts_with("annotate"))
            .count();
        apply_script(&mut pair.java, &pair.script).unwrap();
        let mut g = MtypeGraph::new();
        let (ids, lower_s) = time(|| {
            let mut cxx_ids = Vec::new();
            {
                let mut lw = Lowerer::new(&pair.cxx, &mut g);
                for name in &pair.class_names {
                    cxx_ids.push(lw.lower_named(name).unwrap());
                }
            }
            let mut java_ids = Vec::new();
            {
                let mut lw = Lowerer::new(&pair.java, &mut g);
                for name in &pair.class_names {
                    java_ids.push(lw.lower_named(name).unwrap());
                }
            }
            (cxx_ids, java_ids)
        });
        let (matched, cmp_s) = time(|| {
            // One comparer across the corpus: its proof caches amortise
            // the shared class graph (the §5 batch pipeline).
            let cmp = Comparer::new(&g, &g);
            ids.0
                .iter()
                .zip(&ids.1)
                .filter(|(c, j)| cmp.compare(**c, **j, Mode::Equivalence).is_ok())
                .count()
        });
        println!(
            "{n:>8} {:>9} {annotations:>12} {lower_s:>12.4} {cmp_s:>12.4} {matched:>9}/{n}",
            pair.method_count
        );
    }
    println!();
}

fn e2() {
    println!("== E2: Lotus Notes API feasibility (paper §5) ==");
    let mut pair = notes_api();
    apply_script(&mut pair.java, &pair.script).unwrap();
    let mut g = MtypeGraph::new();
    let mut pairs = Vec::new();
    for name in NOTES_CLASSES {
        let c = Lowerer::new(&pair.cxx, &mut g).lower_named(name).unwrap();
        let j = Lowerer::new(&pair.java, &mut g).lower_named(name).unwrap();
        pairs.push((c, j));
    }
    let (matched, secs) = time(|| {
        let cmp = Comparer::new(&g, &g);
        pairs
            .iter()
            .filter(|(c, j)| cmp.compare(*c, *j, Mode::Equivalence).is_ok())
            .count()
    });
    println!(
        "30-class representative subset: {matched}/30 interfaces matched \
         ({} methods, {secs:.3}s total)",
        pair.method_count
    );
    println!();
}

fn e3() {
    println!("== E3: collaboration messaging (paper §5) ==");
    let corpus = collaboration();
    let mut s = Session::new();
    for d in corpus.java.iter() {
        s.universe_mut().insert(d.clone()).unwrap();
    }
    s.annotate(&corpus.script).unwrap();
    let mut tys = HashMap::new();
    for m in MESSAGE_TYPES {
        tys.insert(m, s.mtype(m).unwrap());
    }
    let graph = Arc::new(s.graph().clone());
    let mut rng = StdRng::seed_from_u64(5);
    println!(
        "{:<18} {:>12} {:>14} {:>14}",
        "message", "CDR bytes", "encode (µs)", "decode (µs)"
    );
    for m in ["CursorMoved", "ShapeMoved", "TextInserted", "StateSnapshot"] {
        let v = sample_value(&graph, tys[m], &mut rng, 8);
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&graph, tys[m], &v).unwrap();
        let bytes = w.into_bytes();
        let enc = per_call_us(20_000, || {
            let mut w = CdrWriter::new(Endian::Little);
            w.put_value(&graph, tys[m], &v).unwrap();
            std::hint::black_box(w.into_bytes());
        });
        let dec = per_call_us(20_000, || {
            let mut r = CdrReader::new(&bytes, Endian::Little);
            std::hint::black_box(r.get_value(&graph, tys[m]).unwrap());
        });
        println!("{m:<18} {:>12} {enc:>14.2} {dec:>14.2}", bytes.len());
    }
    println!("(21 message types / 22 app classes declared; all lower and round-trip)");
    println!();
}

fn x1() {
    println!("== X1: does two-declarations add overhead? (paper §6) ==");
    let (stub, _) = fitter_stub().unwrap();
    let remote = fitter_remote_loopback().unwrap();
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "path (µs/call)", "4 pts", "64 pts", "1024 pts"
    );
    let mut rows: Vec<(&str, Vec<f64>)> = Vec::new();
    for (label, f) in [
        (
            "native_call",
            Box::new(|pts: &MValue| {
                c_fitter_impl(MValue::Record(vec![pts.clone()])).unwrap();
            }) as Box<dyn Fn(&MValue)>,
        ),
        (
            "mockingbird_local_stub",
            Box::new(|pts: &MValue| {
                stub.call(std::slice::from_ref(pts), &c_fitter_impl)
                    .unwrap();
            }),
        ),
        (
            "mockingbird_remote_loopback",
            Box::new(|pts: &MValue| {
                remote.call(std::slice::from_ref(pts)).unwrap();
            }),
        ),
    ] {
        let mut cells = Vec::new();
        for n in [4usize, 64, 1024] {
            let pts = point_list(n);
            let iters = if n >= 1024 { 2_000 } else { 10_000 };
            cells.push(per_call_us(iters, || f(&pts)));
        }
        rows.push((label, cells));
    }

    // The marshalling comparison against the IDL-compiler baseline.
    let mut s = fitter_session().unwrap();
    s.load_java("public class WirePoint { private float x; private float y; }")
        .unwrap();
    let plan = s.compare("Point", "WirePoint", Mode::Equivalence).unwrap();
    let wire_ty = s.mtype("WirePoint").unwrap();
    let uni = s.universe().clone();
    let v = MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]);
    let direct = per_call_us(50_000, || {
        std::hint::black_box(direct_marshal(&plan, wire_ty, &v, Endian::Little).unwrap());
    });
    let path = ImposedPath {
        uni: &uni,
        imposed_decl: Stype::named("WirePoint"),
        bridge: plan.clone(),
        imposed_ty: wire_ty,
    };
    let imposed = per_call_us(50_000, || {
        std::hint::black_box(path.marshal(&v, Endian::Little).unwrap());
    });

    for (label, cells) in rows {
        println!(
            "{label:<28} {:>12.2} {:>12.2} {:>12.2}",
            cells[0], cells[1], cells[2]
        );
    }
    println!();
    println!("marshal one Point to CDR:");
    println!("  mockingbird direct      {direct:>10.3} µs/value");
    println!("  idl-compiler hand bridge {imposed:>9.3} µs/value (materialises imposed objects)");
    println!(
        "  -> two-declarations path is {}x the baseline cost",
        (direct / imposed * 100.0).round() / 100.0
    );
    println!();
}

fn x2() {
    println!("== X2: comparer scaling and the isomorphism-rule ablation (paper §4) ==");
    println!(
        "{:<10} {:>10} {:>16} {:>16}",
        "depth", "nodes", "full rules (µs)", "strict (µs)"
    );
    for depth in [2usize, 3, 4, 5] {
        let mut rng = StdRng::seed_from_u64(depth as u64);
        let mut g = MtypeGraph::new();
        let ty = random_mtype(&mut g, &mut rng, depth);
        let mut h = MtypeGraph::new();
        let var = isomorphic_variant(&g, ty, &mut h);
        let full = per_call_us(500, || {
            assert!(Comparer::new(&g, &h).equivalent(ty, var));
        });
        let strict = per_call_us(500, || {
            // Strict rejects the variant (that is the ablation finding).
            let _ = Comparer::with_rules(&g, &h, RuleSet::strict()).equivalent(ty, var);
        });
        println!(
            "{depth:<10} {:>10} {full:>16.2} {strict:>16.2}",
            g.len() + h.len()
        );
    }
    // Match-rate ablation over 100 random variants.
    let mut full_ok = 0;
    let mut strict_ok = 0;
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MtypeGraph::new();
        let ty = random_mtype(&mut g, &mut rng, 3);
        let mut h = MtypeGraph::new();
        let var = isomorphic_variant(&g, ty, &mut h);
        if Comparer::new(&g, &h).equivalent(ty, var) {
            full_ok += 1;
        }
        if Comparer::with_rules(&g, &h, RuleSet::strict()).equivalent(ty, var) {
            strict_ok += 1;
        }
    }
    println!(
        "match rate on 100 shuffled/regrouped variants: full rules {full_ok}%, \
         pure Amadio–Cardelli {strict_ok}%"
    );
    println!();
}

fn x3() {
    println!("== X3: CDR throughput by shape ==");
    let mut g = MtypeGraph::new();
    let r = g.real(RealPrecision::SINGLE);
    let point = g.record(vec![r, r]);
    let list = g.list_of(point);
    let v = MValue::List(
        (0..1024)
            .map(|k| MValue::Record(vec![MValue::Real(k as f64), MValue::Real(0.5)]))
            .collect(),
    );
    let mut w = CdrWriter::new(Endian::Little);
    w.put_value(&g, list, &v).unwrap();
    let bytes = w.into_bytes();
    for endian in [Endian::Little, Endian::Big] {
        let enc = per_call_us(2_000, || {
            let mut w = CdrWriter::new(endian);
            w.put_value(&g, list, &v).unwrap();
            std::hint::black_box(w.into_bytes());
        });
        let mut w = CdrWriter::new(endian);
        w.put_value(&g, list, &v).unwrap();
        let encoded = w.into_bytes();
        let dec = per_call_us(2_000, || {
            let mut r = CdrReader::new(&encoded, endian);
            std::hint::black_box(r.get_value(&g, list).unwrap());
        });
        let mb = bytes.len() as f64 / 1e6;
        println!(
            "1024-point list, {endian:?}: encode {enc:.1} µs ({:.0} MB/s), \
             decode {dec:.1} µs ({:.0} MB/s)",
            mb / (enc / 1e6),
            mb / (dec / 1e6)
        );
    }
    println!();
}

fn x4() {
    use mockingbird::runtime::transport::TcpConnection;
    use mockingbird::runtime::{
        Connection, ConnectionPool, Dispatcher, MetricsSnapshot, MultiplexedConnection, RemoteRef,
        RuntimeError, Servant, TcpServer, WireOp, WireServant,
    };

    println!("== X4: concurrent runtime — serial vs multiplexed TCP ==");
    const THREADS: usize = 8;
    const CALLS_PER_THREAD: usize = 100;
    // The servant models a service with per-call latency (database hit,
    // downstream RPC). The serial client holds its stream lock across
    // the full exchange, so threads serialise on that latency; the
    // multiplexed paths keep requests in flight and overlap it.
    const SERVICE_DELAY: std::time::Duration = std::time::Duration::from_micros(500);

    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(32));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let op = WireOp::new(graph, rec, rec);
    let make_server = || {
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| {
            std::thread::sleep(SERVICE_DELAY);
            Ok::<_, RuntimeError>(v)
        });
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), op.clone());
        let d = Arc::new(Dispatcher::new());
        d.register(b"obj".to_vec(), WireServant::new(servant, ops));
        TcpServer::bind("127.0.0.1:0", d).unwrap()
    };
    // Each client connection carries its own metrics registry; the run
    // returns that node's snapshot along with the wall time.
    let run = |conn: Arc<dyn Connection>| -> (f64, MetricsSnapshot) {
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), op.clone());
        let remote = Arc::new(RemoteRef::new(conn, b"obj".to_vec(), ops, Endian::Little));
        // Warm up the path once before timing.
        remote
            .invoke("echo", &MValue::Record(vec![MValue::Int(0)]))
            .unwrap();
        let t = Instant::now();
        let handles: Vec<_> = (0..THREADS)
            .map(|ti| {
                let r = remote.clone();
                std::thread::spawn(move || {
                    for k in 0..CALLS_PER_THREAD {
                        let payload = (ti * 1_000 + k) as i128;
                        let out = r
                            .invoke("echo", &MValue::Record(vec![MValue::Int(payload)]))
                            .unwrap();
                        assert_eq!(out, MValue::Record(vec![MValue::Int(payload)]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        (t.elapsed().as_secs_f64(), remote.metrics().snapshot())
    };

    let calls = (THREADS * CALLS_PER_THREAD) as f64;
    let mut rows: Vec<(&str, f64)> = Vec::new();
    let mut snaps: Vec<MetricsSnapshot> = Vec::new();
    {
        let mut server = make_server();
        let (secs, snap) = run(Arc::new(TcpConnection::connect(server.addr()).unwrap()));
        rows.push(("serial (1 socket, lock per call)", secs));
        snaps.push(snap);
        server.shutdown();
    }
    {
        let mut server = make_server();
        let (secs, snap) = run(Arc::new(
            MultiplexedConnection::connect(server.addr()).unwrap(),
        ));
        rows.push(("multiplexed (1 socket, pipelined)", secs));
        snaps.push(snap);
        server.shutdown();
    }
    {
        let mut server = make_server();
        let (secs, snap) = run(Arc::new(ConnectionPool::connect(server.addr(), 4).unwrap()));
        rows.push(("pooled (4 multiplexed sockets)", secs));
        snaps.push(snap);
        server.shutdown();
    }
    let serial = rows[0].1;
    println!(
        "{:<36} {:>10} {:>12} {:>9}",
        "transport", "total (s)", "calls/s", "speedup"
    );
    for (label, secs) in &rows {
        println!(
            "{label:<36} {secs:>10.3} {:>12.0} {:>8.2}x",
            calls / secs,
            serial / secs
        );
    }
    let snap = snaps.iter().fold(MetricsSnapshot::default(), |mut acc, s| {
        acc.requests += s.requests;
        acc.replies += s.replies;
        acc.retries += s.retries;
        acc.timeouts += s.timeouts;
        acc.bytes_sent += s.bytes_sent;
        acc.bytes_received += s.bytes_received;
        acc
    });
    println!(
        "runtime counters: {} requests, {} replies, {} retries, {} timeouts, \
         {} B out, {} B in",
        snap.requests,
        snap.replies,
        snap.retries,
        snap.timeouts,
        snap.bytes_sent,
        snap.bytes_received
    );
    println!();
}

fn x5() {
    use mockingbird::comparer::CompareCache;
    use mockingbird::stype::json::Json;
    use mockingbird::{BatchCompiler, BatchOptions, BatchReport};

    println!("== X5: incremental batch compilation — cold vs warm cache ==");
    let n = 200usize;
    let mut pair = visualage(n, 42);
    apply_script(&mut pair.java, &pair.script).unwrap();
    let mut g = MtypeGraph::new();
    let mut cxx_ids = Vec::new();
    {
        let mut lw = Lowerer::new(&pair.cxx, &mut g);
        for name in &pair.class_names {
            cxx_ids.push(lw.lower_named(name).unwrap());
        }
    }
    let mut java_ids = Vec::new();
    {
        let mut lw = Lowerer::new(&pair.java, &mut g);
        for name in &pair.class_names {
            java_ids.push(lw.lower_named(name).unwrap());
        }
    }
    let snap = g.snapshot();
    let pairs: Vec<_> = cxx_ids.into_iter().zip(java_ids).collect();

    let serial = BatchOptions {
        jobs: 1,
        build_plans: false,
        ..BatchOptions::default()
    };
    let parallel = BatchOptions {
        jobs: 0,
        build_plans: false,
        ..BatchOptions::default()
    };

    let row = |label: &str, r: &BatchReport| {
        println!(
            "{label:<26} {:>10.4} {:>9} {:>8} {:>8} {:>10}",
            r.stats.wall.as_secs_f64(),
            format!("{}/{}", r.stats.matched, r.stats.total_pairs),
            r.stats.cache.hits,
            r.stats.cache.misses,
            r.stats.cache.corr_hits,
        );
    };
    println!(
        "{:<26} {:>10} {:>9} {:>8} {:>8} {:>10}",
        "run", "wall (s)", "matched", "hits", "misses", "corr hits"
    );

    // Cold serial on a fresh cache, then warm replays on the same cache.
    let bc = BatchCompiler::new(snap.clone());
    let cold_serial = bc.compile(&pairs, &serial);
    row("cold serial", &cold_serial);
    let cold_parallel_bc = BatchCompiler::new(snap.clone());
    let cold_parallel = cold_parallel_bc.compile(&pairs, &parallel);
    row("cold parallel", &cold_parallel);
    let warm_serial = bc.compile(&pairs, &serial);
    row("warm serial", &warm_serial);
    let warm_parallel = bc.compile(&pairs, &parallel);
    row("warm parallel", &warm_parallel);
    // The persistence path: stage the warm cache in an artifact store,
    // load a fresh cache from it.
    let staging = mockingbird::artifact::MemoryStore::new();
    bc.cache().store_into(&staging);
    let restored = std::sync::Arc::new(CompareCache::new());
    restored.load_from(&staging);
    let restored_bc = BatchCompiler::new(snap).with_cache(restored);
    let warm_restored = restored_bc.compile(&pairs, &parallel);
    row("warm restored (persisted)", &warm_restored);

    let speedup = cold_serial.stats.wall.as_secs_f64() / warm_parallel.stats.wall.as_secs_f64();
    let warm_cache = &warm_parallel.stats.cache;
    println!(
        "warm-parallel vs cold-serial: {speedup:.1}x \
         ({:.0}% verdict hit rate, {} verdicts cached)",
        warm_cache.hit_rate() * 100.0,
        warm_cache.verdicts
    );

    let json = Json::obj([
        ("pairs", Json::Int(warm_parallel.stats.total_pairs as i128)),
        (
            "unique",
            Json::Int(warm_parallel.stats.unique_pairs as i128),
        ),
        ("workers", Json::Int(warm_parallel.stats.workers as i128)),
        (
            "cold_serial_s",
            Json::Float(cold_serial.stats.wall.as_secs_f64()),
        ),
        (
            "cold_parallel_s",
            Json::Float(cold_parallel.stats.wall.as_secs_f64()),
        ),
        (
            "warm_serial_s",
            Json::Float(warm_serial.stats.wall.as_secs_f64()),
        ),
        (
            "warm_parallel_s",
            Json::Float(warm_parallel.stats.wall.as_secs_f64()),
        ),
        (
            "warm_restored_s",
            Json::Float(warm_restored.stats.wall.as_secs_f64()),
        ),
        ("speedup", Json::Float(speedup)),
        ("hits", Json::Int(warm_cache.hits as i128)),
        ("misses", Json::Int(warm_cache.misses as i128)),
        ("inserts", Json::Int(warm_cache.inserts as i128)),
        ("corr_hits", Json::Int(warm_cache.corr_hits as i128)),
        ("hit_rate", Json::Float(warm_cache.hit_rate())),
        ("verdicts", Json::Int(warm_cache.verdicts as i128)),
    ]);
    std::fs::write("BENCH_compile.json", json.pretty() + "\n").expect("write BENCH_compile.json");
    println!("wrote BENCH_compile.json");
    println!();
}

fn x6() {
    use mockingbird::stype::json::Json;
    use mockingbird::wire::WireProgram;
    use mockingbird::{BatchCompiler, BatchOptions, PairOutcome};
    use std::hint::black_box;
    use std::sync::Arc;

    println!("== X6: data-plane compilation — fused programs vs interpretive marshal ==");
    // The canonical 200-class data corpus (`marshal_corpus`): each class
    // is a random message Mtype and its comm/assoc-permuted isomorphic
    // variant, both imported into one shared graph (the shape of a real
    // project's message universe). X11, `mbc emit-stubs`, and the
    // property suite reconstruct the same pairs from the same seed.
    let n = 200usize;
    let corpus = mockingbird::corpus::marshal_corpus(n, 42);
    let mut rng = corpus.rng;
    let graph = corpus.graph.clone();
    let bc = BatchCompiler::new(graph.clone());
    let (report, compile_s) = time(|| bc.compile(&corpus.pairs, &BatchOptions::default()));

    // Collect every pair the program compiler fused in both directions,
    // with a sampled value of the left (native) type.
    let mut cases: Vec<(
        Arc<mockingbird::plan::CoercionPlan>,
        Arc<WireProgram>,
        MValue,
    )> = Vec::new();
    for p in &report.pairs {
        if let PairOutcome::Match {
            plan: Some(plan),
            program: Some(prog),
            ..
        } = &p.outcome
        {
            if prog.two_way() {
                let v = sample_value(&graph, plan.left_root(), &mut rng, 6);
                cases.push((plan.clone(), prog.clone(), v));
            }
        }
    }
    let ps = &report.stats.programs;
    println!(
        "{n} classes compared + fused in {compile_s:.3}s: {} matched, \
         {} programs compiled, {} interpretive fallbacks, {} two-way cases benched",
        report.stats.matched,
        ps.compiles,
        ps.unsupported,
        cases.len()
    );
    // Attribute every interpretive fallback to the compiler's reason
    // for declining the pair (the opcode VM's coverage gaps, by class).
    let breakdown: Vec<_> = bc
        .programs()
        .fallback_breakdown()
        .into_iter()
        .filter(|&(_, count)| count > 0)
        .collect();
    if !breakdown.is_empty() {
        let parts: Vec<String> = breakdown
            .iter()
            .map(|(kind, count)| format!("{count} {}", kind.label()))
            .collect();
        println!("fallback reasons: {}", parts.join(", "));
    }

    // Agreement check (the interpretive path is the oracle), plus the
    // corpus' total wire footprint for throughput numbers.
    let mut corpus_bytes = 0usize;
    for (plan, prog, v) in &cases {
        let mut fused = CdrWriter::new(Endian::Little);
        prog.encode_value(&mut fused, v).unwrap();
        let converted = plan.convert(v).unwrap();
        let mut oracle = CdrWriter::new(Endian::Little);
        oracle
            .put_value(&graph, plan.right_root(), &converted)
            .unwrap();
        let fused = fused.into_bytes();
        let oracle = oracle.into_bytes();
        assert_eq!(fused, oracle, "fused encode must match oracle");
        // Decode must agree with the interpretive round trip (values
        // using dedup-collapsed duplicate alternatives canonicalise to
        // the first occurrence on both paths, so the oracle — not the
        // original value — is the ground truth).
        let mut or = CdrReader::new(&oracle, Endian::Little);
        let wire = or.get_value(&graph, plan.right_root()).unwrap();
        let expect = plan.convert_back(&wire).unwrap();
        let mut r = CdrReader::new(&fused, Endian::Little);
        assert_eq!(prog.decode_value(&mut r).unwrap(), expect, "round trip");
        corpus_bytes += fused.len();
    }

    // One "pass" marshals and unmarshals the whole corpus.
    let interp_us = per_call_us(200, || {
        for (plan, _, v) in &cases {
            let converted = plan.convert(v).unwrap();
            let mut w = CdrWriter::new(Endian::Little);
            w.put_value(&graph, plan.right_root(), &converted).unwrap();
            let bytes = w.into_bytes();
            let mut r = CdrReader::new(&bytes, Endian::Little);
            let wire = r.get_value(&graph, plan.right_root()).unwrap();
            black_box(plan.convert_back(&wire).unwrap());
        }
    });
    let mut pooled = Vec::new();
    let fused_us = per_call_us(200, || {
        for (_, prog, v) in &cases {
            let mut w = CdrWriter::from_vec(std::mem::take(&mut pooled), Endian::Little);
            prog.encode_value(&mut w, v).unwrap();
            pooled = w.into_bytes();
            let mut r = CdrReader::new(&pooled, Endian::Little);
            black_box(prog.decode_value(&mut r).unwrap());
        }
    });
    let speedup = interp_us / fused_us;
    let mb = corpus_bytes as f64 / 1e6;
    println!(
        "round-trip over the corpus ({corpus_bytes} wire bytes/pass): \
         interpretive {interp_us:.1} µs ({:.0} MB/s), fused {fused_us:.1} µs \
         ({:.0} MB/s) -> {speedup:.1}x",
        mb / (interp_us / 1e6),
        mb / (fused_us / 1e6)
    );

    let json = Json::obj([
        ("classes", Json::Int(n as i128)),
        ("matched", Json::Int(report.stats.matched as i128)),
        ("programs_compiled", Json::Int(ps.compiles as i128)),
        ("interpretive_fallbacks", Json::Int(ps.unsupported as i128)),
        (
            "fallback_reasons",
            Json::obj(
                breakdown
                    .iter()
                    .map(|(kind, count)| (kind.label(), Json::Int(*count as i128))),
            ),
        ),
        ("two_way_cases", Json::Int(cases.len() as i128)),
        ("corpus_wire_bytes", Json::Int(corpus_bytes as i128)),
        ("interpretive_roundtrip_us", Json::Float(interp_us)),
        ("fused_roundtrip_us", Json::Float(fused_us)),
        ("speedup", Json::Float(speedup)),
    ]);
    std::fs::write("BENCH_marshal.json", json.pretty() + "\n").expect("write BENCH_marshal.json");
    println!("wrote BENCH_marshal.json");
    println!();
}

fn x7() {
    use mockingbird::runtime::{
        BreakerConfig, CallOptions, ChaosConfig, ChaosConnection, ChaosSchedule, Connection,
        ConnectionPool, Connector, Dispatcher, HedgePolicy, InMemoryConnection, MetricsRegistry,
        MetricsSnapshot, RemoteRef, RetryPolicy, RuntimeError, Servant, WireOp, WireServant,
    };
    use mockingbird::stype::json::Json;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    println!("== X7: resilience — success rate and p99 under injected faults ==");
    const SEED: u64 = 0x0C4A_0507;
    const CALLS: u32 = 600;
    println!("chaos seed: {SEED:#x} ({CALLS} idempotent calls per cell)");

    // An in-memory echo service reached through chaos-wrapped
    // connections, so the only failures are the injected ones. Each
    // cell gets one registry shared by the dispatcher, the pool, and
    // the chaos layer, so its counters cover the whole cell and
    // nothing else.
    let service = |registry: &Arc<MetricsRegistry>| {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(64));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let op = WireOp::new(graph, rec, rec).idempotent();
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), op);
        let d = Arc::new(Dispatcher::with_metrics(Arc::clone(registry)));
        d.register(b"obj".to_vec(), WireServant::new(servant, ops.clone()));
        (d, ops)
    };

    // One measurement cell: a 2-endpoint pool over chaos connectors at
    // `rate`, driven with or without the supervision stack. Endpoint 2
    // is additionally *degraded* — every call through it is delayed
    // uniformly up to 10 ms — so tail latency measures whether hedging
    // routes around the slow replica.
    let run_cell = |rate: f64, supervised: bool| -> (f64, f64, MetricsSnapshot) {
        let registry = MetricsRegistry::shared();
        let (d, ops) = service(&registry);
        let dials = Arc::new(AtomicU64::new(0));
        let connector: Connector = Arc::new(move |addr: std::net::SocketAddr| {
            let n = dials.fetch_add(1, Ordering::SeqCst);
            let mut conn: Arc<dyn Connection> = Arc::new(ChaosConnection::with_fault_rate(
                Arc::new(InMemoryConnection::new(d.clone())),
                SEED + n,
                rate,
            ));
            if addr.port() == 2 {
                let degraded = ChaosConfig {
                    delay_rate: 1.0,
                    max_delay: Duration::from_millis(10),
                    ..ChaosConfig::none()
                };
                conn = Arc::new(ChaosConnection::new(
                    conn,
                    ChaosSchedule::new(SEED ^ n, degraded),
                ));
            }
            Ok(conn)
        });
        let breaker = if supervised {
            BreakerConfig::default()
        } else {
            BreakerConfig::disabled()
        };
        let pool = ConnectionPool::builder(vec![
            "127.0.0.1:1".parse().unwrap(),
            "127.0.0.1:2".parse().unwrap(),
        ])
        .with_slots(1)
        .with_breaker(breaker)
        .with_connector(connector)
        .with_metrics(Arc::clone(&registry))
        .build()
        .expect("pool builds");
        let mut opts = CallOptions::new().with_retry(RetryPolicy {
            max_retries: 5,
            initial_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
            jitter: true,
        });
        if supervised {
            opts = opts.with_hedge(HedgePolicy::After(Duration::from_millis(3)));
        }
        let remote =
            RemoteRef::new(Arc::new(pool), b"obj".to_vec(), ops, Endian::Little).with_options(opts);

        let mut ok = 0u32;
        let mut lat = Vec::with_capacity(CALLS as usize);
        for k in 0..CALLS {
            let arg = MValue::Record(vec![MValue::Int(i128::from(k))]);
            let t = Instant::now();
            match remote.invoke("echo", &arg) {
                Ok(v) => {
                    assert_eq!(v, arg, "wrong payload at call {k} (seed {SEED:#x})");
                    ok += 1;
                }
                Err(RuntimeError::Transport(_) | RuntimeError::Timeout(_)) => {}
                Err(e) => panic!("unexpected error class: {e}"),
            }
            lat.push(t.elapsed());
        }
        lat.sort();
        let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
        (
            f64::from(ok) / f64::from(CALLS),
            p99.as_secs_f64() * 1e6,
            registry.snapshot(),
        )
    };

    let mut totals = MetricsSnapshot::default();
    println!(
        "{:>11} {:>22} {:>26}",
        "fault rate", "retry only", "breaker+hedging"
    );
    let mut cells = Vec::new();
    for rate in [0.05, 0.20] {
        let (base_ok, base_p99, base_snap) = run_cell(rate, false);
        let (sup_ok, sup_p99, sup_snap) = run_cell(rate, true);
        for s in [&base_snap, &sup_snap] {
            totals.faults_injected += s.faults_injected;
            totals.retries += s.retries;
            totals.hedges_fired += s.hedges_fired;
            totals.hedges_won += s.hedges_won;
        }
        println!(
            "{:>10.0}% {:>13.1}% {:>7.0}µs {:>17.1}% {:>7.0}µs",
            rate * 100.0,
            base_ok * 100.0,
            base_p99,
            sup_ok * 100.0,
            sup_p99
        );
        cells.push(Json::obj([
            ("fault_rate", Json::Float(rate)),
            (
                "baseline",
                Json::obj([
                    ("success_rate", Json::Float(base_ok)),
                    ("p99_us", Json::Float(base_p99)),
                ]),
            ),
            (
                "supervised",
                Json::obj([
                    ("success_rate", Json::Float(sup_ok)),
                    ("p99_us", Json::Float(sup_p99)),
                ]),
            ),
        ]));
        if rate >= 0.20 {
            assert!(
                sup_ok >= 0.99,
                "supervised success {sup_ok:.3} under 0.99 at 20% faults (seed {SEED:#x})"
            );
        }
    }
    println!(
        "faults injected: {}, retries: {}, hedges fired/won: {}/{}",
        totals.faults_injected, totals.retries, totals.hedges_fired, totals.hedges_won
    );

    let json = Json::obj([
        ("seed", Json::Int(i128::from(SEED))),
        ("calls_per_cell", Json::Int(i128::from(CALLS))),
        ("rates", Json::Array(cells)),
        (
            "faults_injected",
            Json::Int(i128::from(totals.faults_injected)),
        ),
        ("retries", Json::Int(i128::from(totals.retries))),
        ("hedges_fired", Json::Int(i128::from(totals.hedges_fired))),
        ("hedges_won", Json::Int(i128::from(totals.hedges_won))),
    ]);
    std::fs::write("BENCH_resilience.json", json.pretty() + "\n")
        .expect("write BENCH_resilience.json");
    println!("wrote BENCH_resilience.json");
    println!();
}

fn x8() {
    use mockingbird::runtime::{
        ConnectionPool, Dispatcher, RemoteRef, RuntimeError, Servant, TcpServer, WireOp,
        WireServant,
    };
    use mockingbird::stype::json::Json;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    println!("== X8: observability — tracing overhead and the metrics endpoint ==");
    let quick = std::env::var_os("MB_BENCH_QUICK").is_some();
    let batches = if quick { 8 } else { 40 };
    let batch_calls = if quick { 50 } else { 200 };

    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let op = WireOp::new(graph, rec, rec).idempotent();
    let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok::<_, RuntimeError>(v));
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let d = Arc::new(Dispatcher::new());
    d.register(b"obj".to_vec(), WireServant::new(servant, ops.clone()));
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();

    // Two clients against the same server: one with tracing off (the
    // PR-4 baseline path), one minting and propagating a trace context
    // per call. Batches alternate between them so clock drift and cache
    // effects hit both sides equally. Span capture runs in its
    // production shape — only calls over the slow threshold are kept.
    let slow = std::time::Duration::from_micros(100);
    server.metrics().set_slow_threshold(slow);
    let client = |tracing: bool| {
        let pool = ConnectionPool::connect(server.addr(), 2).unwrap();
        let remote = RemoteRef::new(Arc::new(pool), b"obj".to_vec(), ops.clone(), Endian::Little);
        remote.metrics().set_tracing(tracing);
        remote.metrics().set_slow_threshold(slow);
        remote
    };
    let off = client(false);
    let on = client(true);
    let arg = MValue::Record(vec![MValue::Int(7)]);
    // Warm both paths before sampling.
    for _ in 0..100 {
        off.invoke("echo", &arg).unwrap();
        on.invoke("echo", &arg).unwrap();
    }
    let mut off_lat = Vec::with_capacity(batches * batch_calls);
    let mut on_lat = Vec::with_capacity(batches * batch_calls);
    for _ in 0..batches {
        for (remote, lat) in [(&off, &mut off_lat), (&on, &mut on_lat)] {
            for _ in 0..batch_calls {
                let t = Instant::now();
                remote.invoke("echo", &arg).unwrap();
                lat.push(t.elapsed());
            }
        }
    }
    off_lat.sort();
    on_lat.sort();
    let p50_off = off_lat[off_lat.len() / 2].as_secs_f64() * 1e6;
    let p50_on = on_lat[on_lat.len() / 2].as_secs_f64() * 1e6;
    let overhead = p50_on / p50_off - 1.0;

    // The per-op histograms on each client registry see the same calls
    // (recorded inside `invoke`, so slightly tighter than the caller's
    // stopwatch) at ~6% bucket resolution.
    let hist_off = off.metrics().client_histogram("echo").snapshot();
    let hist_on = on.metrics().client_histogram("echo").snapshot();
    let spans = on.metrics().spans().len();
    println!(
        "{:<26} {:>10} {:>14} {:>14} {:>10}",
        "client", "calls", "p50 (µs)", "hist p50 (µs)", "slow spans"
    );
    println!(
        "{:<26} {:>10} {:>14.1} {:>14} {:>10}",
        "tracing off",
        off_lat.len(),
        p50_off,
        hist_off.quantile(0.5),
        off.metrics().spans().len()
    );
    println!(
        "{:<26} {:>10} {:>14.1} {:>14} {:>10}",
        "tracing on (sampled)",
        on_lat.len(),
        p50_on,
        hist_on.quantile(0.5),
        spans
    );
    println!("tracing-on p50 overhead: {:+.1}%", overhead * 100.0);

    // Scrape the server's metrics listener — the same endpoint an
    // operator would point Prometheus at.
    let scrape = |path: &str| -> String {
        let mut s = TcpStream::connect(server.metrics_addr()).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut reply = String::new();
        s.read_to_string(&mut reply).unwrap();
        let body_at = reply.find("\r\n\r\n").map_or(0, |k| k + 4);
        reply.split_off(body_at)
    };
    let prom = scrape("/metrics");
    let families = prom.lines().filter(|l| l.starts_with("# TYPE")).count();
    let json_body = scrape("/metrics.json");
    println!(
        "server /metrics: {} metric families, {} bytes; /metrics.json: {} bytes",
        families,
        prom.len(),
        json_body.len()
    );
    server.shutdown();

    let json = Json::obj([
        ("calls_per_mode", Json::Int(off_lat.len() as i128)),
        ("p50_off_us", Json::Float(p50_off)),
        ("p50_on_us", Json::Float(p50_on)),
        ("p50_overhead", Json::Float(overhead)),
        (
            "hist_p50_off_us",
            Json::Int(i128::from(hist_off.quantile(0.5))),
        ),
        (
            "hist_p50_on_us",
            Json::Int(i128::from(hist_on.quantile(0.5))),
        ),
        ("spans_captured", Json::Int(spans as i128)),
        ("prom_families", Json::Int(families as i128)),
    ]);
    std::fs::write("BENCH_observability.json", json.pretty() + "\n")
        .expect("write BENCH_observability.json");
    println!("wrote BENCH_observability.json");
    println!();
}

/// `VmRSS` (kB) and `Threads` from a process's `/proc/<pid>/status`;
/// `(0, 0)` off Linux.
fn proc_status(pid: u32) -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string(format!("/proc/{pid}/status")) else {
        return (0, 0);
    };
    let field = |key: &str| {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("Threads:"))
}

/// The X9 echo server, run as a child process so client and server each
/// get their own file-descriptor budget (10k connections is 10k fds on
/// *each* side). Prints `ADDR <ip:port>` on stdout, serves until stdin
/// closes (the parent holds the pipe), then shuts down.
fn x9_server(threaded: bool) {
    use mockingbird::runtime::{
        Dispatcher, RuntimeError, Servant, ServerConfig, TcpServer, WireOp, WireServant,
    };
    use std::io::Read;

    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok::<_, RuntimeError>(v));
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), WireOp::new(graph, rec, rec));
    let d = Arc::new(Dispatcher::new());
    d.register(b"echo".to_vec(), WireServant::new(servant, ops));
    // The baseline runs with one dispatch worker per connection so its
    // per-connection thread cost is the model's floor (accept thread +
    // worker), not an artifact of the default pool size.
    let config = if threaded {
        ServerConfig::default()
            .with_thread_per_connection(true)
            .with_workers(1)
    } else {
        ServerConfig::default()
    };
    let mut server = TcpServer::bind_with("127.0.0.1:0", d, config).expect("bind x9 server");
    println!("ADDR {}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    // Park until the parent drops our stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    server.shutdown();
}

/// One X9 measurement pass against a child server: open `conns`
/// connections, hold them, fan calls in from `threads` shards, then
/// close everything — recording wall times, latency quantiles, and
/// both processes' RSS/thread counts along the way.
#[allow(clippy::too_many_lines)]
fn x9_pass(
    label: &str,
    threaded: bool,
    conns: usize,
    threads: usize,
    calls_per_thread: usize,
) -> mockingbird::stype::json::Json {
    use mockingbird::runtime::{Connection, MultiplexedConnection};
    use mockingbird::stype::json::Json;
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .arg(if threaded {
            "x9-server-threaded"
        } else {
            "x9-server"
        })
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn x9 server");
    let child_pid = child.id();
    let mut lines = BufReader::new(child.stdout.take().expect("child stdout")).lines();
    let addr: std::net::SocketAddr = loop {
        let line = lines
            .next()
            .expect("child printed ADDR")
            .expect("read child");
        if let Some(a) = line.strip_prefix("ADDR ") {
            break a.parse().expect("parse child addr");
        }
    };

    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);

    let (client_rss_0, _) = proc_status(std::process::id());
    let (server_rss_0, server_threads_0) = proc_status(child_pid);

    // Phase 1: establish `conns` concurrent connections.
    let t = Instant::now();
    let pool: Vec<Arc<MultiplexedConnection>> = (0..conns)
        .map(|_| Arc::new(MultiplexedConnection::connect(addr).expect("connect")))
        .collect();
    let connect_s = t.elapsed().as_secs_f64();
    // Let the server-side registrations and thread spawns settle.
    std::thread::sleep(std::time::Duration::from_millis(if threaded {
        500
    } else {
        200
    }));
    let (client_rss_held, client_threads_held) = proc_status(std::process::id());
    let (server_rss_held, server_threads_held) = proc_status(child_pid);

    // Phase 2: fan-in — every shard thread walks its own slice of the
    // pool, one echo round trip per visited connection, so many
    // distinct sockets carry traffic at once.
    let t = Instant::now();
    let lat_handles: Vec<_> = (0..threads)
        .map(|shard| {
            let pool = pool.clone();
            let graph = graph.clone();
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(calls_per_thread);
                for k in 0..calls_per_thread {
                    let conn = &pool[(shard + k * threads) % pool.len()];
                    let mut w = CdrWriter::new(Endian::Little);
                    w.put_value(&graph, rec, &MValue::Record(vec![MValue::Int(k as i128)]))
                        .unwrap();
                    let req = mockingbird::wire::Message::request(
                        k as u32,
                        true,
                        b"echo".to_vec(),
                        "echo",
                        Endian::Little,
                        w.into_bytes(),
                    );
                    let t = Instant::now();
                    conn.call(&req).expect("echo").expect("reply");
                    lat.push(t.elapsed());
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<std::time::Duration> = lat_handles
        .into_iter()
        .flat_map(|h| h.join().expect("shard thread"))
        .collect();
    let fanin_s = t.elapsed().as_secs_f64();
    lat.sort();
    let q = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize].as_secs_f64() * 1e3;
    let (p50, p99) = (q(0.50), q(0.99));

    // Phase 3: close everything; both sides must return to baseline.
    let t = Instant::now();
    drop(pool);
    let close_s = t.elapsed().as_secs_f64();
    std::thread::sleep(std::time::Duration::from_millis(500));
    let (client_rss_after, _) = proc_status(std::process::id());
    let (server_rss_after, server_threads_after) = proc_status(child_pid);

    drop(child.stdin.take()); // EOF: the child shuts down and exits
    let _ = child.wait();

    println!(
        "{label:<24} {conns:>6} conns  connect {connect_s:>6.2}s  fan-in {:>6} calls \
         {fanin_s:>6.2}s  p50 {p50:>7.2}ms  p99 {p99:>8.2}ms",
        lat.len()
    );
    println!(
        "{:<24} server rss {server_rss_0:>7} -> {server_rss_held:>7} -> {server_rss_after:>7} kB \
         threads {server_threads_0:>4} -> {server_threads_held:>4} -> {server_threads_after:>4}",
        ""
    );
    println!(
        "{:<24} client rss {client_rss_0:>7} -> {client_rss_held:>7} -> {client_rss_after:>7} kB \
         ({client_threads_held} threads while holding; close {close_s:.2}s)",
        ""
    );

    Json::obj([
        ("engine", Json::Str(label.to_string())),
        ("connections", Json::Int(conns as i128)),
        ("connect_s", Json::Float(connect_s)),
        ("fanin_calls", Json::Int(lat.len() as i128)),
        ("fanin_s", Json::Float(fanin_s)),
        ("p50_ms", Json::Float(p50)),
        ("p99_ms", Json::Float(p99)),
        ("server_rss_held_kb", Json::Int(server_rss_held as i128)),
        ("server_rss_after_kb", Json::Int(server_rss_after as i128)),
        (
            "server_threads_held",
            Json::Int(server_threads_held as i128),
        ),
        (
            "server_threads_after",
            Json::Int(server_threads_after as i128),
        ),
        ("client_rss_held_kb", Json::Int(client_rss_held as i128)),
        (
            "server_kb_per_conn",
            Json::Float(server_rss_held.saturating_sub(server_rss_0) as f64 / conns as f64),
        ),
    ])
}

fn x9() {
    use mockingbird::runtime::{Connection, MultiplexedConnection};
    use mockingbird::stype::json::Json;

    println!("== X9: connection scaling — reactor vs thread-per-connection ==");
    let quick = std::env::var_os("MB_BENCH_QUICK").is_some();
    // The reactor holds the headline count; the baseline is capped —
    // at one-plus threads per connection it would otherwise spawn tens
    // of thousands of OS threads just to exist.
    let (reactor_conns, baseline_conns) = if quick { (512, 64) } else { (10_000, 256) };
    let (threads, calls_per_thread) = if quick { (16, 20) } else { (64, 100) };

    let reactor = x9_pass("reactor", false, reactor_conns, threads, calls_per_thread);
    let baseline = x9_pass(
        "thread-per-conn",
        true,
        baseline_conns,
        threads.min(baseline_conns),
        calls_per_thread,
    );

    // Churn flatness: open/call/close in a loop against a reactor
    // server; the client process's thread count must not grow with the
    // number of connections ever opened.
    let churn = if quick { 300 } else { 2_000 };
    let exe = std::env::current_exe().expect("own path");
    let mut child = std::process::Command::new(exe)
        .arg("x9-server")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn churn server");
    let child_pid = child.id();
    let mut lines = std::io::BufRead::lines(std::io::BufReader::new(
        child.stdout.take().expect("child stdout"),
    ));
    let addr: std::net::SocketAddr = loop {
        let line = lines
            .next()
            .expect("child printed ADDR")
            .expect("read child");
        if let Some(a) = line.strip_prefix("ADDR ") {
            break a.parse().expect("parse child addr");
        }
    };
    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let call_once = |conn: &MultiplexedConnection, k: u32| {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(
            &graph,
            rec,
            &MValue::Record(vec![MValue::Int(i128::from(k))]),
        )
        .unwrap();
        let req = mockingbird::wire::Message::request(
            k,
            true,
            b"echo".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        conn.call(&req).expect("echo").expect("reply");
    };
    {
        let conn = MultiplexedConnection::connect(addr).expect("warmup");
        call_once(&conn, 0);
    }
    let (_, client_threads_before) = proc_status(std::process::id());
    let t = Instant::now();
    for k in 0..churn {
        let conn = MultiplexedConnection::connect(addr).expect("churn connect");
        call_once(&conn, k);
    }
    let churn_s = t.elapsed().as_secs_f64();
    std::thread::sleep(std::time::Duration::from_millis(300));
    let (_, client_threads_after) = proc_status(std::process::id());
    let (server_rss_churned, server_threads_churned) = proc_status(child_pid);
    drop(child.stdin.take());
    let _ = child.wait();
    println!(
        "churn ({churn} open/call/close): {churn_s:.2}s; client threads \
         {client_threads_before} -> {client_threads_after}; \
         server after churn: {server_rss_churned} kB rss, {server_threads_churned} threads"
    );

    let json = Json::obj([
        ("reactor", reactor),
        ("thread_per_connection", baseline),
        (
            "churn",
            Json::obj([
                ("iterations", Json::Int(i128::from(churn))),
                ("seconds", Json::Float(churn_s)),
                (
                    "client_threads_before",
                    Json::Int(i128::from(client_threads_before)),
                ),
                (
                    "client_threads_after",
                    Json::Int(i128::from(client_threads_after)),
                ),
                (
                    "server_rss_after_kb",
                    Json::Int(i128::from(server_rss_churned)),
                ),
                (
                    "server_threads_after",
                    Json::Int(i128::from(server_threads_churned)),
                ),
            ]),
        ),
    ]);
    std::fs::write("BENCH_reactor.json", json.pretty() + "\n").expect("write BENCH_reactor.json");
    println!("wrote BENCH_reactor.json");
    println!();
}

fn x10() {
    use mockingbird::mesh::{GossipMessage, MeshConfig, MeshNode, MeshResolver, ObjectAd, SimMesh};
    use mockingbird::runtime::{
        CallOptions, Connection, ConnectionPool, Dispatcher, MetricsRegistry, ObjectName,
        RemoteRef, RetryPolicy, Servant, TcpServer, WireOp, WireServant,
    };
    use mockingbird::stype::json::Json;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    println!("== X10: mesh failover — kill a replica mid-load ==");
    let quick = std::env::var_os("MB_BENCH_QUICK").is_some();
    const SEED: u64 = 0x0C4A_0A10;
    let total: u64 = if quick { 2_000 } else { 12_000 };
    let threads: usize = 4;
    println!("mesh seed: {SEED:#x} ({total} calls over {threads} threads, 3 TCP replicas)");

    // Three real TCP replicas serving the echo object, named through a
    // gossip mesh instead of a fixed address list. Mid-load one replica
    // is killed (socket gone, no goodbye); the client must fail over
    // until the obituary arrives, then route on the shrunken live set.
    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let op = WireOp::new(graph, rec, rec).idempotent();
    let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let mut servers = Vec::new();
    for _ in 0..3 {
        let d = Arc::new(Dispatcher::new());
        d.register(
            b"obj".to_vec(),
            WireServant::new(servant.clone(), ops.clone()),
        );
        servers.push(TcpServer::bind("127.0.0.1:0", d).expect("bind replica"));
    }

    const FP: u128 = 0xEC40;
    let mesh_servers: Vec<_> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let node = MeshNode::new(MeshConfig::new(2 + i as u64, SEED));
            node.advertise(ObjectAd::new("echo", FP, 0, s.addr()));
            node
        })
        .collect();
    let registry = MetricsRegistry::shared();
    let client = MeshNode::with_metrics(MeshConfig::new(1, SEED), Arc::clone(&registry));
    let push = |node: &Arc<MeshNode>| {
        client.receive(&GossipMessage {
            from: node.id(),
            members: node.members(),
        });
    };
    for node in &mesh_servers {
        push(node);
    }
    let pool = Arc::new(
        ConnectionPool::builder(Vec::new())
            .with_resolver(
                Arc::new(MeshResolver::new(Arc::clone(&client))),
                ObjectName::new("echo", FP),
            )
            .with_slots(2)
            .with_metrics(Arc::clone(&registry))
            .build()
            .expect("pool builds"),
    );

    let counter = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let ops = ops.clone();
            let counter = Arc::clone(&counter);
            let failed = Arc::clone(&failed);
            std::thread::spawn(move || {
                let remote = RemoteRef::new(
                    pool as Arc<dyn Connection>,
                    b"obj".to_vec(),
                    ops,
                    Endian::Little,
                )
                .with_options(CallOptions::new().with_retry(RetryPolicy {
                    max_retries: 4,
                    initial_backoff: Duration::from_micros(200),
                    max_backoff: Duration::from_millis(2),
                    jitter: true,
                }));
                let mut lat: Vec<(f64, f64)> = Vec::new();
                loop {
                    let k = counter.fetch_add(1, Ordering::SeqCst);
                    if k >= total {
                        break;
                    }
                    let arg = MValue::Record(vec![MValue::Int(i128::from(k))]);
                    let start = t0.elapsed().as_secs_f64();
                    let t = Instant::now();
                    match remote.invoke("echo", &arg) {
                        Ok(v) => assert_eq!(v, arg, "wrong payload at call {k} (seed {SEED:#x})"),
                        Err(_) => {
                            failed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    lat.push((start, t.elapsed().as_secs_f64()));
                }
                lat
            })
        })
        .collect();

    // The kill lands at 40% of the load; the obituary is observed at
    // 60%. In between, only retry-failover keeps calls alive.
    let wait_until = |share: u64| {
        while counter.load(Ordering::SeqCst) < total * share / 100 {
            std::thread::sleep(Duration::from_micros(200));
        }
        t0.elapsed().as_secs_f64()
    };
    wait_until(40);
    servers[1].shutdown();
    let kill_at = t0.elapsed().as_secs_f64();
    wait_until(60);
    mesh_servers[1].leave();
    push(&mesh_servers[1]);
    let observe_at = t0.elapsed().as_secs_f64();

    let mut all: Vec<(f64, f64)> = Vec::new();
    for w in workers {
        all.extend(w.join().expect("worker"));
    }
    pool.resync();
    let live = pool.endpoints();
    assert_eq!(live.len(), 2, "the dead replica must be retired");
    let stranded = failed.load(Ordering::SeqCst);
    assert_eq!(stranded, 0, "{stranded} calls stranded (seed {SEED:#x})");

    // Phase classification: a call belongs to the failover window when
    // any part of it overlaps [kill, observe).
    let mut steady = Vec::new();
    let mut failover = Vec::new();
    let mut recovered = Vec::new();
    for (start, lat) in all {
        if start + lat < kill_at {
            steady.push(lat);
        } else if start < observe_at {
            failover.push(lat);
        } else {
            recovered.push(lat);
        }
    }
    let pct = |v: &mut Vec<f64>, p: usize| -> f64 {
        v.sort_by(f64::total_cmp);
        if v.is_empty() {
            return 0.0;
        }
        v[(v.len() * p / 100).min(v.len() - 1)] * 1e6
    };
    let phase_json = |name: &str, v: &mut Vec<f64>| {
        let (p50, p99) = (pct(v, 50), pct(v, 99));
        println!(
            "{name:>10}: {:>6} calls, p50 {p50:>7.0}µs, p99 {p99:>7.0}µs",
            v.len()
        );
        Json::obj([
            ("calls", Json::Int(v.len() as i128)),
            ("p50_us", Json::Float(p50)),
            ("p99_us", Json::Float(p99)),
        ])
    };
    let steady_json = phase_json("steady", &mut steady);
    let failover_json = phase_json("failover", &mut failover);
    let recovered_json = phase_json("recovered", &mut recovered);
    let failover_p99 = pct(&mut failover, 99);
    assert!(
        failover_p99 < 2e6,
        "failover p99 {failover_p99:.0}µs above the 2s bound (seed {SEED:#x})"
    );
    let snap = registry.snapshot();
    println!(
        "failovers: {}, resolutions: {}, members seen: {}, live endpoints after: {}",
        snap.mesh_failovers,
        snap.mesh_resolutions,
        snap.mesh_members_seen,
        live.len()
    );

    // Gossip convergence: rounds for a 16-node mesh to agree on the
    // full directory when every node bootstraps off a single seed node
    // (the directory must then spread by gossip alone). Deterministic
    // per seed.
    let (nodes_n, seeds_n) = if quick { (8u64, 8u64) } else { (16, 32) };
    let mut rounds: Vec<u64> = (0..seeds_n)
        .map(|seed| {
            let nodes: Vec<_> = (1..=nodes_n)
                .map(|id| {
                    let n = MeshNode::new(MeshConfig::new(id, seed));
                    n.advertise(ObjectAd::new(
                        "echo",
                        FP,
                        0,
                        format!("127.0.0.1:{}", 9300 + id).parse().unwrap(),
                    ));
                    n
                })
                .collect();
            for peer in &nodes[1..] {
                nodes[0].receive(&GossipMessage {
                    from: peer.id(),
                    members: peer.members(),
                });
                peer.receive(&GossipMessage {
                    from: nodes[0].id(),
                    members: vec![nodes[0].members()[0].clone()],
                });
            }
            let mut sim = SimMesh::new(nodes);
            sim.run_until_converged(200).expect("gossip converges")
        })
        .collect();
    rounds.sort_unstable();
    let (median, max) = (rounds[rounds.len() / 2], rounds[rounds.len() - 1]);
    println!(
        "gossip convergence ({nodes_n} nodes, {seeds_n} seeds): median {median} rounds, max {max}"
    );

    let json = Json::obj([
        ("seed", Json::Int(i128::from(SEED))),
        ("calls", Json::Int(i128::from(total))),
        ("threads", Json::Int(threads as i128)),
        ("stranded_calls", Json::Int(i128::from(stranded))),
        ("steady", steady_json),
        ("failover", failover_json),
        ("recovered", recovered_json),
        ("mesh_failovers", Json::Int(i128::from(snap.mesh_failovers))),
        (
            "mesh_resolutions",
            Json::Int(i128::from(snap.mesh_resolutions)),
        ),
        (
            "gossip_convergence",
            Json::obj([
                ("nodes", Json::Int(i128::from(nodes_n))),
                ("seeds", Json::Int(i128::from(seeds_n))),
                ("median_rounds", Json::Int(i128::from(median))),
                ("max_rounds", Json::Int(i128::from(max))),
            ]),
        ),
    ]);
    std::fs::write("BENCH_mesh.json", json.pretty() + "\n").expect("write BENCH_mesh.json");
    println!("wrote BENCH_mesh.json");
    for s in &mut servers {
        s.shutdown();
    }
    println!();
}

fn x11() {
    use mockingbird::comparer::CacheKey;
    use mockingbird::stype::json::Json;
    use mockingbird::wire::{
        nominal_fingerprint, NativeDecodeFn, NativeEncodeFn, NativeKey, NativeProgramKind,
        NativeStubRegistry, WireProgram,
    };
    use mockingbird::{BatchCompiler, BatchOptions, PairOutcome};
    use std::hint::black_box;

    println!("== X11: second Futamura projection — native stubs vs opcode VM vs interpreter ==");
    let quick = std::env::var_os("MB_BENCH_QUICK").is_some();
    let passes = if quick { 20 } else { 200 };
    let registered = mockingbird_bench::register_native_stubs();

    // The same canonical corpus X6 measures and `mbc emit-stubs`
    // specialised at build time; the emitted functions resolve here by
    // nominal fingerprint alone (different process, different graph
    // instances).
    let n = 200usize;
    let corpus = mockingbird::corpus::marshal_corpus(n, 42);
    let mut rng = corpus.rng;
    let graph = corpus.graph.clone();
    let bc = BatchCompiler::new(graph.clone());
    let report = bc.compile(&corpus.pairs, &BatchOptions::default());
    let rules_fp = RuleSet::full().fingerprint();
    let registry = NativeStubRegistry::global();

    struct Case {
        plan: Arc<mockingbird::plan::CoercionPlan>,
        prog: Arc<WireProgram>,
        native_encode: NativeEncodeFn,
        native_decode: NativeDecodeFn,
        value: MValue,
    }
    let mut cases: Vec<Case> = Vec::new();
    let mut native_missing = 0usize;
    for p in &report.pairs {
        if let PairOutcome::Match {
            plan: Some(plan),
            program: Some(prog),
            ..
        } = &p.outcome
        {
            if !prog.two_way() {
                continue;
            }
            let value = sample_value(&graph, plan.left_root(), &mut rng, 6);
            let key = NativeKey {
                pair: CacheKey {
                    left_fp: nominal_fingerprint(&graph, plan.left_root()),
                    right_fp: nominal_fingerprint(&graph, plan.right_root()),
                    mode: Mode::Equivalence,
                    rules_fp,
                },
                kind: NativeProgramKind::Value,
            };
            let native = registry.lookup(&key).unwrap_or_default();
            let (Some(native_encode), Some(native_decode)) = (native.encode, native.decode) else {
                native_missing += 1;
                continue;
            };
            cases.push(Case {
                plan: plan.clone(),
                prog: prog.clone(),
                native_encode,
                native_decode,
                value,
            });
        }
    }
    println!(
        "{registered} native programs registered; {} of {} two-way corpus shapes resolved \
         natively ({native_missing} opcode-only)",
        cases.len(),
        cases.len() + native_missing,
    );

    // Three-way agreement first: the interpreter is the oracle, the
    // opcode VM the first projection, the emitted stub the second —
    // all three must produce identical bytes and round-trip the value.
    let mut corpus_bytes = 0usize;
    for c in &cases {
        let converted = c.plan.convert(&c.value).unwrap();
        let mut oracle = CdrWriter::new(Endian::Little);
        oracle
            .put_value(&graph, c.plan.right_root(), &converted)
            .unwrap();
        let oracle = oracle.into_bytes();
        let mut opcode = CdrWriter::new(Endian::Little);
        c.prog.encode_value(&mut opcode, &c.value).unwrap();
        assert_eq!(
            opcode.into_bytes(),
            oracle,
            "opcode encode must match oracle"
        );
        let mut native = CdrWriter::new(Endian::Little);
        (c.native_encode)(&mut native, &c.value).unwrap();
        let native = native.into_bytes();
        assert_eq!(native, oracle, "native encode must match oracle");
        // All three decodes must agree; the interpretive round trip is
        // the ground truth (dedup-collapsed duplicate alternatives
        // canonicalise identically on every tier).
        let mut or = CdrReader::new(&oracle, Endian::Little);
        let wire = or.get_value(&graph, c.plan.right_root()).unwrap();
        let expect = c.plan.convert_back(&wire).unwrap();
        let mut r = CdrReader::new(&native, Endian::Little);
        assert_eq!(
            c.prog.decode_value(&mut r).unwrap(),
            expect,
            "opcode decode"
        );
        let mut r = CdrReader::new(&native, Endian::Little);
        assert_eq!(
            (c.native_decode)(&mut r).unwrap(),
            expect,
            "native round trip"
        );
        corpus_bytes += native.len();
    }

    // One pass marshals and unmarshals the whole corpus, per tier.
    let interp_us = per_call_us(passes, || {
        for c in &cases {
            let converted = c.plan.convert(&c.value).unwrap();
            let mut w = CdrWriter::new(Endian::Little);
            w.put_value(&graph, c.plan.right_root(), &converted)
                .unwrap();
            let bytes = w.into_bytes();
            let mut r = CdrReader::new(&bytes, Endian::Little);
            let wire = r.get_value(&graph, c.plan.right_root()).unwrap();
            black_box(c.plan.convert_back(&wire).unwrap());
        }
    });
    let mut pooled = Vec::new();
    let opcode_us = per_call_us(passes, || {
        for c in &cases {
            let mut w = CdrWriter::from_vec(std::mem::take(&mut pooled), Endian::Little);
            c.prog.encode_value(&mut w, &c.value).unwrap();
            pooled = w.into_bytes();
            let mut r = CdrReader::new(&pooled, Endian::Little);
            black_box(c.prog.decode_value(&mut r).unwrap());
        }
    });
    let native_us = per_call_us(passes, || {
        for c in &cases {
            let mut w = CdrWriter::from_vec(std::mem::take(&mut pooled), Endian::Little);
            (c.native_encode)(&mut w, &c.value).unwrap();
            pooled = w.into_bytes();
            let mut r = CdrReader::new(&pooled, Endian::Little);
            black_box((c.native_decode)(&mut r).unwrap());
        }
    });
    // Encode-only, isolating the marshal direction the emitter unrolls
    // hardest (bulk copy runs, no build-stack work).
    let enc_opcode_us = per_call_us(passes, || {
        for c in &cases {
            let mut w = CdrWriter::from_vec(std::mem::take(&mut pooled), Endian::Little);
            c.prog.encode_value(&mut w, &c.value).unwrap();
            pooled = w.into_bytes();
            black_box(pooled.len());
        }
    });
    let enc_native_us = per_call_us(passes, || {
        for c in &cases {
            let mut w = CdrWriter::from_vec(std::mem::take(&mut pooled), Endian::Little);
            (c.native_encode)(&mut w, &c.value).unwrap();
            pooled = w.into_bytes();
            black_box(pooled.len());
        }
    });

    let native_vs_interp = interp_us / native_us;
    let opcode_vs_interp = interp_us / opcode_us;
    let native_vs_opcode = opcode_us / native_us;
    let enc_speedup = enc_opcode_us / enc_native_us;
    let mb = corpus_bytes as f64 / 1e6;
    println!(
        "round-trip over the corpus ({corpus_bytes} wire bytes/pass):\n\
         \x20 interpretive {interp_us:.1} µs ({:.0} MB/s)\n\
         \x20 opcode VM    {opcode_us:.1} µs ({:.0} MB/s) -> {opcode_vs_interp:.1}x\n\
         \x20 native stubs {native_us:.1} µs ({:.0} MB/s) -> {native_vs_interp:.1}x \
         ({native_vs_opcode:.2}x over the VM)",
        mb / (interp_us / 1e6),
        mb / (opcode_us / 1e6),
        mb / (native_us / 1e6),
    );
    println!(
        "encode only: opcode {enc_opcode_us:.1} µs, native {enc_native_us:.1} µs \
         -> {enc_speedup:.2}x"
    );

    let json = Json::obj([
        ("classes", Json::Int(n as i128)),
        ("programs_registered", Json::Int(registered as i128)),
        ("native_cases", Json::Int(cases.len() as i128)),
        ("opcode_only_cases", Json::Int(native_missing as i128)),
        ("corpus_wire_bytes", Json::Int(corpus_bytes as i128)),
        ("interpretive_roundtrip_us", Json::Float(interp_us)),
        ("opcode_roundtrip_us", Json::Float(opcode_us)),
        ("native_roundtrip_us", Json::Float(native_us)),
        ("opcode_vs_interpretive", Json::Float(opcode_vs_interp)),
        ("native_vs_interpretive", Json::Float(native_vs_interp)),
        ("native_vs_opcode", Json::Float(native_vs_opcode)),
        ("encode_opcode_us", Json::Float(enc_opcode_us)),
        ("encode_native_us", Json::Float(enc_native_us)),
        ("encode_native_vs_opcode", Json::Float(enc_speedup)),
    ]);
    std::fs::write("BENCH_native.json", json.pretty() + "\n").expect("write BENCH_native.json");
    println!("wrote BENCH_native.json");
    println!();
}

fn x12() {
    use mockingbird::runtime::transport::TcpConnection;
    use mockingbird::runtime::{
        CallOptions, ChaosConnection, Connection, ConnectionPool, Connector, Dispatcher, RemoteRef,
        RetryBudget, RetryPolicy, Servant, ServerConfig, TcpServer, WireOp, WireServant,
    };
    use mockingbird::stype::json::Json;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    println!("== X12: overload resilience — goodput and tail latency vs offered load ==");
    let quick = std::env::var_os("MB_BENCH_QUICK").is_some();
    const SEED: u64 = 0x0412_0412;
    const SERVICE_TIME: Duration = Duration::from_millis(4);
    const WORKERS: usize = 2;
    const DEADLINE: Duration = Duration::from_millis(30);
    const FAULT_RATE: f64 = 0.10;
    const BASE_THREADS: usize = 4;
    let (warmup, measure) = if quick {
        (Duration::from_millis(300), Duration::from_millis(500))
    } else {
        (Duration::from_millis(800), Duration::from_millis(1500))
    };
    println!(
        "seed {SEED:#x}: {WORKERS} workers x {SERVICE_TIME:?} service time, \
         {DEADLINE:?} deadline, {:.0}% injected faults",
        FAULT_RATE * 100.0
    );

    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let op = mockingbird::runtime::WireOp::new(graph, rec, rec).idempotent();
    let mut ops: HashMap<String, WireOp> = HashMap::new();
    ops.insert("echo".to_string(), op);
    let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| {
        std::thread::sleep(SERVICE_TIME);
        Ok(v)
    });
    let dispatcher = || {
        let d = Arc::new(Dispatcher::new());
        d.register(
            b"obj".to_vec(),
            WireServant::new(servant.clone(), ops.clone()),
        );
        d
    };
    let adaptive_config = || {
        ServerConfig::default()
            .with_workers(WORKERS)
            .with_max_in_flight(8)
            .with_adaptive_limit(true)
            .with_target_p99(Duration::from_millis(10))
    };
    let options = CallOptions::new()
        .with_deadline(DEADLINE)
        .with_retry(RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            jitter: false,
        });
    let pct = |v: &mut Vec<f64>, p: usize| -> f64 {
        v.sort_by(f64::total_cmp);
        if v.is_empty() {
            return 0.0;
        }
        v[(v.len() * p / 100).min(v.len() - 1)] * 1e6
    };

    // Part 1 — the load ladder: the adaptive stack at 1x/2x/4x the
    // client population that saturates it. Closed-loop callers with a
    // 30 ms deadline over chaos-wrapped dials; goodput counts replies
    // that arrive inside the deadline during the measured window, p50
    // and p99 are over successful calls in the same window.
    let mut loads = Vec::new();
    for mult in [1usize, 2, 4] {
        let threads = BASE_THREADS * mult;
        let d = dispatcher();
        let metrics = Arc::clone(d.metrics());
        let mut server =
            TcpServer::bind_with("127.0.0.1:0", d, adaptive_config()).expect("bind server");
        let addr = server.addr();
        let seed = SEED + mult as u64 * 0x1000;
        let dials = Arc::new(AtomicU64::new(0));
        let connector: Connector = Arc::new(move |a| {
            let n = dials.fetch_add(1, Ordering::SeqCst);
            Ok(Arc::new(ChaosConnection::with_fault_rate(
                Arc::new(TcpConnection::connect(a)?),
                seed + n,
                FAULT_RATE,
            )) as Arc<dyn Connection>)
        });
        let pool = Arc::new(
            ConnectionPool::builder(vec![addr])
                .with_slots(threads)
                .with_connector(connector)
                .with_retry_budget(Arc::new(RetryBudget::default_for_pool()))
                .build()
                .expect("pool builds"),
        );
        let measure_from = Instant::now() + warmup;
        let stop_at = measure_from + measure;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let remote = RemoteRef::new(
                    pool.clone() as Arc<dyn Connection>,
                    b"obj".to_vec(),
                    ops.clone(),
                    Endian::Little,
                )
                .with_options(options.clone());
                std::thread::spawn(move || {
                    let mut k: i128 = (t as i128) * 1_000_000;
                    let (mut attempts, mut on_time) = (0u64, 0u64);
                    let mut lat: Vec<f64> = Vec::new();
                    while Instant::now() < stop_at {
                        k += 1;
                        let begin = Instant::now();
                        let ok = remote
                            .invoke("echo", &MValue::Record(vec![MValue::Int(k)]))
                            .is_ok();
                        let done = Instant::now();
                        if done < measure_from {
                            continue;
                        }
                        attempts += 1;
                        if ok {
                            let e = done - begin;
                            lat.push(e.as_secs_f64());
                            if e <= DEADLINE {
                                on_time += 1;
                            }
                        }
                    }
                    (attempts, on_time, lat)
                })
            })
            .collect();
        let (mut attempts, mut on_time) = (0u64, 0u64);
        let mut lat: Vec<f64> = Vec::new();
        for h in handles {
            let (a, g, l) = h.join().expect("load worker");
            attempts += a;
            on_time += g;
            lat.extend(l);
        }
        server.shutdown();
        let snap = metrics.snapshot();
        let secs = measure.as_secs_f64();
        let (p50, p99) = (pct(&mut lat, 50), pct(&mut lat, 99));
        println!(
            "{mult}x ({threads:>2} threads): offered {:>5.0}/s, goodput {:>5.0}/s, \
             p50 {p50:>6.0}µs, p99 {p99:>7.0}µs, server sheds: {} expired + {} brownout",
            attempts as f64 / secs,
            on_time as f64 / secs,
            snap.deadline_expired_server,
            snap.brownout_sheds,
        );
        loads.push(Json::obj([
            ("multiple", Json::Int(mult as i128)),
            ("threads", Json::Int(threads as i128)),
            ("offered_per_s", Json::Float(attempts as f64 / secs)),
            ("goodput_per_s", Json::Float(on_time as f64 / secs)),
            ("p50_us", Json::Float(p50)),
            ("p99_us", Json::Float(p99)),
            (
                "deadline_expired_server",
                Json::Int(i128::from(snap.deadline_expired_server)),
            ),
            ("brownout_sheds", Json::Int(i128::from(snap.brownout_sheds))),
        ]));
    }

    // Part 2 — kill and recover: two replicas behind one pool at 1x
    // load; one replica is killed mid-run (socket gone, no goodbye) and
    // the clock runs until the callers string together a full streak of
    // in-deadline replies again — the end-to-end recovery time through
    // redial, failover, and the retry budget.
    const STREAK: u64 = 25;
    let mut servers: Vec<_> = (0..2)
        .map(|_| {
            TcpServer::bind_with("127.0.0.1:0", dispatcher(), adaptive_config())
                .expect("bind replica")
        })
        .collect();
    let addrs: Vec<_> = servers
        .iter()
        .map(mockingbird::runtime::TcpServer::addr)
        .collect();
    let pool = Arc::new(
        ConnectionPool::builder(addrs)
            .with_slots(BASE_THREADS)
            .with_retry_budget(Arc::new(RetryBudget::default_for_pool()))
            .build()
            .expect("pool builds"),
    );
    let t0 = Instant::now();
    let kill_at = t0 + warmup;
    let stop_at = kill_at + Duration::from_secs(10);
    let streak = Arc::new(AtomicU64::new(0));
    let recovered: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
    let handles: Vec<_> = (0..BASE_THREADS)
        .map(|t| {
            let remote = RemoteRef::new(
                pool.clone() as Arc<dyn Connection>,
                b"obj".to_vec(),
                ops.clone(),
                Endian::Little,
            )
            .with_options(options.clone());
            let streak = Arc::clone(&streak);
            let recovered = Arc::clone(&recovered);
            std::thread::spawn(move || {
                let mut k: i128 = (t as i128) * 1_000_000;
                while Instant::now() < stop_at && recovered.lock().unwrap().is_none() {
                    k += 1;
                    let begin = Instant::now();
                    let ok = remote
                        .invoke("echo", &MValue::Record(vec![MValue::Int(k)]))
                        .is_ok();
                    let done = Instant::now();
                    if done < kill_at {
                        continue;
                    }
                    if ok && done - begin <= DEADLINE {
                        if streak.fetch_add(1, Ordering::SeqCst) + 1 >= STREAK {
                            recovered.lock().unwrap().get_or_insert(done);
                        }
                    } else {
                        streak.store(0, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    while Instant::now() < kill_at {
        std::thread::sleep(Duration::from_millis(1));
    }
    servers[0].shutdown();
    let killed = Instant::now();
    for h in handles {
        h.join().expect("recovery worker");
    }
    servers[1].shutdown();
    let recovered_at = recovered
        .lock()
        .unwrap()
        .expect("callers never strung together an in-deadline streak after the kill");
    let recover_ms = (recovered_at - killed).as_secs_f64() * 1e3;
    println!(
        "kill-and-recover: {STREAK} consecutive in-deadline replies \
         {recover_ms:.0} ms after a replica died"
    );

    let json = Json::obj([
        ("seed", Json::Int(i128::from(SEED))),
        ("workers", Json::Int(WORKERS as i128)),
        (
            "service_time_ms",
            Json::Int(SERVICE_TIME.as_millis() as i128),
        ),
        ("deadline_ms", Json::Int(DEADLINE.as_millis() as i128)),
        ("fault_rate", Json::Float(FAULT_RATE)),
        ("loads", Json::Array(loads)),
        (
            "recovery",
            Json::obj([
                ("replicas", Json::Int(2)),
                ("streak", Json::Int(i128::from(STREAK))),
                ("recover_ms", Json::Float(recover_ms)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_overload.json", json.pretty() + "\n").expect("write BENCH_overload.json");
    println!("wrote BENCH_overload.json");
    println!();
}

fn x13() {
    use mockingbird::artifact::{ArtifactStore, MemoryStore, SegmentStore};
    use mockingbird::comparer::CompareCache;
    use mockingbird::mesh::{GossipMessage, MeshConfig, MeshNode, ObjectAd};
    use mockingbird::runtime::{
        warm_store_from_peers, Dispatcher, MetricsRegistry, ServerConfig, TcpServer,
    };
    use mockingbird::stype::json::Json;
    use mockingbird::wire::{HandshakeInfo, ProgramCache};
    use mockingbird::{BatchCompiler, BatchOptions};

    println!("== X13: artifact store — warm cold-starts and cluster-warm caches ==");
    let quick = std::env::var_os("MB_BENCH_QUICK").is_some();
    let n = if quick { 40 } else { 200 };
    let rules_fp = RuleSet::full().fingerprint();
    // The fingerprints every node in this experiment agrees on: the
    // interface is nominal (all peers serve the same object), the rules
    // fingerprint gates which artifacts may transfer.
    const INTERFACE_FP: u128 = 0xF17_AA01;
    let opts = BatchOptions::default();

    // Part 1 — warm-store cold start: compile the corpus once, persist
    // every verdict and wire program into an on-disk segment store, then
    // replay the batch in a fresh "process" (fresh caches, fresh store
    // handle) that knows nothing but the store directory.
    let corpus = mockingbird::corpus::marshal_corpus(n, 42);
    let bc = BatchCompiler::new(corpus.graph.clone());
    let (cold_report, cold_s) = time(|| bc.compile(&corpus.pairs, &opts));
    let cold_compiles = cold_report.stats.programs.compiles;

    let dir = std::env::temp_dir().join("mockingbird-x13-store");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create store dir");
    let store = SegmentStore::open(&dir).expect("open store");
    bc.cache().store_into(&store);
    bc.programs().store_into(&store);
    let committed = store.commit().expect("commit store");
    let store_bytes: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok()?.metadata().ok())
        .map(|m| m.len())
        .sum();
    drop(store);

    // The cold process: open the store, load both caches, replay.
    let ((warm_report, records), warm_s) = time(|| {
        let store = SegmentStore::open(&dir).expect("reopen store");
        let cache = Arc::new(CompareCache::new());
        let programs = Arc::new(ProgramCache::new());
        cache.load_from(&store);
        programs.load_from(&store);
        let bc2 = BatchCompiler::new(corpus.graph.clone())
            .with_cache(cache)
            .with_programs(programs);
        (bc2.compile(&corpus.pairs, &opts), store.len())
    });
    let warm_compiles = warm_report.stats.programs.compiles;
    let warm_hit_rate = warm_report.stats.cache.hit_rate();
    println!(
        "{n} classes: cold {cold_s:.3}s ({cold_compiles} programs compiled), \
         store {committed} records / {store_bytes} bytes"
    );
    println!(
        "warm cold-start {warm_s:.3}s: {warm_compiles} programs compiled, \
         {:.0}% verdict hit rate, {records} records served from disk ({:.1}x)",
        warm_hit_rate * 100.0,
        cold_s / warm_s.max(1e-9)
    );
    assert_eq!(warm_compiles, 0, "warm store must eliminate every compile");

    // Part 2 — cluster-warm caches: three peers each hold a third of
    // the artifacts and serve them over MBAR; a joining node discovers
    // them through mesh gossip (store digests ride the ObjectAd
    // exchange), pulls everything missing, re-hashing every record on
    // receipt, and reaches zero-compile steady state without ever
    // having compiled the corpus.
    let info = HandshakeInfo::new(INTERFACE_FP, rules_fp);
    let full = SegmentStore::open(&dir).expect("reopen store");
    let mut peer_stores = Vec::new();
    for _ in 0..3 {
        peer_stores.push(Arc::new(MemoryStore::new()));
    }
    for (i, (key, id)) in full.keys().into_iter().enumerate() {
        let body = full.body(&id).expect("body");
        peer_stores[i % 3].put(key, &body);
    }
    let mut servers = Vec::new();
    let mesh_peers: Vec<Arc<MeshNode>> = (0..3u64)
        .map(|i| {
            let server = TcpServer::bind_with(
                "127.0.0.1:0",
                Arc::new(Dispatcher::new()),
                ServerConfig::default()
                    .with_handshake(info)
                    .with_artifact_store(peer_stores[i as usize].clone()),
            )
            .expect("bind peer");
            let node = MeshNode::new(MeshConfig::new(i + 1, 0x13));
            node.advertise(ObjectAd::new(
                "artifacts",
                INTERFACE_FP,
                rules_fp,
                server.addr(),
            ));
            node.set_store_digest(peer_stores[i as usize].digest());
            servers.push(server);
            node
        })
        .collect();

    let joiner = MeshNode::new(MeshConfig::new(9, 0x13));
    let local = MemoryStore::new();
    let metrics = MetricsRegistry::new();
    let (outcome, join_s) = time(|| {
        // Seed-list introduction: one gossip receive per peer, then pick
        // fetch candidates by fingerprint agreement and digest mismatch.
        for p in &mesh_peers {
            joiner.receive(&GossipMessage {
                from: p.id(),
                members: p.members(),
            });
        }
        let candidates = joiner.artifact_peers(INTERFACE_FP, rules_fp, local.digest());
        let endpoints: Vec<_> = candidates.iter().map(|c| c.endpoint).collect();
        warm_store_from_peers(&local, &endpoints, &info, &metrics)
    });
    joiner.set_store_digest(local.digest());
    let snap = metrics.snapshot();
    println!(
        "mesh join: fetched {} records / {} bytes from 3 peers in {join_s:.3}s \
         ({} content-hash verified, {} rejected, {} integrity failures)",
        outcome.fetched,
        outcome.bytes,
        snap.peer_fetches,
        outcome.rejected,
        snap.artifact_integrity_failures
    );
    assert_eq!(local.len(), full.len(), "join must recover every record");

    // Steady state: the joined node compiles nothing.
    let cache = Arc::new(CompareCache::new());
    let programs = Arc::new(ProgramCache::new());
    cache.load_from(&local);
    programs.load_from(&local);
    let bc3 = BatchCompiler::new(corpus.graph.clone())
        .with_cache(cache)
        .with_programs(programs);
    let (join_report, steady_s) = time(|| bc3.compile(&corpus.pairs, &opts));
    let join_compiles = join_report.stats.programs.compiles;
    println!(
        "post-join batch {steady_s:.3}s: {join_compiles} programs compiled \
         ({:.0}% verdict hit rate) — zero-compile steady state",
        join_report.stats.cache.hit_rate() * 100.0
    );
    assert_eq!(join_compiles, 0, "joined node must not compile");
    for mut s in servers {
        s.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();

    let json = Json::obj([
        ("classes", Json::Int(n as i128)),
        (
            "cold_start",
            Json::obj([
                ("cold_s", Json::Float(cold_s)),
                ("warm_s", Json::Float(warm_s)),
                ("cold_compiles", Json::Int(cold_compiles as i128)),
                ("warm_compiles", Json::Int(warm_compiles as i128)),
                ("warm_hit_rate", Json::Float(warm_hit_rate)),
                ("store_records", Json::Int(committed as i128)),
                ("store_bytes", Json::Int(store_bytes as i128)),
            ]),
        ),
        (
            "mesh_join",
            Json::obj([
                ("peers", Json::Int(3)),
                ("join_s", Json::Float(join_s)),
                ("fetched", Json::Int(outcome.fetched as i128)),
                ("fetched_bytes", Json::Int(outcome.bytes as i128)),
                ("rejected", Json::Int(outcome.rejected as i128)),
                (
                    "integrity_failures",
                    Json::Int(snap.artifact_integrity_failures as i128),
                ),
                ("steady_compiles", Json::Int(join_compiles as i128)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_store.json", json.pretty() + "\n").expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden child-process modes for X9 (each side of the scaling
    // experiment needs its own fd budget).
    if args.first().map(String::as_str) == Some("x9-server") {
        return x9_server(false);
    }
    if args.first().map(String::as_str) == Some("x9-server-threaded") {
        return x9_server(true);
    }
    let want = |k: &str| args.is_empty() || args.iter().any(|a| a == k);
    if want("t1") {
        t1();
    }
    if want("f5") {
        f5();
    }
    if want("f4") {
        f4();
    }
    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("x1") {
        x1();
    }
    if want("x2") {
        x2();
    }
    if want("x3") {
        x3();
    }
    if want("x4") {
        x4();
    }
    if want("x5") {
        x5();
    }
    if want("x6") {
        x6();
    }
    if want("x7") {
        x7();
    }
    if want("x8") {
        x8();
    }
    if want("x9") {
        x9();
    }
    if want("x10") {
        x10();
    }
    if want("x11") {
        x11();
    }
    if want("x12") {
        x12();
    }
    if want("x13") {
        x13();
    }
}
