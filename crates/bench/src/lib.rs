//! Shared fixtures for the benchmark harness and the experiment report.
//!
//! Each fixture corresponds to one experiment of DESIGN.md §4; the
//! Criterion benches and the `report` binary both build on these so the
//! numbers in EXPERIMENTS.md and the bench output describe the same
//! workloads.

pub mod generated_stubs;
pub mod harness;

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::OnceLock;

use mockingbird::comparer::Mode;
use mockingbird::plan::CoercionPlan;
use mockingbird::runtime::{Dispatcher, RemoteRef, Servant, WireOp, WireServant};
use mockingbird::runtime::{InMemoryConnection, RuntimeError};
use mockingbird::stubgen::{FunctionStub, RemoteStub};
use mockingbird::values::{Endian, MValue};
use mockingbird::{Session, SessionError};

/// The fitter declarations (Figs. 1, 2, 5) and §3.4 annotations.
pub const FIG2_C: &str = "typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);";

/// The Java side of the fitter example.
pub const FIG1_5_JAVA: &str = "
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }";

/// The §3.4 annotation script.
pub const FITTER_SCRIPT: &str = "
annotate fitter.param(pts) length=param(count)
annotate fitter.param(start) direction=out
annotate fitter.param(end) direction=out
annotate Line.field(start) non-null no-alias
annotate Line.field(end) non-null no-alias
annotate PointVector element=Point non-null
annotate JavaIdeal.method(fitter).param(pts) non-null
annotate JavaIdeal.method(fitter).ret non-null";

/// Installs the emitted native marshal stubs into the process-global
/// registry (idempotent), returning how many programs are registered.
/// Benches and tests that want the native tier call this before
/// building stubs; binaries that never call it measure the opcode VM
/// unchanged.
pub fn register_native_stubs() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        generated_stubs::register_all(mockingbird::wire::NativeStubRegistry::global())
    })
}

/// A fully annotated fitter session.
///
/// # Errors
///
/// Propagates load/annotation failures (none for the canned sources).
pub fn fitter_session() -> Result<Session, SessionError> {
    let mut s = Session::new();
    s.load_c(FIG2_C)?;
    s.load_java(FIG1_5_JAVA)?;
    s.annotate(FITTER_SCRIPT)?;
    Ok(s)
}

/// A point list of length `n` in Java shape.
pub fn point_list(n: usize) -> MValue {
    MValue::List(
        (0..n)
            .map(|k| {
                MValue::Record(vec![
                    MValue::Real(k as f64),
                    MValue::Real((2 * k) as f64 + 0.5),
                ])
            })
            .collect(),
    )
}

/// The reference C-side fitter implementation used across benchmarks.
pub fn c_fitter_impl(args: MValue) -> Result<MValue, String> {
    let MValue::Record(items) = args else {
        return Err("bad frame".into());
    };
    let MValue::List(pts) = &items[0] else {
        return Err("bad pts".into());
    };
    Ok(MValue::Record(vec![
        pts.first().cloned().ok_or("empty")?,
        pts.last().cloned().ok_or("empty")?,
    ]))
}

/// The fitter as a local function stub plus its plan.
///
/// # Errors
///
/// Propagates comparison failures.
pub fn fitter_stub() -> Result<(FunctionStub, Arc<CoercionPlan>), SessionError> {
    let mut s = fitter_session()?;
    let plan = Arc::new(s.compare("JavaIdeal", "fitter", Mode::Equivalence)?);
    Ok((FunctionStub::new(plan.clone())?, plan))
}

/// A remote fitter over the in-memory loopback (full marshalling, no
/// sockets), for the X1 remote rows.
///
/// # Errors
///
/// Propagates session failures.
pub fn fitter_remote_loopback() -> Result<RemoteStub, SessionError> {
    let mut s = fitter_session()?;
    let wire_op = s.wire_op("fitter")?;
    let servant: Arc<dyn Servant> =
        Arc::new(|_: &str, args: MValue| c_fitter_impl(args).map_err(RuntimeError::Application));
    let mut ops = HashMap::new();
    ops.insert("fitter".to_string(), wire_op.clone());
    let dispatcher = Arc::new(Dispatcher::new());
    dispatcher.register(b"svc".to_vec(), WireServant::new(servant, ops));
    let conn = Arc::new(InMemoryConnection::new(dispatcher));
    let mut cops = HashMap::new();
    cops.insert("fitter".to_string(), wire_op);
    let remote = Arc::new(RemoteRef::new(conn, b"svc".to_vec(), cops, Endian::Little));
    let plan = Arc::new(s.compare("JavaIdeal", "fitter", Mode::Equivalence)?);
    Ok(RemoteStub::new(FunctionStub::new(plan)?, remote, "fitter"))
}

/// One `WireOp` for an arbitrary data Mtype (messaging benches).
pub fn data_wire_op(session: &mut Session, decl: &str) -> Result<WireOp, SessionError> {
    let ty = session.mtype(decl)?;
    Ok(WireOp::new(Arc::new(session.graph().clone()), ty, ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (stub, plan) = fitter_stub().unwrap();
        assert!(!plan.is_empty());
        let out = stub.call(&[point_list(4)], &c_fitter_impl).unwrap();
        assert!(matches!(out, MValue::Record(_)));
        let remote = fitter_remote_loopback().unwrap();
        let out = remote.call(&[point_list(4)]).unwrap();
        assert!(matches!(out, MValue::Record(_)));
    }
}
