//! E3: messaging throughput — the collaboration framework's send/receive
//! stubs over the in-memory transport (marshalling cost without socket
//! noise) for representative message types.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mockingbird::corpus::collab::{collaboration, MESSAGE_TYPES};
use mockingbird::corpus::sample_value;
use mockingbird::runtime::{Dispatcher, InMemoryConnection, RemoteRef, WireOp};
use mockingbird::stubgen::MessagingStubs;
use mockingbird::values::{Endian, MValue};
use mockingbird::Session;

fn setup() -> (RemoteRef, Arc<AtomicUsize>, Vec<(String, MValue)>) {
    let corpus = collaboration();
    let mut s = Session::new();
    for d in corpus.java.iter() {
        s.universe_mut().insert(d.clone()).unwrap();
    }
    s.annotate(&corpus.script).unwrap();

    let mut tys = HashMap::new();
    for m in MESSAGE_TYPES {
        tys.insert(m, s.mtype(m).unwrap());
    }
    let graph = Arc::new(s.graph().clone());
    let mut ops = HashMap::new();
    for m in MESSAGE_TYPES {
        ops.insert(
            m.to_string(),
            WireOp { graph: graph.clone(), args_ty: tys[m], result_ty: tys[m] },
        );
    }

    let counter = Arc::new(AtomicUsize::new(0));
    let mut handlers: HashMap<String, Arc<dyn Fn(MValue) + Send + Sync>> = HashMap::new();
    for m in MESSAGE_TYPES {
        let c = counter.clone();
        handlers.insert(
            m.to_string(),
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
    }
    let dispatcher = Arc::new(Dispatcher::new());
    dispatcher.register(
        b"collab".to_vec(),
        mockingbird::runtime::WireServant::new(MessagingStubs::receive_servant(handlers), ops.clone()),
    );
    let remote = RemoteRef::new(
        Arc::new(InMemoryConnection::new(dispatcher)),
        b"collab".to_vec(),
        ops,
        Endian::Little,
    );

    let mut rng = StdRng::seed_from_u64(5);
    let samples: Vec<(String, MValue)> = ["CursorMoved", "ShapeMoved", "StateSnapshot"]
        .iter()
        .map(|m| ((*m).to_string(), sample_value(&graph, tys[m], &mut rng, 8)))
        .collect();
    (remote, counter, samples)
}

fn bench_send(c: &mut Criterion) {
    let (remote, counter, samples) = setup();
    let mut group = c.benchmark_group("e3/oneway_send");
    for (name, value) in &samples {
        group.bench_with_input(BenchmarkId::from_parameter(name), value, |b, v| {
            b.iter(|| remote.send(black_box(name), black_box(v)).unwrap())
        });
    }
    group.finish();
    assert!(counter.load(Ordering::Relaxed) > 0, "handlers actually ran");
}

fn bench_burst(c: &mut Criterion) {
    let (remote, _counter, samples) = setup();
    let (name, value) = &samples[0];
    c.bench_function("e3/burst_100_cursor_moves", |b| {
        b.iter(|| {
            for _ in 0..100 {
                remote.send(black_box(name), black_box(value)).unwrap();
            }
        })
    });
}

criterion_group!(benches, bench_send, bench_burst);
criterion_main!(benches);
