//! E3: messaging throughput — the collaboration framework's send/receive
//! stubs over the in-memory transport (marshalling cost without socket
//! noise) for representative message types.

use mockingbird_bench::harness::{BenchmarkId, Criterion, Throughput};
use mockingbird_bench::{criterion_group, criterion_main};
use mockingbird_rng::StdRng;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mockingbird::corpus::collab::{collaboration, MESSAGE_TYPES};
use mockingbird::corpus::sample_value;
use mockingbird::mtype::{IntRange, MtypeGraph};
use mockingbird::runtime::transport::TcpConnection;
use mockingbird::runtime::{
    Connection, ConnectionPool, Dispatcher, InMemoryConnection, MultiplexedConnection, RemoteRef,
    RuntimeError, Servant, TcpServer, WireOp, WireServant,
};
use mockingbird::stubgen::MessagingStubs;
use mockingbird::values::{Endian, MValue};
use mockingbird::Session;

fn setup() -> (RemoteRef, Arc<AtomicUsize>, Vec<(String, MValue)>) {
    let corpus = collaboration();
    let mut s = Session::new();
    for d in corpus.java.iter() {
        s.universe_mut().insert(d.clone()).unwrap();
    }
    s.annotate(&corpus.script).unwrap();

    let mut tys = HashMap::new();
    for m in MESSAGE_TYPES {
        tys.insert(m, s.mtype(m).unwrap());
    }
    let graph = Arc::new(s.graph().clone());
    let mut ops = HashMap::new();
    for m in MESSAGE_TYPES {
        ops.insert(m.to_string(), WireOp::new(graph.clone(), tys[m], tys[m]));
    }

    let counter = Arc::new(AtomicUsize::new(0));
    let mut handlers: HashMap<String, Arc<dyn Fn(MValue) + Send + Sync>> = HashMap::new();
    for m in MESSAGE_TYPES {
        let c = counter.clone();
        handlers.insert(
            m.to_string(),
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
    }
    let dispatcher = Arc::new(Dispatcher::new());
    dispatcher.register(
        b"collab".to_vec(),
        mockingbird::runtime::WireServant::new(
            MessagingStubs::receive_servant(handlers),
            ops.clone(),
        ),
    );
    let remote = RemoteRef::new(
        Arc::new(InMemoryConnection::new(dispatcher)),
        b"collab".to_vec(),
        ops,
        Endian::Little,
    );

    let mut rng = StdRng::seed_from_u64(5);
    let samples: Vec<(String, MValue)> = ["CursorMoved", "ShapeMoved", "StateSnapshot"]
        .iter()
        .map(|m| ((*m).to_string(), sample_value(&graph, tys[m], &mut rng, 8)))
        .collect();
    (remote, counter, samples)
}

fn bench_send(c: &mut Criterion) {
    let (remote, counter, samples) = setup();
    let mut group = c.benchmark_group("e3/oneway_send");
    for (name, value) in &samples {
        group.bench_with_input(BenchmarkId::from_parameter(name), value, |b, v| {
            b.iter(|| remote.send(black_box(name), black_box(v)).unwrap())
        });
    }
    group.finish();
    assert!(counter.load(Ordering::Relaxed) > 0, "handlers actually ran");
}

fn bench_burst(c: &mut Criterion) {
    let (remote, _counter, samples) = setup();
    let (name, value) = &samples[0];
    c.bench_function("e3/burst_100_cursor_moves", |b| {
        b.iter(|| {
            for _ in 0..100 {
                remote.send(black_box(name), black_box(value)).unwrap();
            }
        })
    });
}

/// E3b: concurrent echo throughput over real TCP — 8 client threads
/// sharing (a) one serial connection (the stream lock held across each
/// exchange), (b) one multiplexed connection (pipelined requests, one
/// demultiplexing reader), (c) a pool of 4 multiplexed connections.
///
/// The servant models a service with per-call latency (database hit,
/// downstream RPC): each echo sleeps `SERVICE_DELAY` before replying.
/// The serial connection holds its stream lock across the full
/// exchange, so the 8 threads serialise on that latency; the
/// multiplexed paths keep several requests in flight and overlap it.
fn bench_concurrent_echo(c: &mut Criterion) {
    const THREADS: usize = 8;
    const CALLS_PER_THREAD: usize = 10;
    const SERVICE_DELAY: std::time::Duration = std::time::Duration::from_micros(500);

    fn echo_server() -> (TcpServer, WireOp) {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let op = WireOp::new(graph, rec, rec);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| {
            std::thread::sleep(SERVICE_DELAY);
            Ok::<_, RuntimeError>(v)
        });
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), op.clone());
        let d = Arc::new(Dispatcher::new());
        d.register(b"obj".to_vec(), WireServant::new(servant, ops));
        (TcpServer::bind("127.0.0.1:0", d).unwrap(), op)
    }

    fn remote_over(conn: Arc<dyn Connection>, op: &WireOp) -> Arc<RemoteRef> {
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), op.clone());
        Arc::new(RemoteRef::new(conn, b"obj".to_vec(), ops, Endian::Little))
    }

    fn run_threads(remote: &Arc<RemoteRef>) {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let r = remote.clone();
                std::thread::spawn(move || {
                    for k in 0..CALLS_PER_THREAD {
                        let payload = (t * 1_000 + k) as i128;
                        let out = r
                            .invoke("echo", &MValue::Record(vec![MValue::Int(payload)]))
                            .unwrap();
                        assert_eq!(out, MValue::Record(vec![MValue::Int(payload)]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    let mut group = c.benchmark_group("e3b/concurrent_echo_8_threads");
    group.throughput(Throughput::Elements((THREADS * CALLS_PER_THREAD) as u64));
    group.sample_size(10);

    {
        let (mut server, op) = echo_server();
        let conn = Arc::new(TcpConnection::connect(server.addr()).unwrap());
        let remote = remote_over(conn, &op);
        group.bench_function("serial", |b| b.iter(|| run_threads(black_box(&remote))));
        drop(remote);
        server.shutdown();
    }
    {
        let (mut server, op) = echo_server();
        let conn = Arc::new(MultiplexedConnection::connect(server.addr()).unwrap());
        let remote = remote_over(conn, &op);
        group.bench_function("multiplexed", |b| {
            b.iter(|| run_threads(black_box(&remote)))
        });
        drop(remote);
        server.shutdown();
    }
    {
        let (mut server, op) = echo_server();
        let pool = Arc::new(ConnectionPool::connect(server.addr(), 4).unwrap());
        let remote = remote_over(pool, &op);
        group.bench_function("pooled_4", |b| b.iter(|| run_threads(black_box(&remote))));
        drop(remote);
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_send, bench_burst, bench_concurrent_echo);
criterion_main!(benches);
