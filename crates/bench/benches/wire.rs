//! X3: wire-format throughput by type shape and byte order.

use mockingbird_bench::harness::{BenchmarkId, Criterion, Throughput};
use mockingbird_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use mockingbird::mtype::{IntRange, MtypeGraph, MtypeId, RealPrecision};
use mockingbird::values::{Endian, MValue};
use mockingbird::wire::{mbp, CdrReader, CdrWriter};

fn shapes() -> Vec<(&'static str, MtypeGraph, MtypeId, MValue)> {
    let mut out = Vec::new();
    // Flat record of mixed scalars.
    {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let l = g.integer(IntRange::signed_bits(64));
        let f = g.real(RealPrecision::SINGLE);
        let d = g.real(RealPrecision::DOUBLE);
        let rec = g.record(vec![i, l, f, d, i, f]);
        let v = MValue::Record(vec![
            MValue::Int(1),
            MValue::Int(1 << 40),
            MValue::Real(1.5),
            MValue::Real(2.5),
            MValue::Int(-7),
            MValue::Real(0.25),
        ]);
        out.push(("flat_record", g, rec, v));
    }
    // Nested records (a Line of Points).
    {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let line = g.record(vec![point, point]);
        let quad = g.record(vec![line, line]);
        let p = |x: f64| MValue::Record(vec![MValue::Real(x), MValue::Real(-x)]);
        let l = |x: f64| MValue::Record(vec![p(x), p(x + 1.0)]);
        let v = MValue::Record(vec![l(0.0), l(2.0)]);
        out.push(("nested_record", g, quad, v));
    }
    // A 1024-element list of points.
    {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let list = g.list_of(point);
        let v = MValue::List(
            (0..1024)
                .map(|k| MValue::Record(vec![MValue::Real(k as f64), MValue::Real(0.5)]))
                .collect(),
        );
        out.push(("list_1024_points", g, list, v));
    }
    // Nullable chain (Choice-heavy).
    {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let rec = g.recursive(|g, me| {
            let tail = g.nullable(me);
            g.record(vec![i, tail])
        });
        let mut v = MValue::Record(vec![MValue::Int(0), MValue::null()]);
        for k in 1..64 {
            v = MValue::Record(vec![MValue::Int(k), MValue::some(v)]);
        }
        out.push(("choice_chain_64", g, rec, v));
    }
    out
}

fn bench_cdr(c: &mut Criterion) {
    for (name, g, ty, v) in shapes() {
        let mut group = c.benchmark_group(format!("x3/cdr/{name}"));
        // Size the throughput by encoded bytes.
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&g, ty, &v).unwrap();
        let bytes = w.into_bytes();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        for endian in [Endian::Little, Endian::Big] {
            group.bench_with_input(
                BenchmarkId::new("encode", format!("{endian:?}")),
                &endian,
                |b, &endian| {
                    b.iter(|| {
                        let mut w = CdrWriter::new(endian);
                        w.put_value(&g, ty, black_box(&v)).unwrap();
                        black_box(w.into_bytes())
                    })
                },
            );
            let mut w = CdrWriter::new(endian);
            w.put_value(&g, ty, &v).unwrap();
            let encoded = w.into_bytes();
            group.bench_with_input(
                BenchmarkId::new("decode", format!("{endian:?}")),
                &endian,
                |b, &endian| {
                    b.iter(|| {
                        let mut r = CdrReader::new(black_box(&encoded), endian);
                        black_box(r.get_value(&g, ty).unwrap())
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_mbp(c: &mut Criterion) {
    for (name, _g, _ty, v) in shapes() {
        let mut group = c.benchmark_group(format!("x3/mbp/{name}"));
        let encoded = mbp::encode(&v);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_function("encode", |b| {
            b.iter(|| black_box(mbp::encode(black_box(&v))))
        });
        group.bench_function("decode", |b| {
            b.iter(|| black_box(mbp::decode(black_box(&encoded)).unwrap()))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_cdr, bench_mbp);
criterion_main!(benches);
