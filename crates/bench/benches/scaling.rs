//! E1: the VisualAge scaling study (paper §5).
//!
//! "The scalability of Mockingbird's algorithms to the full system is an
//! ongoing investigation" — here it is. The corpus matches the quoted
//! shape (inter-related classes, thousands of methods at n=500); the
//! bench sweeps the class count and measures lowering plus comparison of
//! every class pair, which should grow near-linearly.

use mockingbird_bench::harness::{BenchmarkId, Criterion};
use mockingbird_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use mockingbird::comparer::{Comparer, Mode};
use mockingbird::corpus::visualage;
use mockingbird::mtype::MtypeGraph;
use mockingbird::stype::lower::Lowerer;
use mockingbird::stype::script::apply_script;

fn compare_all(n: usize) -> usize {
    let mut pair = visualage(n, 42);
    apply_script(&mut pair.java, &pair.script).expect("script applies");
    let mut g = MtypeGraph::new();
    let mut cxx_ids = Vec::with_capacity(n);
    {
        let mut lw = Lowerer::new(&pair.cxx, &mut g);
        for name in &pair.class_names {
            cxx_ids.push(lw.lower_named(name).unwrap());
        }
    }
    let mut java_ids = Vec::with_capacity(n);
    {
        let mut lw = Lowerer::new(&pair.java, &mut g);
        for name in &pair.class_names {
            java_ids.push(lw.lower_named(name).unwrap());
        }
    }
    let mut matched = 0;
    let cmp = Comparer::new(&g, &g);
    for (c, j) in cxx_ids.iter().zip(&java_ids) {
        if cmp.compare(*c, *j, Mode::Equivalence).is_ok() {
            matched += 1;
        }
    }
    assert_eq!(matched, n, "every class matches at every scale");
    matched
}

fn bench_visualage_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1/visualage_classes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for n in [12usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(compare_all(n)))
        });
    }
    group.finish();
}

fn bench_miniature_annotation(c: &mut Criterion) {
    // The batch-script application itself (the §5 scripting technique).
    c.bench_function("e1/batch_annotation_12_classes", |b| {
        b.iter(|| {
            let mut pair = visualage(12, 42);
            apply_script(&mut pair.java, black_box(&pair.script)).unwrap()
        })
    });
}

criterion_group!(benches, bench_visualage_sweep, bench_miniature_annotation);
criterion_main!(benches);
