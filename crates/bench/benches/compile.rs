//! X5: batch compilation over the VisualAge corpus — cold serial vs
//! warm cache (see DESIGN.md's compilation-engine section).
//!
//! The cold run proves every pair from scratch; the warm runs replay the
//! same batch against the shared content-addressed cache, where verdicts
//! and (same-snapshot) correspondences are lookups. `warm_restored`
//! additionally pushes the cache through its persistence form
//! (store_into → load_from via an artifact store), the path a
//! project-file reload takes.

use mockingbird_bench::harness::Criterion;
use mockingbird_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use std::sync::Arc;

use mockingbird::comparer::CompareCache;
use mockingbird::corpus::visualage;
use mockingbird::mtype::{MtypeGraph, MtypeId};
use mockingbird::stype::lower::Lowerer;
use mockingbird::stype::script::apply_script;
use mockingbird::{BatchCompiler, BatchOptions};

fn corpus_pairs(n: usize) -> (Arc<MtypeGraph>, Vec<(MtypeId, MtypeId)>) {
    let mut pair = visualage(n, 42);
    apply_script(&mut pair.java, &pair.script).unwrap();
    let mut g = MtypeGraph::new();
    let mut cxx_ids = Vec::new();
    {
        let mut lw = Lowerer::new(&pair.cxx, &mut g);
        for name in &pair.class_names {
            cxx_ids.push(lw.lower_named(name).unwrap());
        }
    }
    let mut java_ids = Vec::new();
    {
        let mut lw = Lowerer::new(&pair.java, &mut g);
        for name in &pair.class_names {
            java_ids.push(lw.lower_named(name).unwrap());
        }
    }
    let pairs = cxx_ids.into_iter().zip(java_ids).collect();
    (g.snapshot(), pairs)
}

fn bench_batch_compile(c: &mut Criterion) {
    let (graph, pairs) = corpus_pairs(40);
    let serial = BatchOptions {
        jobs: 1,
        build_plans: false,
        ..BatchOptions::default()
    };

    let mut group = c.benchmark_group("batch_compile");
    group.bench_function("cold_serial", |b| {
        b.iter(|| {
            // A fresh compiler per iteration = a fresh (cold) cache.
            let bc = BatchCompiler::new(graph.clone());
            black_box(bc.compile(black_box(&pairs), &serial));
        })
    });

    let warm = BatchCompiler::new(graph.clone());
    warm.compile(&pairs, &serial);
    group.bench_function("warm_serial", |b| {
        b.iter(|| {
            black_box(warm.compile(black_box(&pairs), &serial));
        })
    });

    let staging = mockingbird::artifact::MemoryStore::new();
    warm.cache().store_into(&staging);
    let restored = Arc::new(CompareCache::new());
    restored.load_from(&staging);
    let warm_restored = BatchCompiler::new(graph.clone()).with_cache(restored);
    group.bench_function("warm_restored", |b| {
        b.iter(|| {
            black_box(warm_restored.compile(black_box(&pairs), &serial));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batch_compile);
criterion_main!(benches);
