//! X6: the fused data plane — compiled wire programs vs the
//! interpretive convert-then-encode path.
//!
//! Each fixture is a pair of isomorphic-but-permuted declarations whose
//! coercion plan does real work (field permutation, per-element
//! conversion). The interpretive rows materialise the intermediate
//! MValue (`plan.convert` + `put_value`, `get_value` +
//! `plan.convert_back`); the fused rows run the compiled
//! [`WireProgram`] in one pass. A counting global allocator proves the
//! steady-state fused encode over a pooled buffer performs **zero**
//! heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use mockingbird_bench::harness::{BenchmarkId, Criterion, Throughput};
use mockingbird_bench::{criterion_group, criterion_main};

use mockingbird::comparer::{Comparer, Mode, RuleSet};
use mockingbird::mtype::{IntRange, MtypeGraph, RealPrecision, Repertoire};
use mockingbird::plan::CoercionPlan;
use mockingbird::values::{Endian, MValue};
use mockingbird::wire::{CdrReader, CdrWriter, WireProgram};

/// A system allocator that counts allocations, so the bench can assert
/// the fused encode path is allocation-free at steady state.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// is a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

struct Fixture {
    name: &'static str,
    graph: MtypeGraph,
    plan: CoercionPlan,
    program: WireProgram,
    value: MValue,
}

fn pair_fixture(
    name: &'static str,
    build: impl FnOnce(&mut MtypeGraph) -> (mockingbird::mtype::MtypeId, mockingbird::mtype::MtypeId),
    value: MValue,
) -> Fixture {
    let mut g = MtypeGraph::new();
    let (l, r) = build(&mut g);
    let corr = Comparer::new(&g, &g)
        .compare(l, r, Mode::Equivalence)
        .expect("fixture pair must match");
    let plan = CoercionPlan::new(&g, &g, corr, RuleSet::full(), Mode::Equivalence);
    let program = WireProgram::compile(&plan).expect("fixture pair must fuse");
    assert!(program.two_way(), "fixtures exercise both directions");
    Fixture {
        name,
        graph: g,
        plan,
        program,
        value,
    }
}

fn fixtures() -> Vec<Fixture> {
    vec![
        // A flat record whose wire layout permutes every field.
        pair_fixture(
            "permuted_record",
            |g| {
                let i = g.integer(IntRange::signed_bits(32));
                let d = g.real(RealPrecision::DOUBLE);
                let c = g.character(Repertoire::Latin1);
                (g.record(vec![i, d, c]), g.record(vec![c, d, i]))
            },
            MValue::Record(vec![MValue::Int(42), MValue::Real(2.5), MValue::Char('m')]),
        ),
        // 1024 points, each permuted on the way to the wire: the plan
        // allocates a fresh record per element; the program does not.
        pair_fixture(
            "list_1024_permuted_points",
            |g| {
                let i = g.integer(IntRange::signed_bits(32));
                let f = g.real(RealPrecision::SINGLE);
                let left_pt = g.record(vec![f, i]);
                let right_pt = g.record(vec![i, f]);
                (g.list_of(left_pt), g.list_of(right_pt))
            },
            MValue::List(
                (0..1024)
                    .map(|k| MValue::Record(vec![MValue::Real(k as f64), MValue::Int(k)]))
                    .collect(),
            ),
        ),
        // Nested records permuted at two levels (a quad of lines).
        pair_fixture(
            "nested_permuted_quad",
            |g| {
                let i = g.integer(IntRange::signed_bits(64));
                let d = g.real(RealPrecision::DOUBLE);
                let lpt = g.record(vec![d, i]);
                let rpt = g.record(vec![i, d]);
                let lline = g.record(vec![lpt, lpt]);
                let rline = g.record(vec![rpt, rpt]);
                (g.record(vec![lline, lline]), g.record(vec![rline, rline]))
            },
            {
                let p = |x: f64, k: i128| MValue::Record(vec![MValue::Real(x), MValue::Int(k)]);
                let l = |x: f64| MValue::Record(vec![p(x, 1), p(x + 1.0, 2)]);
                MValue::Record(vec![l(0.0), l(2.0)])
            },
        ),
    ]
}

fn encoded_bytes(f: &Fixture, endian: Endian) -> Vec<u8> {
    let mut w = CdrWriter::new(endian);
    f.program.encode_value(&mut w, &f.value).unwrap();
    w.into_bytes()
}

fn bench_encode(c: &mut Criterion) {
    for f in fixtures() {
        let mut group = c.benchmark_group(format!("x6/encode/{}", f.name));
        let bytes = encoded_bytes(&f, Endian::Little);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        for endian in [Endian::Little, Endian::Big] {
            group.bench_with_input(
                BenchmarkId::new("interpretive", format!("{endian:?}")),
                &endian,
                |b, &endian| {
                    b.iter(|| {
                        let converted = f.plan.convert(black_box(&f.value)).unwrap();
                        let mut w = CdrWriter::new(endian);
                        w.put_value(&f.graph, f.plan.right_root(), &converted)
                            .unwrap();
                        black_box(w.into_bytes())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("fused", format!("{endian:?}")),
                &endian,
                |b, &endian| {
                    b.iter(|| {
                        let mut w = CdrWriter::new(endian);
                        f.program.encode_value(&mut w, black_box(&f.value)).unwrap();
                        black_box(w.into_bytes())
                    })
                },
            );
            // The runtime path: a pooled buffer whose capacity is warm.
            let mut pooled = Vec::with_capacity(bytes.len());
            group.bench_with_input(
                BenchmarkId::new("fused_pooled", format!("{endian:?}")),
                &endian,
                |b, &endian| {
                    b.iter(|| {
                        let mut w = CdrWriter::from_vec(std::mem::take(&mut pooled), endian);
                        f.program.encode_value(&mut w, black_box(&f.value)).unwrap();
                        pooled = w.into_bytes();
                        black_box(pooled.len())
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_decode(c: &mut Criterion) {
    for f in fixtures() {
        let mut group = c.benchmark_group(format!("x6/decode/{}", f.name));
        let bytes = encoded_bytes(&f, Endian::Little);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        for endian in [Endian::Little, Endian::Big] {
            let encoded = encoded_bytes(&f, endian);
            group.bench_with_input(
                BenchmarkId::new("interpretive", format!("{endian:?}")),
                &endian,
                |b, &endian| {
                    b.iter(|| {
                        let mut r = CdrReader::new(black_box(&encoded), endian);
                        let wire = r.get_value(&f.graph, f.plan.right_root()).unwrap();
                        black_box(f.plan.convert_back(&wire).unwrap())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("fused", format!("{endian:?}")),
                &endian,
                |b, &endian| {
                    b.iter(|| {
                        let mut r = CdrReader::new(black_box(&encoded), endian);
                        black_box(f.program.decode_value(&mut r).unwrap())
                    })
                },
            );
        }
        group.finish();
    }
}

/// Not a timing benchmark: proves the fused encode allocates nothing
/// once its output buffer has warmed to capacity. Runs (and asserts) in
/// quick mode too, so `cargo test --benches` exercises it.
fn prove_zero_alloc_encode(c: &mut Criterion) {
    for f in fixtures() {
        let name = f.name;
        c.bench_function(&format!("x6/zero_alloc/{name}"), move |b| {
            let mut pooled = encoded_bytes(&f, Endian::Little); // warm capacity
                                                                // One warmup round outside the counted window.
            let mut w = CdrWriter::from_vec(std::mem::take(&mut pooled), Endian::Little);
            f.program.encode_value(&mut w, &f.value).unwrap();
            pooled = w.into_bytes();
            let before = allocations();
            for _ in 0..16 {
                let mut w = CdrWriter::from_vec(std::mem::take(&mut pooled), Endian::Little);
                f.program.encode_value(&mut w, &f.value).unwrap();
                pooled = w.into_bytes();
            }
            let steady_state = allocations() - before;
            assert_eq!(
                steady_state, 0,
                "{name}: fused encode must not allocate at steady state"
            );
            b.iter(|| black_box(steady_state));
        });
    }
}

criterion_group!(benches, bench_encode, bench_decode, prove_zero_alloc_encode);
criterion_main!(benches);
