//! X2: comparer microbenchmarks and the isomorphism-rule ablation.
//!
//! Measures Amadio–Cardelli + isomorphism-rule comparison on deep, wide
//! and cyclic Mtypes, and the cost/benefit of the rules (full vs strict):
//! the strict comparer is faster but rejects every shuffled/regrouped
//! variant (match rate 0%), which is the entire point of the rules.

use mockingbird_bench::harness::{BenchmarkId, Criterion};
use mockingbird_bench::{criterion_group, criterion_main};
use mockingbird_rng::StdRng;
use std::hint::black_box;

use mockingbird::comparer::{Comparer, Mode, RuleSet};
use mockingbird::corpus::{isomorphic_variant, random_mtype};
use mockingbird::mtype::MtypeGraph;

fn bench_equivalence_by_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparer/equivalence_by_depth");
    for depth in [2usize, 3, 4, 5] {
        let mut rng = StdRng::seed_from_u64(depth as u64);
        let mut g = MtypeGraph::new();
        let ty = random_mtype(&mut g, &mut rng, depth);
        let mut h = MtypeGraph::new();
        let var = isomorphic_variant(&g, ty, &mut h);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let ok = Comparer::new(&g, &h).equivalent(black_box(ty), black_box(var));
                assert!(ok);
            })
        });
    }
    group.finish();
}

fn bench_wide_records(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparer/wide_record_permutation");
    for width in [8usize, 32, 128] {
        let mut g = MtypeGraph::new();
        let leaves: Vec<_> = (0..width)
            .map(|k| {
                g.integer(mockingbird::mtype::IntRange::signed_bits(
                    (k % 62 + 1) as u32,
                ))
            })
            .collect();
        let left = g.record(leaves.clone());
        let mut reversed = leaves;
        reversed.reverse();
        let right = g.record(reversed);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| {
                assert!(Comparer::new(&g, &g).equivalent(black_box(left), black_box(right)));
            })
        });
    }
    group.finish();
}

fn bench_cyclic_types(c: &mut Criterion) {
    // A chain of mutually recursive records, compared against the same
    // chain with its binder cut at a different point.
    let mut group = c.benchmark_group("comparer/cyclic");
    for n in [4usize, 16, 64] {
        let build = |rotate: usize| -> (MtypeGraph, mockingbird::mtype::MtypeId) {
            let mut g = MtypeGraph::new();
            let i = g.integer(mockingbird::mtype::IntRange::signed_bits(32));
            let root = g.recursive(|g, me| {
                let mut cur = me;
                for _ in 0..n {
                    cur = g.record(vec![i, cur]);
                }
                cur
            });
            // Enter the cycle at a rotated point.
            let mut entry = root;
            for _ in 0..rotate {
                let mockingbird::mtype::MtypeKind::Record(cs) = g.kind(g.resolve(entry)) else {
                    unreachable!()
                };
                entry = cs[1];
            }
            (g, entry)
        };
        let (g1, t1) = build(0);
        let (g2, t2) = build(0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                assert!(Comparer::new(&g1, &g2).equivalent(black_box(t1), black_box(t2)));
            })
        });
    }
    group.finish();
}

fn bench_rule_ablation(c: &mut Criterion) {
    // Full rules accept the shuffled variant; strict rules must reject
    // it (and do so quickly). This is the ablation row of EXPERIMENTS.md.
    let mut rng = StdRng::seed_from_u64(77);
    let mut g = MtypeGraph::new();
    let ty = random_mtype(&mut g, &mut rng, 4);
    let mut h = MtypeGraph::new();
    let var = isomorphic_variant(&g, ty, &mut h);

    let mut group = c.benchmark_group("comparer/rule_ablation");
    group.bench_function("full_rules_accept_variant", |b| {
        b.iter(|| assert!(Comparer::new(&g, &h).equivalent(black_box(ty), black_box(var))))
    });
    group.bench_function("strict_rules_reject_variant", |b| {
        b.iter(|| {
            assert!(!Comparer::with_rules(&g, &h, RuleSet::strict())
                .equivalent(black_box(ty), black_box(var)))
        })
    });
    group.bench_function("full_rules_identical_build", |b| {
        b.iter(|| assert!(Comparer::new(&g, &g).equivalent(black_box(ty), black_box(ty))))
    });
    group.finish();
}

fn bench_mismatch_rejection(c: &mut Criterion) {
    // Fast rejection via fingerprints: a perturbed variant must fail
    // quickly even for large types.
    let mut rng = StdRng::seed_from_u64(13);
    let mut g = MtypeGraph::new();
    let ty = random_mtype(&mut g, &mut rng, 5);
    let mut p = MtypeGraph::new();
    let bad = mockingbird::corpus::perturbed_variant(&g, ty, &mut p);
    c.bench_function("comparer/reject_perturbed", |b| {
        b.iter(|| {
            assert!(Comparer::new(&g, &p)
                .compare(black_box(ty), black_box(bad), Mode::Equivalence)
                .is_err())
        })
    });
}

criterion_group!(
    benches,
    bench_equivalence_by_depth,
    bench_wide_records,
    bench_cyclic_types,
    bench_rule_ablation,
    bench_mismatch_rejection
);
criterion_main!(benches);
