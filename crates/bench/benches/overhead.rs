//! X1: the §6 overhead question.
//!
//! "We are also engaged in establishing a realistic set of runtime
//! performance benchmarks to determine whether our two-declarations
//! approach adds any overhead compared to competing technologies (we do
//! not anticipate that it will)."
//!
//! Rows:
//! - `native_call`: the raw C fitter, no stub — the floor;
//! - `mockingbird_local`: the two-declarations local stub (structural
//!   conversion only, no wire);
//! - `mockingbird_marshal`: convert + CDR encode (the network path's
//!   marshalling half);
//! - `idl_compiler_marshal`: the baseline — hand bridge into imposed
//!   types, materialising the intermediate object graph, then CDR;
//! - `mockingbird_remote_loopback`: full GIOP round trip, no sockets.
//!
//! The paper's expectation holds if `mockingbird_marshal` ≤
//! `idl_compiler_marshal` (the baseline pays an extra materialisation).

use mockingbird_bench::harness::{BenchmarkId, Criterion};
use mockingbird_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use mockingbird_bench::{
    c_fitter_impl, fitter_remote_loopback, fitter_session, fitter_stub, point_list,
};

use mockingbird::baselines::bridge::{direct_marshal, ImposedPath};
use mockingbird::comparer::Mode;
use mockingbird::stype::ast::Stype;
use mockingbird::values::{Endian, MValue};

fn bench_local_call(c: &mut Criterion) {
    let (stub, _plan) = fitter_stub().unwrap();
    let mut group = c.benchmark_group("x1/local_call");
    for n in [4usize, 64, 1024] {
        let pts = point_list(n);
        group.bench_with_input(BenchmarkId::new("native_call", n), &n, |b, _| {
            let args = MValue::Record(vec![pts.clone()]);
            b.iter(|| c_fitter_impl(black_box(args.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mockingbird_local", n), &n, |b, _| {
            b.iter(|| {
                stub.call(black_box(std::slice::from_ref(&pts)), &c_fitter_impl)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_marshalling_paths(c: &mut Criterion) {
    // The data crossing the wire: a Java Point record versus the imposed
    // CORBA Point, in lists of growing length.
    let mut s = fitter_session().unwrap();
    s.load_java("public class WirePoint { private float x; private float y; }")
        .unwrap();
    let plan = s.compare("Point", "WirePoint", Mode::Equivalence).unwrap();
    let wire_ty = s.mtype("WirePoint").unwrap();
    let uni = s.universe().clone();

    let mut group = c.benchmark_group("x1/marshal_point");
    for n in [1usize, 64, 1024] {
        // n points marshalled one after another (per-value cost).
        let v = MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]);
        group.bench_with_input(BenchmarkId::new("mockingbird_direct", n), &n, |b, &n| {
            b.iter(|| {
                for _ in 0..n {
                    black_box(
                        direct_marshal(&plan, wire_ty, black_box(&v), Endian::Little).unwrap(),
                    );
                }
            })
        });
        let path = ImposedPath {
            uni: &uni,
            imposed_decl: Stype::named("WirePoint"),
            bridge: plan.clone(),
            imposed_ty: wire_ty,
        };
        group.bench_with_input(BenchmarkId::new("idl_compiler_bridge", n), &n, |b, &n| {
            b.iter(|| {
                for _ in 0..n {
                    black_box(path.marshal(black_box(&v), Endian::Little).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_remote_loopback(c: &mut Criterion) {
    let stub = fitter_remote_loopback().unwrap();
    let mut group = c.benchmark_group("x1/remote_loopback");
    for n in [4usize, 64, 1024] {
        let pts = point_list(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| stub.call(black_box(std::slice::from_ref(&pts))).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_local_call,
    bench_marshalling_paths,
    bench_remote_loopback
);
criterion_main!(benches);
