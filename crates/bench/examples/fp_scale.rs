//! Scaling probe for canonical fingerprints over the VisualAge corpus:
//! one shared [`Canonizer`] per graph (the comparer's usage pattern)
//! against a fresh engine per root. Run with a list of corpus sizes:
//!
//! ```text
//! cargo run --release -p mockingbird-bench --example fp_scale -- 10 50 200
//! ```

fn main() {
    use mockingbird::corpus::visualage;
    use mockingbird::mtype::canon::{canonical_fingerprint, CanonOpts, Canonizer};
    use mockingbird::mtype::MtypeGraph;
    use mockingbird::stype::lower::Lowerer;
    use mockingbird::stype::script::apply_script;
    use std::time::Instant;
    let ns: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap())
        .collect();
    for n in ns {
        let mut pair = visualage(n, 42);
        apply_script(&mut pair.java, &pair.script).unwrap();
        let mut g = MtypeGraph::new();
        let mut ids = Vec::new();
        {
            let mut lw = Lowerer::new(&pair.cxx, &mut g);
            for name in &pair.class_names {
                ids.push(lw.lower_named(name).unwrap());
            }
        }
        let t = Instant::now();
        let mut canon = Canonizer::new(&g, CanonOpts::full());
        for &id in &ids {
            std::hint::black_box(canon.fingerprint(id));
        }
        let shared = t.elapsed();
        let t = Instant::now();
        for &id in &ids {
            std::hint::black_box(canonical_fingerprint(&g, id));
        }
        let fresh = t.elapsed();
        println!(
            "n={n:>4} nodes={:>6} shared engine: {shared:>12?}  fresh per root: {fresh:>12?}",
            g.len()
        );
    }
}
