//! Traditional IDL-compiler code generation: imposed types.
//!
//! Reproduces the fixed translation of the paper's Fig. 4: IDL structs
//! become `final` Java classes with public fields and canned
//! constructors, `out` parameters become `Holder` classes, interfaces
//! become `org.omg.CORBA.Object`-extending Java interfaces. The C
//! generator emits the parallel C header.

use std::fmt::Write as _;

use mockingbird_stype::ann::Direction;
use mockingbird_stype::ast::{ArrayLen, Prim, SNode, Stype, Universe};

fn simple(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or(name)
}

fn java_type(uni: &Universe, ty: &Stype) -> String {
    match &ty.node {
        SNode::Prim(p) => match p {
            Prim::Bool => "boolean".into(),
            Prim::Char8 | Prim::Char16 => "char".into(),
            Prim::I8 | Prim::U8 => "byte".into(),
            Prim::I16 | Prim::U16 => "short".into(),
            Prim::I32 | Prim::U32 => "int".into(),
            Prim::I64 | Prim::U64 => "long".into(),
            Prim::F32 => "float".into(),
            Prim::F64 => "double".into(),
            Prim::Void => "void".into(),
            Prim::Any => "org.omg.CORBA.Any".into(),
        },
        SNode::Str => "String".into(),
        SNode::Named(n) => {
            // Typedefs to arrays/sequences flatten into the imposed
            // array form, exactly as the fixed translation does.
            match uni.get(n) {
                Some(decl) => match &decl.ty.node {
                    SNode::Array { elem, .. } | SNode::Sequence(elem) => {
                        format!("{}[]", java_type(uni, elem))
                    }
                    SNode::Enum(_) | SNode::Struct(_) | SNode::Union(_) => simple(n).to_string(),
                    _ => java_type(uni, &decl.ty),
                },
                None => simple(n).to_string(),
            }
        }
        SNode::Pointer(t) => java_type(uni, t),
        SNode::Array { elem, .. } => format!("{}[]", java_type(uni, elem)),
        SNode::Sequence(elem) => format!("{}[]", java_type(uni, elem)),
        SNode::Struct(_) | SNode::Union(_) | SNode::Class { .. } => "Object".into(),
        SNode::Enum(_) => "int".into(),
        SNode::Interface { .. } | SNode::Function(_) => "org.omg.CORBA.Object".into(),
    }
}

/// Generates the imposed Java translation of an IDL declaration: the
/// paper's Fig. 4 output.
///
/// Returns the generated compilation units as `(file name, source)`.
pub fn generate_java(uni: &Universe, decl_name: &str) -> Vec<(String, String)> {
    let Some(decl) = uni.get(decl_name) else {
        return vec![];
    };
    let name = simple(decl_name);
    let mut units = Vec::new();
    match &decl.ty.node {
        SNode::Struct(fields) => {
            let mut src = String::new();
            let _ = writeln!(src, "public final class {name} {{");
            let _ = writeln!(src, "    // canned constructors and methods");
            let _ = writeln!(src, "    public {name}() {{}}");
            let ctor_params: Vec<String> = fields
                .iter()
                .map(|f| format!("{} {}", java_type(uni, &f.ty), f.name))
                .collect();
            let _ = writeln!(src, "    public {name}({}) {{", ctor_params.join(", "));
            for f in fields {
                let _ = writeln!(src, "        this.{0} = {0};", f.name);
            }
            let _ = writeln!(src, "    }}");
            for f in fields {
                let _ = writeln!(src, "    public {} {};", java_type(uni, &f.ty), f.name);
            }
            let _ = writeln!(src, "}}");
            units.push((format!("{name}.java"), src));
            // The Holder class for out/inout parameters.
            let mut holder = String::new();
            let _ = writeln!(holder, "public final class {name}Holder {{");
            let _ = writeln!(holder, "    public {name} value;");
            let _ = writeln!(holder, "    public {name}Holder() {{}}");
            let _ = writeln!(
                holder,
                "    public {name}Holder({name} initial) {{ value = initial; }}"
            );
            let _ = writeln!(holder, "}}");
            units.push((format!("{name}Holder.java"), holder));
        }
        SNode::Interface { methods, .. } => {
            let mut src = String::new();
            let _ = writeln!(src, "public interface {name}");
            let _ = writeln!(src, "    extends org.omg.CORBA.Object {{");
            for m in methods {
                let mut params = Vec::new();
                for p in &m.sig.params {
                    let dir = p.ty.ann.direction.unwrap_or(Direction::In);
                    let base = java_type(uni, &p.ty);
                    let jty = match dir {
                        Direction::In => base,
                        // The fixed translation forces Holder types on
                        // out/inout parameters (Fig. 4).
                        Direction::Out | Direction::InOut => match &p.ty.node {
                            SNode::Named(n) => {
                                format!("{}Package.{}Holder", name, simple(n))
                            }
                            _ => format!("org.omg.CORBA.{}Holder", capitalise(&base)),
                        },
                    };
                    params.push(format!("{jty} {}", p.name));
                }
                let _ = writeln!(
                    src,
                    "    {} {}({});",
                    java_type(uni, &m.sig.ret),
                    m.name,
                    params.join(", ")
                );
            }
            let _ = writeln!(src, "}}");
            units.push((format!("{name}.java"), src));
        }
        SNode::Enum(members) => {
            let mut src = String::new();
            let _ = writeln!(src, "public final class {name} {{");
            for (i, m) in members.iter().enumerate() {
                let _ = writeln!(src, "    public static final int _{m} = {i};");
            }
            let _ = writeln!(src, "}}");
            units.push((format!("{name}.java"), src));
        }
        _ => {}
    }
    units
}

fn capitalise(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

fn c_type(ty: &Stype, name: &str) -> String {
    match &ty.node {
        SNode::Prim(p) => {
            let base = match p {
                Prim::Bool => "unsigned char",
                Prim::Char8 => "char",
                Prim::Char16 => "wchar_t",
                Prim::I8 => "signed char",
                Prim::U8 => "unsigned char",
                Prim::I16 => "short",
                Prim::U16 => "unsigned short",
                Prim::I32 => "int",
                Prim::U32 => "unsigned int",
                Prim::I64 => "long long",
                Prim::U64 => "unsigned long long",
                Prim::F32 => "float",
                Prim::F64 => "double",
                Prim::Void => "void",
                Prim::Any => "CORBA_any",
            };
            format!("{base} {name}")
        }
        SNode::Str => format!("char *{name}"),
        SNode::Named(n) => format!("{} {name}", simple(n)),
        SNode::Pointer(t) => c_type(t, &format!("*{name}")),
        SNode::Array { elem, len } => match len {
            ArrayLen::Fixed(k) => c_type(elem, &format!("{name}[{k}]")),
            ArrayLen::Indefinite => c_type(elem, &format!("{name}[]")),
        },
        SNode::Sequence(elem) => {
            // The standard C mapping of sequence<T>: a counted buffer.
            format!(
                "struct {{ unsigned long _length; {}; }} {name}",
                c_type(elem, "*_buffer")
            )
        }
        _ => format!("void *{name}"),
    }
}

/// Generates the imposed C translation of an IDL declaration.
pub fn generate_c(uni: &Universe, decl_name: &str) -> String {
    let Some(decl) = uni.get(decl_name) else {
        return String::new();
    };
    let name = simple(decl_name);
    let mut out = String::new();
    match &decl.ty.node {
        SNode::Struct(fields) => {
            let _ = writeln!(out, "typedef struct {name} {{");
            for f in fields {
                let _ = writeln!(out, "    {};", c_type(&f.ty, &f.name));
            }
            let _ = writeln!(out, "}} {name};");
        }
        SNode::Interface { methods, .. } => {
            for m in methods {
                let mut params = vec!["CORBA_Object self".to_string()];
                for p in &m.sig.params {
                    let dir = p.ty.ann.direction.unwrap_or(Direction::In);
                    let expr = match dir {
                        Direction::In => c_type(&p.ty, &p.name),
                        Direction::Out | Direction::InOut => c_type(&p.ty, &format!("*{}", p.name)),
                    };
                    params.push(expr);
                }
                let _ = writeln!(
                    out,
                    "{};",
                    c_type(
                        &m.sig.ret,
                        &format!("{name}_{}({})", m.name, params.join(", "))
                    )
                );
            }
        }
        SNode::Enum(members) => {
            let _ = writeln!(
                out,
                "typedef enum {name} {{ {} }} {name};",
                members.join(", ")
            );
        }
        _ => {
            let _ = writeln!(out, "typedef {};", c_type(&decl.ty, name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_lang_idl::parse_idl;

    const FIG3A: &str = "
        interface JavaFriendly {
          struct Point { float x; float y; };
          struct Line { Point start; Point end; };
          typedef sequence<Point> PointVector;
          Line fitter(in PointVector pts);
        };";

    const FIG3B: &str = "
        interface CFriendly {
          typedef float Point[2];
          typedef sequence<Point> pointseq;
          void fitter(in pointseq pts, in long count,
                      out Point start, out Point end);
        };";

    #[test]
    fn figure_4_imposed_point_class() {
        let uni = parse_idl(FIG3A).unwrap();
        let units = generate_java(&uni, "JavaFriendly.Point");
        let (_, src) = &units[0];
        assert!(src.contains("public final class Point {"), "{src}");
        assert!(src.contains("public float x;"));
        assert!(src.contains("public float y;"));
        assert!(src.contains("canned constructors"));
        let (holder_name, holder) = &units[1];
        assert_eq!(holder_name, "PointHolder.java");
        assert!(holder.contains("public Point value;"));
    }

    #[test]
    fn figure_4_imposed_java_friendly_interface() {
        let uni = parse_idl(FIG3A).unwrap();
        let units = generate_java(&uni, "JavaFriendly");
        let (_, src) = &units[0];
        assert!(src.contains("public interface JavaFriendly"));
        assert!(src.contains("extends org.omg.CORBA.Object"));
        // The fixed translation forces Point[] instead of PointVector —
        // the paper's §2 complaint.
        assert!(src.contains("Line fitter(Point[] pts);"), "{src}");
    }

    #[test]
    fn figure_4_imposed_c_friendly_interface_with_holders() {
        let uni = parse_idl(FIG3B).unwrap();
        let units = generate_java(&uni, "CFriendly");
        let (_, src) = &units[0];
        assert!(src.contains("void fitter(float[][] pts"), "{src}");
        assert!(src.contains("int count"));
        assert!(
            src.contains("CFriendlyPackage.PointHolder start"),
            "out params become Holder types: {src}"
        );
    }

    #[test]
    fn imposed_c_translation() {
        let uni = parse_idl(FIG3A).unwrap();
        let c = generate_c(&uni, "JavaFriendly.Point");
        assert!(c.contains("typedef struct Point {"));
        assert!(c.contains("float x;"));
        let c = generate_c(&uni, "JavaFriendly");
        assert!(
            c.contains("Line JavaFriendly_fitter(CORBA_Object self"),
            "{c}"
        );
    }

    #[test]
    fn enums_and_missing_decls() {
        let uni = parse_idl("enum Color { RED, GREEN };").unwrap();
        let units = generate_java(&uni, "Color");
        assert!(units[0].1.contains("public static final int _RED = 0;"));
        assert!(generate_java(&uni, "Nope").is_empty());
        assert!(generate_c(&uni, "Nope").is_empty());
        let c = generate_c(&uni, "Color");
        assert!(c.contains("typedef enum Color { RED, GREEN } Color;"));
    }
}
