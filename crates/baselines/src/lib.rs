//! The baselines Mockingbird is contrasted against (paper §1–§2).
//!
//! - [`idlgen`] — an **IDL compiler** in the traditional mould: given
//!   CORBA IDL declarations it emits the *imposed* Java and C types of
//!   the paper's Fig. 4 ("canned" value classes with public fields,
//!   Holder classes for `out` parameters, an interface with the fixed
//!   translation). The application must then hand-bridge between its own
//!   types and these.
//! - [`bridge`] — the runtime cost model of that hand bridge: the
//!   imposed-type path materialises an intermediate object graph (the
//!   imposed types) between the application value and the wire, which is
//!   exactly the extra work the §6 overhead study measures.
//! - [`x2y`] — an **X2Y tool** (the paper cites J2c++): translates a C
//!   declaration directly into an imposed Java interface, "with flexible
//!   use of the type system in the source language, but data types ...
//!   once again imposed for the target language".

pub mod bridge;
pub mod idlgen;
pub mod x2y;

pub use bridge::ImposedPath;
pub use idlgen::{generate_c, generate_java};
pub use x2y::c_to_java;
