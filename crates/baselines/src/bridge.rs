//! The imposed-type hand-bridge path.
//!
//! With a traditional IDL compiler, "the programmer is faced with the
//! error-prone chore of writing program logic to move information
//! between an application's computational data types and the parallel
//! set of imposed communication types" (paper §1). At runtime this
//! bridge *materialises* the imposed object graph between the
//! application value and the wire. [`ImposedPath`] models that exactly:
//!
//! ```text
//! app value ──plan₁──▶ imposed value (materialised object graph)
//!                       │
//!                       └──CDR encode──▶ wire bytes
//! ```
//!
//! whereas the Mockingbird path converts the application value straight
//! to the wire. The §6 overhead benchmark compares the two.

use mockingbird_comparer::Mode;
use mockingbird_mtype::MtypeId;
use mockingbird_plan::{CoercionPlan, ConvertError};
use mockingbird_stype::ast::{Stype, Universe};
use mockingbird_values::java::{JCodec, JHeap, JValue};
use mockingbird_values::{Endian, MValue};
use mockingbird_wire::cdr::{CdrError, CdrWriter};

/// Errors on the imposed path.
#[derive(Debug)]
pub enum ImposedError {
    /// The hand bridge failed.
    Bridge(ConvertError),
    /// Materialising or reading the imposed object graph failed.
    Materialise(String),
    /// Marshalling failed.
    Wire(CdrError),
}

impl std::fmt::Display for ImposedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImposedError::Bridge(e) => write!(f, "hand bridge: {e}"),
            ImposedError::Materialise(m) => write!(f, "imposed types: {m}"),
            ImposedError::Wire(e) => write!(f, "marshalling: {e}"),
        }
    }
}

impl std::error::Error for ImposedError {}

/// The runtime model of the IDL-compiler baseline: application values
/// are first bridged into the *imposed* types (a real intermediate
/// object graph in a Java heap), then the imposed objects are marshalled.
pub struct ImposedPath<'u> {
    /// Universe holding the imposed declarations.
    pub uni: &'u Universe,
    /// The imposed declaration the bridge targets.
    pub imposed_decl: Stype,
    /// app Mtype → imposed Mtype conversion (the "hand bridge").
    pub bridge: CoercionPlan,
    /// The imposed Mtype (wire type).
    pub imposed_ty: MtypeId,
}

impl ImposedPath<'_> {
    /// Runs the full baseline path for one value: hand bridge, imposed
    /// object materialisation, marshalling. Returns the wire bytes and
    /// the number of imposed heap objects materialised (the measurable
    /// overhead).
    ///
    /// # Errors
    ///
    /// Propagates bridge, materialisation and marshalling failures.
    pub fn marshal(
        &self,
        app_value: &MValue,
        endian: Endian,
    ) -> Result<(Vec<u8>, usize), ImposedError> {
        if self.bridge.mode() != Mode::Equivalence {
            // One-way bridges are fine for marshalling; nothing to check.
        }
        // 1. Hand bridge: application shape -> imposed shape.
        let imposed_value = self
            .bridge
            .convert(app_value)
            .map_err(ImposedError::Bridge)?;
        // 2. Materialise the imposed object graph (the programmer's
        //    `new Point(...)`s into the generated classes).
        let mut heap = JHeap::new();
        let codec = JCodec::new(self.uni);
        let imposed_obj: JValue = codec
            .from_mvalue(&mut heap, &self.imposed_decl, &imposed_value)
            .map_err(|e| ImposedError::Materialise(e.to_string()))?;
        // 3. Read the imposed objects back for marshalling (the stubs the
        //    IDL compiler generated walk these objects).
        let reread = codec
            .to_mvalue(&heap, &self.imposed_decl, &imposed_obj)
            .map_err(|e| ImposedError::Materialise(e.to_string()))?;
        // 4. Marshal.
        let mut w = CdrWriter::new(endian);
        w.put_value(self.bridge.right_graph(), self.imposed_ty, &reread)
            .map_err(ImposedError::Wire)?;
        Ok((w.into_bytes(), heap.len()))
    }
}

/// The Mockingbird path for the same value: one conversion, straight to
/// the wire (no intermediate object graph). Returns the wire bytes.
///
/// # Errors
///
/// Propagates conversion and marshalling failures.
pub fn direct_marshal(
    plan: &CoercionPlan,
    wire_ty: MtypeId,
    app_value: &MValue,
    endian: Endian,
) -> Result<Vec<u8>, ImposedError> {
    let wire_value = plan.convert(app_value).map_err(ImposedError::Bridge)?;
    let mut w = CdrWriter::new(endian);
    w.put_value(plan.right_graph(), wire_ty, &wire_value)
        .map_err(ImposedError::Wire)?;
    Ok(w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_comparer::{Comparer, RuleSet};
    use mockingbird_mtype::MtypeGraph;
    use mockingbird_stype::ast::{Decl, Field, Lang};
    use mockingbird_stype::lower::Lowerer;

    /// App type: Point as a Java class; imposed type: the Fig. 4 final
    /// class with public float fields (structurally identical here, so
    /// the *only* difference is the materialisation).
    fn setup() -> (Universe, MtypeGraph, MtypeId, MtypeId) {
        let mut uni = Universe::new();
        uni.insert(Decl::new(
            "AppPoint",
            Lang::Java,
            Stype::class(
                vec![Field::new("x", Stype::f32()), Field::new("y", Stype::f32())],
                vec![],
            ),
        ))
        .unwrap();
        uni.insert(Decl::new(
            "ImposedPoint",
            Lang::Java,
            Stype::class(
                vec![Field::new("x", Stype::f32()), Field::new("y", Stype::f32())],
                vec![],
            ),
        ))
        .unwrap();
        let mut g = MtypeGraph::new();
        let mut lw = Lowerer::new(&uni, &mut g);
        let app = lw.lower_named("AppPoint").unwrap();
        let imposed = lw.lower_named("ImposedPoint").unwrap();
        (uni, g, app, imposed)
    }

    #[test]
    fn imposed_path_materialises_and_direct_path_does_not() {
        let (uni, g, app, imposed) = setup();
        let corr = Comparer::new(&g, &g)
            .compare(app, imposed, Mode::Equivalence)
            .unwrap();
        let plan = CoercionPlan::new(&g, &g, corr, RuleSet::full(), Mode::Equivalence);
        let v = MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]);

        let path = ImposedPath {
            uni: &uni,
            imposed_decl: Stype::named("ImposedPoint"),
            bridge: plan.clone(),
            imposed_ty: imposed,
        };
        let (bytes_imposed, materialised) = path.marshal(&v, Endian::Little).unwrap();
        assert!(materialised >= 1, "the imposed object graph is real");

        let bytes_direct = direct_marshal(&plan, imposed, &v, Endian::Little).unwrap();
        assert_eq!(
            bytes_imposed, bytes_direct,
            "same bytes on the wire either way"
        );
    }

    #[test]
    fn errors_surface() {
        let (uni, g, app, imposed) = setup();
        let corr = Comparer::new(&g, &g)
            .compare(app, imposed, Mode::Equivalence)
            .unwrap();
        let plan = CoercionPlan::new(&g, &g, corr, RuleSet::full(), Mode::Equivalence);
        let path = ImposedPath {
            uni: &uni,
            imposed_decl: Stype::named("ImposedPoint"),
            bridge: plan,
            imposed_ty: imposed,
        };
        // A value of the wrong shape fails in the hand bridge.
        assert!(path.marshal(&MValue::Int(1), Endian::Little).is_err());
    }
}
