//! Integration-test anchor crate; see the repository-level `tests/` directory.
