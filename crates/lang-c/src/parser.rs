//! Recursive-descent parser from C/C++ declarations to Stypes.

use mockingbird_stype::ast::{Decl, Field, Lang, Method, Param, Signature, Stype, Universe};

#[cfg(test)]
use mockingbird_stype::ast::SNode;

use crate::lexer::{lex, CParseError, Spanned, Tok};

/// Parses C declarations into a universe.
///
/// # Errors
///
/// Returns [`CParseError`] with line information on any syntax the
/// declaration subset does not cover.
pub fn parse_c(src: &str) -> Result<Universe, CParseError> {
    Parser::new(src, Lang::C)?.run()
}

/// Parses C++ declarations (adds `class`, references, inheritance).
///
/// # Errors
///
/// Returns [`CParseError`] with line information on any syntax the
/// declaration subset does not cover.
pub fn parse_cxx(src: &str) -> Result<Universe, CParseError> {
    Parser::new(src, Lang::Cxx)?.run()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    lang: Lang,
    uni: Universe,
}

/// The result of parsing one declarator.
struct Declarator {
    name: Option<String>,
    /// Pointer levels, innermost first; `true` = C++ reference (non-null).
    pointers: Vec<bool>,
    /// Array suffixes in written order; `None` = indefinite (`[]`).
    arrays: Vec<Option<usize>>,
    /// Function parameter list, if this declarator declares a function.
    params: Option<Vec<Param>>,
}

impl Parser {
    fn new(src: &str, lang: Lang) -> Result<Self, CParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            lang,
            uni: Universe::new(),
        })
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, CParseError> {
        Err(CParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek() == Some(&Tok::Sym(unsafe_static(sym))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), CParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            self.err(format!(
                "expected `{sym}`, found `{}`",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "<eof>".into())
            ))
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!(
                "expected identifier, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "<eof>".into())
            )),
        }
    }

    fn run(mut self) -> Result<Universe, CParseError> {
        while self.peek().is_some() {
            self.top_decl()?;
        }
        Ok(self.uni)
    }

    fn insert(&mut self, decl: Decl) -> Result<(), CParseError> {
        let line = self.line();
        self.uni.insert(decl).map_err(|e| CParseError {
            line,
            message: e.to_string(),
        })
    }

    fn top_decl(&mut self) -> Result<(), CParseError> {
        if self.eat_ident("typedef") {
            // Inline aggregate definition: typedef struct [Tag] { ... } Name;
            if matches!(self.peek(), Some(Tok::Ident(s)) if s == "struct" || s == "union" || s == "enum")
            {
                let brace_next = self.peek2() == Some(&Tok::Sym("{"))
                    || (matches!(self.peek2(), Some(Tok::Ident(_)))
                        && self.toks.get(self.pos + 2).map(|t| &t.tok) == Some(&Tok::Sym("{")));
                if brace_next {
                    let keyword = self.expect_ident()?;
                    let tag = match self.peek() {
                        Some(Tok::Ident(_)) => Some(self.expect_ident()?),
                        _ => None,
                    };
                    let ty = if keyword == "enum" {
                        Stype::enum_of(self.enum_members()?)
                    } else {
                        let fields = self.braced_fields()?;
                        if keyword == "struct" {
                            Stype::struct_of(fields)
                        } else {
                            Stype::union_of(fields)
                        }
                    };
                    let d = self.declarator(true)?;
                    let name = match d.name.clone() {
                        Some(n) => n,
                        None => return self.err("typedef requires a name"),
                    };
                    self.expect_sym(";")?;
                    // Register the tag so `struct Tag *` references resolve.
                    if let Some(tag) = &tag {
                        self.insert(Decl::new(tag.clone(), self.lang, ty.clone()))?;
                    }
                    if tag.as_deref() == Some(name.as_str()) {
                        // `typedef struct X {...} X;` — one declaration.
                        return Ok(());
                    }
                    let base = match &tag {
                        Some(tag) => Stype::named(tag.clone()),
                        None => ty,
                    };
                    let full = build_type(base, d);
                    return self.insert(Decl::new(name, self.lang, full));
                }
            }
            let base = self.type_specifier()?;
            let d = self.declarator(true)?;
            let name = match d.name.clone() {
                Some(n) => n,
                None => return self.err("typedef requires a name"),
            };
            let ty = build_type(base, d);
            self.expect_sym(";")?;
            return self.insert(Decl::new(name, self.lang, ty));
        }
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "struct" || s == "union") {
            // Definition at top level, or a declaration using the tag.
            if matches!(self.peek2(), Some(Tok::Ident(_)))
                && self.toks.get(self.pos + 2).map(|s| &s.tok) == Some(&Tok::Sym("{"))
            {
                let keyword = self.expect_ident()?;
                let name = self.expect_ident()?;
                let fields = self.braced_fields()?;
                self.expect_sym(";")?;
                let ty = if keyword == "struct" {
                    Stype::struct_of(fields)
                } else {
                    Stype::union_of(fields)
                };
                return self.insert(Decl::new(name, self.lang, ty));
            }
        }
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "enum")
            && matches!(self.peek2(), Some(Tok::Ident(_)))
            && self.toks.get(self.pos + 2).map(|s| &s.tok) == Some(&Tok::Sym("{"))
        {
            self.bump();
            let name = self.expect_ident()?;
            let members = self.enum_members()?;
            self.expect_sym(";")?;
            return self.insert(Decl::new(name, self.lang, Stype::enum_of(members)));
        }
        if self.lang == Lang::Cxx && matches!(self.peek(), Some(Tok::Ident(s)) if s == "class") {
            return self.class_decl();
        }
        // Function or variable declaration.
        let base = self.type_specifier()?;
        let d = self.declarator(true)?;
        match d.params {
            Some(_) => {
                let name = match d.name.clone() {
                    Some(n) => n,
                    None => return self.err("function declaration requires a name"),
                };
                let ty = build_type(base, d);
                self.expect_sym(";")?;
                self.insert(Decl::new(name, self.lang, ty))
            }
            None => {
                // A variable declaration: accepted and skipped (variables
                // are not interface types).
                self.expect_sym(";")?;
                Ok(())
            }
        }
    }

    fn braced_fields(&mut self) -> Result<Vec<Field>, CParseError> {
        self.expect_sym("{")?;
        let mut fields = Vec::new();
        while !self.eat_sym("}") {
            if self.peek().is_none() {
                return self.err("unterminated struct/union body");
            }
            let base = self.type_specifier()?;
            loop {
                let d = self.declarator(true)?;
                let name = match d.name.clone() {
                    Some(n) => n,
                    None => return self.err("field requires a name"),
                };
                let ty = build_type(base.clone(), d);
                fields.push(Field::new(name, ty));
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(";")?;
        }
        Ok(fields)
    }

    fn enum_members(&mut self) -> Result<Vec<String>, CParseError> {
        self.expect_sym("{")?;
        let mut members = Vec::new();
        while !self.eat_sym("}") {
            let name = self.expect_ident()?;
            if self.eat_sym("=") {
                match self.bump() {
                    Some(Tok::Num(_)) => {}
                    _ => return self.err("expected enum member value"),
                }
            }
            members.push(name);
            if !self.eat_sym(",") && self.peek() != Some(&Tok::Sym("}")) {
                return self.err("expected `,` or `}` in enum body");
            }
        }
        if members.is_empty() {
            return self.err("enum must have at least one member");
        }
        Ok(members)
    }

    fn class_decl(&mut self) -> Result<(), CParseError> {
        self.bump(); // class
        let name = self.expect_ident()?;
        let mut extends = None;
        if self.eat_sym(":") {
            // Single inheritance with optional access specifier.
            let _ = self.eat_ident("public")
                || self.eat_ident("private")
                || self.eat_ident("protected");
            extends = Some(self.qualified_name()?);
        }
        self.expect_sym("{")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        let mut visibility_public = false; // class defaults to private
        while !self.eat_sym("}") {
            if self.peek().is_none() {
                return self.err("unterminated class body");
            }
            // Visibility labels.
            if self.eat_ident("public") {
                self.expect_sym(":")?;
                visibility_public = true;
                continue;
            }
            if self.eat_ident("private") || self.eat_ident("protected") {
                self.expect_sym(":")?;
                visibility_public = false;
                continue;
            }
            let _ = self.eat_ident("virtual");
            let _ = self.eat_ident("static");
            // Destructor: ~Name() ... ;
            if self.eat_sym("~") {
                let _ = self.expect_ident()?;
                self.skip_member_tail()?;
                continue;
            }
            // Constructor: Name ( ... ) ... ;
            if matches!(self.peek(), Some(Tok::Ident(s)) if *s == name)
                && self.peek2() == Some(&Tok::Sym("("))
            {
                self.bump();
                self.skip_member_tail()?;
                continue;
            }
            let base = self.type_specifier()?;
            let d = self.declarator(true)?;
            match d.params {
                Some(_) => {
                    let mname = match d.name.clone() {
                        Some(n) => n,
                        None => return self.err("method requires a name"),
                    };
                    let params = d.params.clone().unwrap();
                    let ret = build_type_no_fn(base, &d);
                    // Trailing const / pure-virtual / inline body.
                    let _ = self.eat_ident("const");
                    if self.eat_sym("=") {
                        match self.bump() {
                            Some(Tok::Num(0)) => {}
                            _ => return self.err("expected `0` after `=` (pure virtual)"),
                        }
                    }
                    self.skip_body_or_semi()?;
                    if visibility_public {
                        methods.push(Method::new(mname, Signature::new(params, ret)));
                    }
                }
                None => {
                    let fname = match d.name.clone() {
                        Some(n) => n,
                        None => return self.err("field requires a name"),
                    };
                    let ty = build_type(base, d);
                    self.expect_sym(";")?;
                    fields.push(Field::new(fname, ty));
                }
            }
        }
        self.expect_sym(";")?;
        let ty = match extends {
            Some(sup) => Stype::class_extending(fields, methods, sup),
            None => Stype::class(fields, methods),
        };
        self.insert(Decl::new(name, self.lang, ty))
    }

    /// Skips `( ... ) [const] [= 0]` then a body or `;` — for
    /// constructors/destructors whose shapes we do not model.
    fn skip_member_tail(&mut self) -> Result<(), CParseError> {
        self.expect_sym("(")?;
        let mut depth = 1;
        while depth > 0 {
            match self.bump() {
                Some(Tok::Sym("(")) => depth += 1,
                Some(Tok::Sym(")")) => depth -= 1,
                Some(_) => {}
                None => return self.err("unterminated parameter list"),
            }
        }
        let _ = self.eat_ident("const");
        self.skip_body_or_semi()
    }

    fn skip_body_or_semi(&mut self) -> Result<(), CParseError> {
        if self.eat_sym("{") {
            let mut depth = 1;
            while depth > 0 {
                match self.bump() {
                    Some(Tok::Sym("{")) => depth += 1,
                    Some(Tok::Sym("}")) => depth -= 1,
                    Some(_) => {}
                    None => return self.err("unterminated method body"),
                }
            }
            // Optional trailing `;` after a body.
            let _ = self.eat_sym(";");
            Ok(())
        } else {
            self.expect_sym(";")
        }
    }

    fn qualified_name(&mut self) -> Result<String, CParseError> {
        let mut name = self.expect_ident()?;
        while self.peek() == Some(&Tok::Sym("::")) {
            self.bump();
            name.push('.');
            name.push_str(&self.expect_ident()?);
        }
        Ok(name)
    }

    /// Parses a type specifier: qualifiers, builtin keyword combos,
    /// struct/union/enum tags, or typedef names.
    fn type_specifier(&mut self) -> Result<Stype, CParseError> {
        while self.eat_ident("const") || self.eat_ident("volatile") {}
        // Tagged references.
        for (kw, _) in [("struct", 0), ("union", 1), ("enum", 2)] {
            if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
                && matches!(self.peek2(), Some(Tok::Ident(_)))
            {
                self.bump();
                let tag = self.expect_ident()?;
                return Ok(Stype::named(tag));
            }
        }
        // Builtin combinations.
        const BUILTIN_WORDS: [&str; 10] = [
            "signed", "unsigned", "short", "long", "int", "char", "float", "double", "void", "bool",
        ];
        let mut words: Vec<String> = Vec::new();
        while let Some(Tok::Ident(s)) = self.peek() {
            if BUILTIN_WORDS.contains(&s.as_str()) || s == "wchar_t" {
                words.push(s.clone());
                self.bump();
            } else {
                break;
            }
        }
        if words.is_empty() {
            // A typedef/class name, possibly qualified.
            if matches!(self.peek(), Some(Tok::Ident(_))) {
                let name = self.qualified_name()?;
                return Ok(Stype::named(name));
            }
            return self.err("expected a type");
        }
        let has = |w: &str| words.iter().any(|x| x == w);
        let longs = words.iter().filter(|x| *x == "long").count();
        let unsigned = has("unsigned");
        Ok(if has("void") {
            Stype::void()
        } else if has("bool") {
            Stype::boolean()
        } else if has("wchar_t") {
            Stype::char16()
        } else if has("double") {
            Stype::f64()
        } else if has("float") {
            Stype::f32()
        } else if has("char") {
            if unsigned {
                Stype::u8()
            } else if has("signed") {
                Stype::i8()
            } else {
                Stype::char8()
            }
        } else if has("short") {
            if unsigned {
                Stype::u16()
            } else {
                Stype::i16()
            }
        } else if longs >= 2 {
            if unsigned {
                Stype::u64()
            } else {
                Stype::i64()
            }
        } else {
            // int, long, signed, unsigned: ILP32 defaults (the paper notes
            // C defaults come from "the implementation"; override by
            // annotation).
            if unsigned {
                Stype::u32()
            } else {
                Stype::i32()
            }
        })
    }

    /// Parses one declarator: pointers, optional name, array/function
    /// suffixes. `allow_params` is false inside parameter declarators to
    /// avoid ambiguity with function pointers (unsupported).
    fn declarator(&mut self, allow_params: bool) -> Result<Declarator, CParseError> {
        let mut pointers = Vec::new();
        loop {
            if self.eat_sym("*") {
                pointers.push(false);
                while self.eat_ident("const") {}
            } else if self.lang == Lang::Cxx && self.eat_sym("&") {
                pointers.push(true);
                while self.eat_ident("const") {}
            } else {
                break;
            }
        }
        let name = match self.peek() {
            Some(Tok::Ident(s)) if !is_keyword(s) => {
                let n = s.clone();
                self.bump();
                Some(n)
            }
            _ => None,
        };
        let mut arrays = Vec::new();
        let mut params = None;
        loop {
            if self.eat_sym("[") {
                match self.bump() {
                    Some(Tok::Num(n)) => {
                        if n < 0 {
                            return self.err("negative array length");
                        }
                        self.expect_sym("]")?;
                        arrays.push(Some(n as usize));
                    }
                    Some(Tok::Sym("]")) => arrays.push(None),
                    _ => return self.err("expected array length or `]`"),
                }
            } else if allow_params && params.is_none() && self.peek() == Some(&Tok::Sym("(")) {
                self.bump();
                params = Some(self.param_list()?);
            } else {
                break;
            }
        }
        Ok(Declarator {
            name,
            pointers,
            arrays,
            params,
        })
    }

    fn param_list(&mut self) -> Result<Vec<Param>, CParseError> {
        let mut params = Vec::new();
        if self.eat_sym(")") {
            return Ok(params);
        }
        // `(void)` means no parameters.
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "void")
            && self.peek2() == Some(&Tok::Sym(")"))
        {
            self.bump();
            self.bump();
            return Ok(params);
        }
        loop {
            let base = self.type_specifier()?;
            let d = self.declarator(false)?;
            let name = d
                .name
                .clone()
                .unwrap_or_else(|| format!("arg{}", params.len()));
            let ty = build_type(base, d);
            params.push(Param::new(name, ty));
            if self.eat_sym(",") {
                continue;
            }
            self.expect_sym(")")?;
            break;
        }
        Ok(params)
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "typedef"
            | "struct"
            | "union"
            | "enum"
            | "class"
            | "const"
            | "volatile"
            | "signed"
            | "unsigned"
            | "short"
            | "long"
            | "int"
            | "char"
            | "float"
            | "double"
            | "void"
            | "bool"
            | "wchar_t"
            | "virtual"
            | "static"
            | "public"
            | "private"
            | "protected"
    )
}

/// Applies a declarator's pointers and arrays around a base type,
/// producing a function Stype when a parameter list is present.
fn build_type(base: Stype, d: Declarator) -> Stype {
    let inner = build_type_no_fn(base, &d);
    match d.params {
        Some(params) => Stype::function(params, inner),
        None => inner,
    }
}

/// As [`build_type`] but ignores the parameter list (used for method
/// return types, where the params are consumed separately).
fn build_type_no_fn(base: Stype, d: &Declarator) -> Stype {
    let mut ty = base;
    for &is_ref in &d.pointers {
        ty = Stype::pointer(ty);
        if is_ref {
            ty = ty.with_ann(|a| a.non_null = true);
        }
    }
    // Array suffixes bind outermost-first: `int a[2][3]` is an array of 2
    // arrays of 3 ints.
    for &len in d.arrays.iter().rev() {
        ty = match len {
            Some(n) => Stype::array_fixed(ty, n),
            None => Stype::array_indefinite(ty),
        };
    }
    ty
}

#[allow(clippy::missing_const_for_fn)]
fn unsafe_static(sym: &str) -> &'static str {
    // Symbols compared against come from a fixed table; map dynamically.
    match sym {
        "*" => "*",
        "&" => "&",
        "(" => "(",
        ")" => ")",
        "[" => "[",
        "]" => "]",
        "{" => "{",
        "}" => "}",
        ";" => ";",
        "," => ",",
        ":" => ":",
        "<" => "<",
        ">" => ">",
        "=" => "=",
        "~" => "~",
        "#" => "#",
        "::" => "::",
        "->" => "->",
        "==" => "==",
        _ => unreachable!("unknown symbol `{sym}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_stype::ast::{ArrayLen as AL, Prim};

    #[test]
    fn paper_figure_2_parses() {
        let uni = parse_c(
            "typedef float point[2];\n\
             void fitter(point pts[], int count, point *start, point *end);",
        )
        .unwrap();
        let point = uni.get("point").unwrap();
        assert!(matches!(
            &point.ty.node,
            SNode::Array { len: AL::Fixed(2), elem } if matches!(elem.node, SNode::Prim(Prim::F32))
        ));
        let fitter = uni.get("fitter").unwrap();
        let SNode::Function(sig) = &fitter.ty.node else {
            panic!()
        };
        assert_eq!(sig.params.len(), 4);
        assert!(matches!(
            &sig.params[0].ty.node,
            SNode::Array {
                len: AL::Indefinite,
                ..
            }
        ));
        assert!(matches!(&sig.params[2].ty.node, SNode::Pointer(_)));
        assert!(matches!(sig.ret.node, SNode::Prim(Prim::Void)));
    }

    #[test]
    fn struct_union_enum_definitions() {
        let uni = parse_c(
            "struct Point { float x; float y; };\n\
             union Number { int i; float f; };\n\
             enum Color { RED, GREEN = 5, BLUE };",
        )
        .unwrap();
        let SNode::Struct(fs) = &uni.get("Point").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(fs.len(), 2);
        let SNode::Union(arms) = &uni.get("Number").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
        let SNode::Enum(ms) = &uni.get("Color").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(ms, &vec!["RED".to_string(), "GREEN".into(), "BLUE".into()]);
    }

    #[test]
    fn builtin_type_combinations() {
        let uni = parse_c(
            "typedef unsigned char byte_t;\n\
             typedef unsigned long long u64_t;\n\
             typedef long long i64_t;\n\
             typedef unsigned short u16_t;\n\
             typedef signed char i8_t;\n\
             typedef wchar_t wide_t;",
        )
        .unwrap();
        assert!(matches!(
            uni.get("byte_t").unwrap().ty.node,
            SNode::Prim(Prim::U8)
        ));
        assert!(matches!(
            uni.get("u64_t").unwrap().ty.node,
            SNode::Prim(Prim::U64)
        ));
        assert!(matches!(
            uni.get("i64_t").unwrap().ty.node,
            SNode::Prim(Prim::I64)
        ));
        assert!(matches!(
            uni.get("u16_t").unwrap().ty.node,
            SNode::Prim(Prim::U16)
        ));
        assert!(matches!(
            uni.get("i8_t").unwrap().ty.node,
            SNode::Prim(Prim::I8)
        ));
        assert!(matches!(
            uni.get("wide_t").unwrap().ty.node,
            SNode::Prim(Prim::Char16)
        ));
    }

    #[test]
    fn multi_declarator_fields_and_nested_arrays() {
        let uni = parse_c("struct M { int a, b; float grid[2][3]; };").unwrap();
        let SNode::Struct(fs) = &uni.get("M").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(fs.len(), 3);
        // grid: array[2] of array[3] of float.
        let SNode::Array { elem, len } = &fs[2].ty.node else {
            panic!()
        };
        assert!(matches!(len, AL::Fixed(2)));
        assert!(matches!(
            &elem.node,
            SNode::Array {
                len: AL::Fixed(3),
                ..
            }
        ));
    }

    #[test]
    fn pointer_binding_in_declarators() {
        // int *a[3] is an array of 3 pointers to int.
        let uni = parse_c("struct P { int *a[3]; };").unwrap();
        let SNode::Struct(fs) = &uni.get("P").unwrap().ty.node else {
            panic!()
        };
        let SNode::Array { elem, len } = &fs[0].ty.node else {
            panic!()
        };
        assert!(matches!(len, AL::Fixed(3)));
        assert!(matches!(&elem.node, SNode::Pointer(_)));
    }

    #[test]
    fn cxx_class_with_methods_and_inheritance() {
        let uni = parse_cxx(
            "class Document : public Node {\n\
             public:\n\
               virtual int length() const = 0;\n\
               void append(const char *text);\n\
               Document(int kind);\n\
               ~Document();\n\
             private:\n\
               int kind_;\n\
               void internal_helper();\n\
             };",
        )
        .unwrap();
        let SNode::Class {
            fields,
            methods,
            extends,
        } = &uni.get("Document").unwrap().ty.node
        else {
            panic!()
        };
        assert_eq!(extends.as_deref(), Some("Node"));
        assert_eq!(fields.len(), 1, "private field captured for layout");
        let names: Vec<&str> = methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["length", "append"], "public methods only");
    }

    #[test]
    fn cxx_references_are_non_null_pointers() {
        let uni = parse_cxx("class R { public: void take(Point &p); };").unwrap();
        let SNode::Class { methods, .. } = &uni.get("R").unwrap().ty.node else {
            panic!()
        };
        let ty = &methods[0].sig.params[0].ty;
        assert!(matches!(ty.node, SNode::Pointer(_)));
        assert!(ty.ann.non_null, "C++ references cannot be null");
    }

    #[test]
    fn qualified_base_class_names() {
        let uni = parse_cxx("class V : public std::vector { public: int size(); };").unwrap();
        let SNode::Class { extends, .. } = &uni.get("V").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(extends.as_deref(), Some("std.vector"));
    }

    #[test]
    fn void_parameter_list_and_unnamed_params() {
        let uni = parse_c("int rand_value(void);\nint add(int, int);").unwrap();
        let SNode::Function(sig) = &uni.get("rand_value").unwrap().ty.node else {
            panic!()
        };
        assert!(sig.params.is_empty());
        let SNode::Function(sig) = &uni.get("add").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(sig.params[0].name, "arg0");
        assert_eq!(sig.params[1].name, "arg1");
    }

    #[test]
    fn struct_tag_references() {
        let uni = parse_c(
            "struct Point { float x; float y; };\n\
             void draw(struct Point *p);",
        )
        .unwrap();
        let SNode::Function(sig) = &uni.get("draw").unwrap().ty.node else {
            panic!()
        };
        let SNode::Pointer(t) = &sig.params[0].ty.node else {
            panic!()
        };
        assert!(matches!(&t.node, SNode::Named(n) if n == "Point"));
    }

    #[test]
    fn errors_report_lines() {
        let err = parse_c("typedef ;").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse_c("struct X { int a }\n").unwrap_err();
        assert!(err.line >= 1);
        assert!(parse_c("void f(int x;").is_err());
        assert!(parse_c("enum E { };").is_err());
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let err = parse_c("typedef int a;\ntypedef float a;").unwrap_err();
        assert!(err.to_string().contains("already loaded"));
    }

    #[test]
    fn variables_are_skipped() {
        let uni = parse_c("int global_counter;\ntypedef int tick_t;").unwrap();
        assert!(uni.get("global_counter").is_none());
        assert!(uni.get("tick_t").is_some());
    }
}
