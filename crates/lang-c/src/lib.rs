//! The C/C++ declaration frontend.
//!
//! The paper's prototype reused "a modified version of an IBM compiler"
//! as its C/C++ parser; Mockingbird only consumes *declarations* (types
//! and signatures), never function bodies, so this crate implements a
//! declaration-level parser from scratch (see DESIGN.md §2 for the
//! substitution rationale). Supported constructs:
//!
//! - `typedef` (including array and pointer declarators, e.g. the
//!   paper's `typedef float point[2];`),
//! - `struct`, `union`, `enum` definitions,
//! - free function declarations (`void fitter(point pts[], int count,
//!   point *start, point *end);`),
//! - C++ `class` declarations with fields and method signatures,
//!   visibility sections, single inheritance, `virtual`/pure-virtual
//!   markers, and C++ references (`T&`),
//! - `//` and `/* */` comments and preprocessor lines (skipped).
//!
//! The output is a [`Universe`] of [`Decl`]s ready for annotation and
//! lowering.
//!
//! # Example
//!
//! ```
//! use mockingbird_lang_c::parse_c;
//!
//! let uni = parse_c(
//!     "typedef float point[2];
//!      void fitter(point pts[], int count, point *start, point *end);",
//! )?;
//! assert!(uni.get("point").is_some());
//! assert!(uni.get("fitter").is_some());
//! # Ok::<(), mockingbird_lang_c::CParseError>(())
//! ```
//!
//! [`Universe`]: mockingbird_stype::Universe
//! [`Decl`]: mockingbird_stype::Decl

pub mod lexer;
pub mod parser;

pub use lexer::{lex, CParseError, Tok};
pub use parser::{parse_c, parse_cxx};
