//! Tokeniser for C/C++ declarations.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal.
    Num(i128),
    /// A punctuation symbol (`*`, `::`, `[`, ...).
    Sym(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CParseError {
    /// 1-based source line of the error.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CParseError {}

/// A token plus the line it started on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

const SYMBOLS2: [&str; 3] = ["::", "->", "=="];
const SYMBOLS1: &str = "*&()[]{};,:<>=~#";

/// Tokenises C/C++ declaration source. Comments and preprocessor lines
/// are skipped.
///
/// # Errors
///
/// Returns [`CParseError`] on unterminated block comments or characters
/// outside the declaration subset.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Preprocessor lines.
        if c == '#' && out.last().map(|s: &Spanned| s.line) != Some(line) {
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let start_line = line;
            i += 2;
            loop {
                if i + 1 >= n {
                    return Err(CParseError {
                        line: start_line,
                        message: "unterminated block comment".into(),
                    });
                }
                if bytes[i] == '\n' {
                    line += 1;
                }
                if bytes[i] == '*' && bytes[i + 1] == '/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            out.push(Spanned {
                tok: Tok::Ident(bytes[start..i].iter().collect()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == 'x') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let value = if let Some(hex) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
                i128::from_str_radix(hex, 16)
            } else {
                text.trim_end_matches(['u', 'U', 'l', 'L']).parse()
            }
            .map_err(|_| CParseError {
                line,
                message: format!("bad integer literal `{text}`"),
            })?;
            out.push(Spanned {
                tok: Tok::Num(value),
                line,
            });
            continue;
        }
        // Two-char symbols.
        if i + 1 < n {
            let pair: String = [bytes[i], bytes[i + 1]].iter().collect();
            if let Some(&sym) = SYMBOLS2.iter().find(|&&s| s == pair) {
                out.push(Spanned {
                    tok: Tok::Sym(sym),
                    line,
                });
                i += 2;
                continue;
            }
        }
        if let Some(pos) = SYMBOLS1.find(c) {
            // Map back to a 'static str slice of the symbol table.
            let sym = &SYMBOLS1[pos..pos + c.len_utf8()];
            out.push(Spanned {
                tok: Tok::Sym(sym),
                line,
            });
            i += 1;
            continue;
        }
        return Err(CParseError {
            line,
            message: format!("unexpected character `{c}` in declaration"),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("typedef float point[2];"),
            vec![
                Tok::Ident("typedef".into()),
                Tok::Ident("float".into()),
                Tok::Ident("point".into()),
                Tok::Sym("["),
                Tok::Num(2),
                Tok::Sym("]"),
                Tok::Sym(";"),
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let t = toks("#include <stdio.h>\n// line comment\n/* block\ncomment */ int x;");
        assert_eq!(
            t,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Sym(";")
            ]
        );
    }

    #[test]
    fn two_char_symbols() {
        assert_eq!(
            toks("std::vector"),
            vec![
                Tok::Ident("std".into()),
                Tok::Sym("::"),
                Tok::Ident("vector".into()),
            ]
        );
    }

    #[test]
    fn numbers_with_suffixes_and_hex() {
        assert_eq!(toks("10UL")[0], Tok::Num(10));
        assert_eq!(toks("0x10")[0], Tok::Num(16));
    }

    #[test]
    fn line_numbers_tracked() {
        let t = lex("int\nx;").unwrap();
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
    }

    #[test]
    fn unterminated_comment_errors() {
        let err = lex("/* oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn bad_character_errors() {
        assert!(lex("int x @").is_err());
    }
}
