//! CORBA IDL lexer and recursive-descent parser.

use std::collections::HashSet;
use std::fmt;

use mockingbird_stype::ann::Direction;
use mockingbird_stype::ast::{Decl, Field, Lang, Method, Param, SNode, Signature, Stype, Universe};

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for IdlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IDL parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IdlParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i128),
    Sym(String),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Sym(s) => write!(f, "{s}"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, IdlParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '#' || (c == '/' && chars.get(i + 1) == Some(&'/')) {
            // `#` preprocessor lines and `//` comments both run to EOL.
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = line;
            i += 2;
            loop {
                if i + 1 >= chars.len() {
                    return Err(IdlParseError {
                        line: start,
                        message: "unterminated comment".into(),
                    });
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                if chars[i] == '*' && chars[i + 1] == '/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push((Tok::Ident(chars[start..i].iter().collect()), line));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.push((
                Tok::Num(text.parse().map_err(|_| IdlParseError {
                    line,
                    message: format!("bad number `{text}`"),
                })?),
                line,
            ));
        } else if c == ':' && chars.get(i + 1) == Some(&':') {
            out.push((Tok::Sym("::".into()), line));
            i += 2;
        } else if "{}();,<>[]:=".contains(c) {
            out.push((Tok::Sym(c.to_string()), line));
            i += 1;
        } else {
            return Err(IdlParseError {
                line,
                message: format!("unexpected character `{c}`"),
            });
        }
    }
    Ok(out)
}

/// Parses CORBA IDL source into a universe of Stype declarations.
///
/// # Errors
///
/// Returns [`IdlParseError`] with line information on syntax outside the
/// supported subset.
pub fn parse_idl(src: &str) -> Result<Universe, IdlParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
        uni: Universe::new(),
        scope: Vec::new(),
        interfaces: HashSet::new(),
        declared: HashSet::new(),
    };
    while p.peek().is_some() {
        p.definition()?;
    }
    Ok(p.uni)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    uni: Universe,
    scope: Vec<String>,
    /// Fully-qualified names known to be interfaces (references to these
    /// become nullable object references).
    interfaces: HashSet<String>,
    declared: HashSet<String>,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.1)
            .unwrap_or(0)
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, IdlParseError> {
        Err(IdlParseError {
            line: self.line(),
            message: m.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.0.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(x)) if x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), IdlParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            self.err(format!(
                "expected `{s}`, found `{}`",
                self.peek().map(|t| t.to_string()).unwrap_or("<eof>".into())
            ))
        }
    }

    fn eat_kw(&mut self, w: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(x)) if x == w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, IdlParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!(
                "expected identifier, found `{}`",
                other.map(|t| t.to_string()).unwrap_or("<eof>".into())
            )),
        }
    }

    fn qualify(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.scope.join("."), name)
        }
    }

    /// Resolves a (possibly `::`-qualified) reference against enclosing
    /// scopes, innermost first.
    fn resolve(&self, name: &str) -> String {
        for depth in (0..=self.scope.len()).rev() {
            let prefix = self.scope[..depth].join(".");
            let candidate = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            };
            if self.declared.contains(&candidate) {
                return candidate;
            }
        }
        name.to_string()
    }

    fn insert(&mut self, name: String, ty: Stype) -> Result<(), IdlParseError> {
        let line = self.line();
        self.declared.insert(name.clone());
        self.uni
            .insert(Decl::new(name, Lang::Idl, ty))
            .map_err(|e| IdlParseError {
                line,
                message: e.to_string(),
            })
    }

    fn definition(&mut self) -> Result<(), IdlParseError> {
        if self.eat_kw("module") {
            let name = self.expect_ident()?;
            self.expect_sym("{")?;
            self.scope.push(name);
            while !self.eat_sym("}") {
                if self.peek().is_none() {
                    return self.err("unterminated module");
                }
                self.definition()?;
            }
            self.scope.pop();
            self.expect_sym(";")?;
            return Ok(());
        }
        if self.eat_kw("interface") {
            return self.interface();
        }
        self.type_dcl()?;
        self.expect_sym(";")
    }

    fn interface(&mut self) -> Result<(), IdlParseError> {
        let name = self.expect_ident()?;
        let qname = self.qualify(&name);
        // Forward declaration: `interface X;`
        if self.eat_sym(";") {
            self.interfaces.insert(qname.clone());
            self.declared.insert(qname);
            return Ok(());
        }
        let mut extends = Vec::new();
        if self.eat_sym(":") {
            loop {
                let base = self.scoped_name()?;
                extends.push(self.resolve(&base));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        self.expect_sym("{")?;
        self.interfaces.insert(qname.clone());
        self.declared.insert(qname.clone());
        self.scope.push(name);
        let mut methods = Vec::new();
        while !self.eat_sym("}") {
            if self.peek().is_none() {
                return self.err("unterminated interface body");
            }
            if matches!(self.peek(), Some(Tok::Ident(k)) if k == "typedef" || k == "struct" || k == "union" || k == "enum")
            {
                self.type_dcl()?;
                self.expect_sym(";")?;
                continue;
            }
            methods.push(self.operation()?);
        }
        self.scope.pop();
        self.expect_sym(";")?;
        // Interface inheritance: splice in the methods of resolved bases.
        let mut all_methods = Vec::new();
        for base in &extends {
            if let Some(d) = self.uni.get(base) {
                if let SNode::Interface { methods: bm, .. } = &d.ty.node {
                    all_methods.extend(bm.iter().cloned());
                }
            }
        }
        all_methods.extend(methods);
        let mut ty = Stype::interface(all_methods);
        if let SNode::Interface { extends: e, .. } = &mut ty.node {
            *e = extends;
        }
        self.insert(qname, ty)
    }

    fn operation(&mut self) -> Result<Method, IdlParseError> {
        let _ = self.eat_kw("oneway");
        let ret = self.type_spec()?;
        let name = self.expect_ident()?;
        self.expect_sym("(")?;
        let mut params = Vec::new();
        if !self.eat_sym(")") {
            loop {
                let dir = if self.eat_kw("in") {
                    Direction::In
                } else if self.eat_kw("out") {
                    Direction::Out
                } else if self.eat_kw("inout") {
                    Direction::InOut
                } else {
                    return self.err("IDL parameter requires a direction (in/out/inout)");
                };
                let ty = self.type_spec()?.with_ann(|a| a.direction = Some(dir));
                let pname = self.expect_ident()?;
                params.push(Param::new(pname, ty));
                if self.eat_sym(",") {
                    continue;
                }
                self.expect_sym(")")?;
                break;
            }
        }
        // raises(...) clauses become declared exceptions on the
        // signature (paper §6's exception support).
        let mut throws = Vec::new();
        if self.eat_kw("raises") {
            self.expect_sym("(")?;
            loop {
                let raw = self.scoped_name()?;
                throws.push(Stype::named(self.resolve(&raw)));
                if self.eat_sym(",") {
                    continue;
                }
                self.expect_sym(")")?;
                break;
            }
        }
        self.expect_sym(";")?;
        Ok(Method::new(
            name,
            Signature::new(params, ret).with_throws(throws),
        ))
    }

    fn type_dcl(&mut self) -> Result<(), IdlParseError> {
        if self.eat_kw("typedef") {
            let base = self.type_spec()?;
            let name = self.expect_ident()?;
            let mut dims = Vec::new();
            while self.eat_sym("[") {
                match self.bump() {
                    Some(Tok::Num(n)) if n > 0 => dims.push(n as usize),
                    _ => return self.err("expected positive array dimension"),
                }
                self.expect_sym("]")?;
            }
            let mut ty = base;
            for &d in dims.iter().rev() {
                ty = Stype::array_fixed(ty, d);
            }
            let qname = self.qualify(&name);
            return self.insert(qname, ty);
        }
        if self.eat_kw("exception") {
            // IDL exceptions are struct-shaped user exceptions; they
            // lower like structs and appear as reply alternatives.
            let name = self.expect_ident()?;
            self.expect_sym("{")?;
            let mut fields = Vec::new();
            while !self.eat_sym("}") {
                if self.peek().is_none() {
                    return self.err("unterminated exception");
                }
                let ty = self.type_spec()?;
                loop {
                    let fname = self.expect_ident()?;
                    fields.push(Field::new(fname, ty.clone()));
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(";")?;
            }
            let qname = self.qualify(&name);
            return self.insert(qname, Stype::struct_of(fields));
        }
        if self.eat_kw("struct") {
            let name = self.expect_ident()?;
            self.expect_sym("{")?;
            let mut fields = Vec::new();
            while !self.eat_sym("}") {
                if self.peek().is_none() {
                    return self.err("unterminated struct");
                }
                let ty = self.type_spec()?;
                loop {
                    let fname = self.expect_ident()?;
                    fields.push(Field::new(fname, ty.clone()));
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(";")?;
            }
            let qname = self.qualify(&name);
            return self.insert(qname, Stype::struct_of(fields));
        }
        if self.eat_kw("union") {
            let name = self.expect_ident()?;
            if !self.eat_kw("switch") {
                return self.err("expected `switch` after union name");
            }
            self.expect_sym("(")?;
            let _discriminator = self.type_spec()?;
            self.expect_sym(")")?;
            self.expect_sym("{")?;
            let mut arms = Vec::new();
            while !self.eat_sym("}") {
                if self.eat_kw("case") {
                    // Case label: integer or enumerator identifier.
                    match self.bump() {
                        Some(Tok::Num(_)) | Some(Tok::Ident(_)) => {}
                        _ => return self.err("expected case label"),
                    }
                    self.expect_sym(":")?;
                } else if self.eat_kw("default") {
                    self.expect_sym(":")?;
                } else {
                    return self.err("expected `case` or `default` in union body");
                }
                let ty = self.type_spec()?;
                let fname = self.expect_ident()?;
                self.expect_sym(";")?;
                arms.push(Field::new(fname, ty));
            }
            if arms.is_empty() {
                return self.err("union must have at least one arm");
            }
            let qname = self.qualify(&name);
            return self.insert(qname, Stype::union_of(arms));
        }
        if self.eat_kw("enum") {
            let name = self.expect_ident()?;
            self.expect_sym("{")?;
            let mut members = Vec::new();
            while !self.eat_sym("}") {
                members.push(self.expect_ident()?);
                if !self.eat_sym(",") && !matches!(self.peek(), Some(Tok::Sym(s)) if s == "}") {
                    return self.err("expected `,` or `}` in enum");
                }
            }
            if members.is_empty() {
                return self.err("enum must have at least one member");
            }
            let qname = self.qualify(&name);
            return self.insert(qname, Stype::enum_of(members));
        }
        self.err("expected a definition (module/interface/typedef/struct/union/enum)")
    }

    fn scoped_name(&mut self) -> Result<String, IdlParseError> {
        let mut name = self.expect_ident()?;
        while self.eat_sym("::") {
            name.push('.');
            name.push_str(&self.expect_ident()?);
        }
        Ok(name)
    }

    fn type_spec(&mut self) -> Result<Stype, IdlParseError> {
        if self.eat_kw("sequence") {
            self.expect_sym("<")?;
            let elem = self.type_spec()?;
            // Bounded sequences: sequence<T, N> — the bound is ignored
            // structurally (still an indefinite ordered collection).
            if self.eat_sym(",") {
                match self.bump() {
                    Some(Tok::Num(_)) => {}
                    _ => return self.err("expected sequence bound"),
                }
            }
            self.expect_sym(">")?;
            return Ok(Stype::sequence(elem));
        }
        if self.eat_kw("string") || self.eat_kw("wstring") {
            // Bounded strings: string<N>.
            if self.eat_sym("<") {
                match self.bump() {
                    Some(Tok::Num(_)) => {}
                    _ => return self.err("expected string bound"),
                }
                self.expect_sym(">")?;
            }
            return Ok(Stype::string());
        }
        if self.eat_kw("unsigned") {
            if self.eat_kw("short") {
                return Ok(Stype::u16());
            }
            if self.eat_kw("long") {
                if self.eat_kw("long") {
                    return Ok(Stype::u64());
                }
                return Ok(Stype::u32());
            }
            return self.err("expected `short` or `long` after `unsigned`");
        }
        if self.eat_kw("short") {
            return Ok(Stype::i16());
        }
        if self.eat_kw("long") {
            if self.eat_kw("long") {
                return Ok(Stype::i64());
            }
            if self.eat_kw("double") {
                return Ok(Stype::f64());
            }
            return Ok(Stype::i32());
        }
        if self.eat_kw("float") {
            return Ok(Stype::f32());
        }
        if self.eat_kw("double") {
            return Ok(Stype::f64());
        }
        if self.eat_kw("char") {
            return Ok(Stype::char8());
        }
        if self.eat_kw("wchar") {
            return Ok(Stype::char16());
        }
        if self.eat_kw("boolean") {
            return Ok(Stype::boolean());
        }
        if self.eat_kw("octet") {
            return Ok(Stype::u8());
        }
        if self.eat_kw("any") {
            return Ok(Stype::any());
        }
        if self.eat_kw("void") {
            return Ok(Stype::void());
        }
        if self.eat_kw("Object") {
            return Ok(Stype::any());
        }
        if matches!(self.peek(), Some(Tok::Ident(_))) {
            let raw = self.scoped_name()?;
            let resolved = self.resolve(&raw);
            if self.interfaces.contains(&resolved) {
                // Object references are nullable (nil) by default.
                return Ok(Stype::pointer(Stype::named(resolved)));
            }
            return Ok(Stype::named(resolved));
        }
        self.err(format!(
            "expected a type, found `{}`",
            self.peek().map(|t| t.to_string()).unwrap_or("<eof>".into())
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_stype::ast::ArrayLen;

    const FIG3A: &str = "
        interface JavaFriendly {
          struct Point { float x; float y; };
          struct Line { Point start; Point end; };
          typedef sequence<Point> PointVector;
          Line fitter(in PointVector pts);
        };";

    const FIG3B: &str = "
        interface CFriendly {
          typedef float Point[2];
          typedef sequence<Point> pointseq;
          void fitter(in pointseq pts, in long count,
                      out Point start, out Point end);
        };";

    #[test]
    fn figure_3a_java_friendly() {
        let uni = parse_idl(FIG3A).unwrap();
        let SNode::Struct(fs) = &uni.get("JavaFriendly.Point").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(fs.len(), 2);
        let SNode::Struct(fs) = &uni.get("JavaFriendly.Line").unwrap().ty.node else {
            panic!()
        };
        assert!(matches!(&fs[0].ty.node, SNode::Named(n) if n == "JavaFriendly.Point"));
        let SNode::Sequence(e) = &uni.get("JavaFriendly.PointVector").unwrap().ty.node else {
            panic!()
        };
        assert!(matches!(&e.node, SNode::Named(n) if n == "JavaFriendly.Point"));
        let SNode::Interface { methods, .. } = &uni.get("JavaFriendly").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(methods.len(), 1);
        assert_eq!(methods[0].name, "fitter");
        assert_eq!(
            methods[0].sig.params[0].ty.ann.direction,
            Some(Direction::In)
        );
    }

    #[test]
    fn figure_3b_c_friendly() {
        let uni = parse_idl(FIG3B).unwrap();
        let point = uni.get("CFriendly.Point").unwrap();
        assert!(matches!(
            &point.ty.node,
            SNode::Array {
                len: ArrayLen::Fixed(2),
                ..
            }
        ));
        let SNode::Interface { methods, .. } = &uni.get("CFriendly").unwrap().ty.node else {
            panic!()
        };
        let fitter = &methods[0];
        assert_eq!(fitter.sig.params.len(), 4);
        assert_eq!(fitter.sig.params[2].ty.ann.direction, Some(Direction::Out));
        assert_eq!(fitter.sig.params[3].ty.ann.direction, Some(Direction::Out));
    }

    #[test]
    fn modules_qualify_names() {
        let uni = parse_idl(
            "module Geometry {
               struct Point { float x; float y; };
               module Inner { typedef sequence<Point> Points; };
             };",
        )
        .unwrap();
        assert!(uni.get("Geometry.Point").is_some());
        let SNode::Sequence(e) = &uni.get("Geometry.Inner.Points").unwrap().ty.node else {
            panic!()
        };
        assert!(
            matches!(&e.node, SNode::Named(n) if n == "Geometry.Point"),
            "reference resolves outward through scopes"
        );
    }

    #[test]
    fn unions_and_enums() {
        let uni = parse_idl(
            "enum Shape { CIRCLE, SQUARE };
             union Value switch (long) {
               case 0: long i;
               case 1: float f;
               default: boolean b;
             };",
        )
        .unwrap();
        let SNode::Enum(ms) = &uni.get("Shape").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(ms.len(), 2);
        let SNode::Union(arms) = &uni.get("Value").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(arms.len(), 3);
    }

    #[test]
    fn interface_references_are_nullable_objects() {
        let uni = parse_idl(
            "interface Callback { void done(in long status); };
             interface Job { void run(in Callback cb); };",
        )
        .unwrap();
        let SNode::Interface { methods, .. } = &uni.get("Job").unwrap().ty.node else {
            panic!()
        };
        let ty = &methods[0].sig.params[0].ty;
        assert!(
            matches!(&ty.node, SNode::Pointer(inner) if matches!(&inner.node, SNode::Named(n) if n == "Callback"))
        );
    }

    #[test]
    fn interface_inheritance_splices_methods() {
        let uni = parse_idl(
            "interface Base { void ping(); };
             interface Derived : Base { void pong(); };",
        )
        .unwrap();
        let SNode::Interface { methods, extends } = &uni.get("Derived").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(extends, &vec!["Base".to_string()]);
        let names: Vec<&str> = methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["ping", "pong"]);
    }

    #[test]
    fn primitive_vocabulary() {
        let uni = parse_idl(
            "struct All {
               octet o; boolean b; char c; wchar w;
               short s; unsigned short us;
               long l; unsigned long ul;
               long long ll; unsigned long long ull;
               float f; double d; long double ld;
               string str; wstring wstr; string<16> bounded;
               any a;
             };",
        )
        .unwrap();
        let SNode::Struct(fs) = &uni.get("All").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(fs.len(), 17);
    }

    #[test]
    fn oneway_bounded_sequence_and_raises() {
        let uni = parse_idl(
            "interface Log {
               oneway void append(in sequence<octet, 1024> data);
               void flush() raises (IOError);
             };",
        )
        .unwrap();
        let SNode::Interface { methods, .. } = &uni.get("Log").unwrap().ty.node else {
            panic!()
        };
        assert_eq!(methods.len(), 2);
    }

    #[test]
    fn errors_report_lines_and_reasons() {
        let err = parse_idl("interface X { void f(long a); };").unwrap_err();
        assert!(err.message.contains("direction"));
        assert!(parse_idl("union U { case 0: long x; };").is_err());
        assert!(parse_idl("enum E { };").is_err());
        assert!(parse_idl("module M { struct S { float x; };").is_err());
        let err = parse_idl("struct S { float x; };\nstruct S { float y; };").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
