//! The CORBA IDL frontend.
//!
//! Parses the OMG CORBA 2.0 IDL subset the paper exercises (modules,
//! interfaces with operations and in/out/inout parameters, structs,
//! discriminated unions, enums, typedefs, `sequence<T>`, arrays,
//! `string`/`wstring`, `any`) into Stype declarations.
//!
//! Names declared inside modules and interfaces are qualified with `.`
//! (`CFriendly.Point`); references resolve innermost-scope-first, the way
//! IDL scoped names do.
//!
//! # Example — the paper's Fig. 3(b) C-friendly interface
//!
//! ```
//! use mockingbird_lang_idl::parse_idl;
//!
//! let uni = parse_idl(
//!     "interface CFriendly {
//!        typedef float Point[2];
//!        typedef sequence<Point> pointseq;
//!        void fitter(in pointseq pts, in long count,
//!                    out Point start, out Point end);
//!      };",
//! )?;
//! assert!(uni.get("CFriendly").is_some());
//! assert!(uni.get("CFriendly.Point").is_some());
//! # Ok::<(), mockingbird_lang_idl::IdlParseError>(())
//! ```

pub mod parser;

pub use parser::{parse_idl, IdlParseError};
