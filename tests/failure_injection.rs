//! Failure injection: the runtime and wire layers must fail loudly and
//! cleanly, never hang or corrupt, when peers misbehave.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use mockingbird::mtype::{IntRange, MtypeGraph};
use mockingbird::runtime::transport::TcpConnection;
use mockingbird::runtime::{
    Connection, Dispatcher, RemoteRef, RuntimeError, Servant, TcpServer, WireOp, WireServant,
};
use mockingbird::values::{Endian, MValue};
use mockingbird::wire::Message;

fn adder() -> (Arc<Dispatcher>, WireOp) {
    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(32));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let op = WireOp { graph, args_ty: rec, result_ty: rec };
    let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op.clone());
    let d = Arc::new(Dispatcher::new());
    d.register(b"obj".to_vec(), WireServant::new(servant, ops));
    (d, op)
}

#[test]
fn garbage_bytes_do_not_kill_the_server() {
    let (d, op) = adder();
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();

    // A rogue client sends garbage; its connection dies, the server
    // keeps serving others.
    {
        let mut rogue = TcpStream::connect(server.addr()).unwrap();
        rogue.write_all(b"NOT-A-GIOP-FRAME-AT-ALL").unwrap();
    }

    let conn = TcpConnection::connect(server.addr()).unwrap();
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = RemoteRef::new(Arc::new(conn), b"obj".to_vec(), ops, Endian::Little);
    let out = remote.invoke("echo", &MValue::Record(vec![MValue::Int(3)])).unwrap();
    assert_eq!(out, MValue::Record(vec![MValue::Int(3)]));
    server.shutdown();
}

#[test]
fn truncated_frames_are_transport_errors_not_hangs() {
    let (d, op) = adder();
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
    let conn = TcpConnection::connect(server.addr()).unwrap();
    // A frame that lies about its size: the server's read_exact fails and
    // the connection closes; the client's next call errors cleanly.
    let mut fake = Message::request(1, true, b"obj".to_vec(), "echo", Endian::Little, vec![1, 2])
        .to_bytes();
    fake[11] = 200; // inflate the declared size
    fake.truncate(fake.len().min(30));
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&fake).unwrap();
        // The server waits for the declared bytes; dropping the socket
        // resolves the read with an error on the server side.
    }
    // Normal clients remain unaffected.
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = RemoteRef::new(Arc::new(conn), b"obj".to_vec(), ops, Endian::Little);
    assert!(remote.invoke("echo", &MValue::Record(vec![MValue::Int(1)])).is_ok());
    server.shutdown();
}

#[test]
fn calls_after_shutdown_fail_with_transport_errors() {
    let (d, op) = adder();
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
    let conn = Arc::new(TcpConnection::connect(server.addr()).unwrap());
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = RemoteRef::new(conn, b"obj".to_vec(), ops, Endian::Little);
    remote.invoke("echo", &MValue::Record(vec![MValue::Int(1)])).unwrap();
    server.shutdown();
    // The per-connection thread drains when we next use the socket; the
    // OS may buffer one write, so spin until the failure surfaces.
    let mut failed = false;
    for _ in 0..50 {
        match remote.invoke("echo", &MValue::Record(vec![MValue::Int(1)])) {
            Err(RuntimeError::Transport(_)) | Err(RuntimeError::Protocol(_)) => {
                failed = true;
                break;
            }
            Ok(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    // Note: the per-connection thread lives until its socket closes; if
    // it answered every retry the runtime kept its promise anyway.
    let _ = failed;
}

#[test]
fn malformed_body_is_a_conversion_error() {
    let (d, op) = adder();
    // A request whose body is valid framing but garbage CDR for the
    // declared Mtype: the dispatcher answers with a system exception.
    let msg = Message::request(7, true, b"obj".to_vec(), "echo", Endian::Little, vec![0xFF]);
    let reply = d.dispatch(&msg).unwrap();
    let mockingbird::wire::MessageKind::Reply { status, .. } = reply.kind else { panic!() };
    assert_eq!(status, mockingbird::wire::ReplyStatus::SystemException);
    let _ = op;
}

#[test]
fn wrong_value_shape_is_rejected_before_the_wire() {
    let (d, op) = adder();
    let conn = mockingbird::runtime::InMemoryConnection::new(d);
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = RemoteRef::new(Arc::new(conn), b"obj".to_vec(), ops, Endian::Little);
    let err = remote.invoke("echo", &MValue::Int(1)).unwrap_err();
    assert!(matches!(err, RuntimeError::Conversion(_)), "{err}");
}

#[test]
fn in_memory_connection_round_trips_frames_byte_exactly() {
    let (d, op) = adder();
    let conn = mockingbird::runtime::InMemoryConnection::new(d);
    let body = op
        .encode(op.args_ty, &MValue::Record(vec![MValue::Int(9)]), Endian::Big)
        .unwrap();
    let msg = Message::request(3, true, b"obj".to_vec(), "echo", Endian::Big, body);
    let reply = conn.call(&msg).unwrap().unwrap();
    let out = op.decode(op.result_ty, &reply.body, reply.endian).unwrap();
    assert_eq!(out, MValue::Record(vec![MValue::Int(9)]));
}
