//! Failure injection: the runtime and wire layers must fail loudly and
//! cleanly, never hang or corrupt, when peers misbehave.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mockingbird::mtype::{IntRange, MtypeGraph};
use mockingbird::runtime::transport::TcpConnection;
use mockingbird::runtime::{
    CallOptions, Connection, ConnectionPool, Dispatcher, MultiplexedConnection, RemoteRef,
    RetryPolicy, RuntimeError, Servant, TcpServer, WireOp, WireServant,
};
use mockingbird::values::{Endian, MValue};
use mockingbird::wire::Message;

fn adder() -> (Arc<Dispatcher>, WireOp) {
    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(32));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let op = WireOp::new(graph, rec, rec).idempotent();
    let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op.clone());
    let d = Arc::new(Dispatcher::new());
    d.register(b"obj".to_vec(), WireServant::new(servant, ops));
    (d, op)
}

#[test]
fn garbage_bytes_do_not_kill_the_server() {
    let (d, op) = adder();
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();

    // A rogue client sends garbage; its connection dies, the server
    // keeps serving others.
    {
        let mut rogue = TcpStream::connect(server.addr()).unwrap();
        rogue.write_all(b"NOT-A-GIOP-FRAME-AT-ALL").unwrap();
    }

    let conn = TcpConnection::connect(server.addr()).unwrap();
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = RemoteRef::new(Arc::new(conn), b"obj".to_vec(), ops, Endian::Little);
    let out = remote
        .invoke("echo", &MValue::Record(vec![MValue::Int(3)]))
        .unwrap();
    assert_eq!(out, MValue::Record(vec![MValue::Int(3)]));
    server.shutdown();
}

#[test]
fn truncated_frames_are_transport_errors_not_hangs() {
    let (d, op) = adder();
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
    let conn = TcpConnection::connect(server.addr()).unwrap();
    // A frame that lies about its size: the server's read_exact fails and
    // the connection closes; the client's next call errors cleanly.
    let mut fake =
        Message::request(1, true, b"obj".to_vec(), "echo", Endian::Little, vec![1, 2]).to_bytes();
    fake[11] = 200; // inflate the declared size
    fake.truncate(fake.len().min(30));
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&fake).unwrap();
        // The server waits for the declared bytes; dropping the socket
        // resolves the read with an error on the server side.
    }
    // Normal clients remain unaffected.
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = RemoteRef::new(Arc::new(conn), b"obj".to_vec(), ops, Endian::Little);
    assert!(remote
        .invoke("echo", &MValue::Record(vec![MValue::Int(1)]))
        .is_ok());
    server.shutdown();
}

#[test]
fn calls_after_shutdown_fail_with_transport_errors() {
    let (d, op) = adder();
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
    let conn = Arc::new(TcpConnection::connect(server.addr()).unwrap());
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = RemoteRef::new(conn, b"obj".to_vec(), ops, Endian::Little);
    remote
        .invoke("echo", &MValue::Record(vec![MValue::Int(1)]))
        .unwrap();
    server.shutdown();
    // The per-connection thread drains when we next use the socket; the
    // OS may buffer one write, so spin until the failure surfaces.
    let mut failed = false;
    for _ in 0..50 {
        match remote.invoke("echo", &MValue::Record(vec![MValue::Int(1)])) {
            Err(RuntimeError::Transport(_)) | Err(RuntimeError::Protocol(_)) => {
                failed = true;
                break;
            }
            Ok(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    // Note: the per-connection thread lives until its socket closes; if
    // it answered every retry the runtime kept its promise anyway.
    let _ = failed;
}

#[test]
fn malformed_body_is_a_conversion_error() {
    let (d, op) = adder();
    // A request whose body is valid framing but garbage CDR for the
    // declared Mtype: the dispatcher answers with a system exception.
    let msg = Message::request(7, true, b"obj".to_vec(), "echo", Endian::Little, vec![0xFF]);
    let reply = d.dispatch(&msg).unwrap();
    let mockingbird::wire::MessageKind::Reply { status, .. } = reply.kind else {
        panic!()
    };
    assert_eq!(status, mockingbird::wire::ReplyStatus::SystemException);
    let _ = op;
}

#[test]
fn wrong_value_shape_is_rejected_before_the_wire() {
    let (d, op) = adder();
    let conn = mockingbird::runtime::InMemoryConnection::new(d);
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = RemoteRef::new(Arc::new(conn), b"obj".to_vec(), ops, Endian::Little);
    let err = remote.invoke("echo", &MValue::Int(1)).unwrap_err();
    assert!(matches!(err, RuntimeError::Conversion(_)), "{err}");
}

#[test]
fn stalled_server_costs_one_deadline_not_a_hang() {
    // A server that accepts and reads but never replies: the client's
    // per-call deadline must fire; nothing may hang.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut sink = [0u8; 1024];
        // Swallow whatever arrives until the client hangs up.
        while let Ok(n) = sock.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    });

    let (_, op) = adder();
    let conn = MultiplexedConnection::connect(addr).unwrap();
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = RemoteRef::new(Arc::new(conn), b"obj".to_vec(), ops, Endian::Little)
        .with_options(CallOptions::new().with_deadline(Duration::from_millis(200)));

    let start = Instant::now();
    let err = remote
        .invoke("echo", &MValue::Record(vec![MValue::Int(1)]))
        .unwrap_err();
    let elapsed = start.elapsed();
    assert!(matches!(err, RuntimeError::Timeout(_)), "{err}");
    assert!(
        elapsed >= Duration::from_millis(150),
        "deadline respected: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "timed out promptly: {elapsed:?}"
    );

    // A second call fails the same way — the connection is still usable
    // for bookkeeping even though the server never answers.
    let err = remote
        .invoke("echo", &MValue::Record(vec![MValue::Int(2)]))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Timeout(_)), "{err}");

    drop(remote); // closes the socket; the stalled server sees EOF
    stall.join().unwrap();
}

#[test]
fn stalled_server_deadline_is_an_end_to_end_budget() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop.clone();
    let stall = std::thread::spawn(move || {
        let mut socks = Vec::new();
        // Keep accepting (retries may reconnect) but never reply.
        listener.set_nonblocking(true).ok();
        while !stop2.load(Ordering::SeqCst) {
            if let Ok((sock, _)) = listener.accept() {
                socks.push(sock);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    });

    let (_, op) = adder(); // echo is declared idempotent
    let pool = ConnectionPool::connect(addr, 1).unwrap();
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = RemoteRef::new(Arc::new(pool), b"obj".to_vec(), ops, Endian::Little).with_options(
        CallOptions::new()
            .with_deadline(Duration::from_millis(100))
            .with_retry(RetryPolicy {
                max_retries: 2,
                initial_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(10),
                jitter: false,
            }),
    );

    let start = Instant::now();
    let err = remote
        .invoke("echo", &MValue::Record(vec![MValue::Int(1)]))
        .unwrap_err();
    let elapsed = start.elapsed();
    // The deadline is an end-to-end budget shared by every attempt:
    // the first attempt consumes it all waiting on the stalled server,
    // and the retry fails fast with DeadlineExpired instead of being
    // granted a fresh 100ms of its own (the old per-attempt semantics
    // would have burned ~300ms here).
    assert!(matches!(err, RuntimeError::DeadlineExpired(_)), "{err}");
    assert!(
        elapsed >= Duration::from_millis(95),
        "the first attempt got the full budget: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(4),
        "still bounded: {elapsed:?}"
    );
    drop(remote);
    stop.store(true, Ordering::SeqCst);
    stall.join().unwrap();
}

#[test]
fn multi_client_stress_correlates_replies_over_one_pool() {
    let (d, op) = adder();
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
    let pool = Arc::new(ConnectionPool::connect(server.addr(), 2).unwrap());
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let remote = Arc::new(RemoteRef::new(pool, b"obj".to_vec(), ops, Endian::Little));

    let mismatches = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|t: i128| {
            let r = remote.clone();
            let bad = mismatches.clone();
            std::thread::spawn(move || {
                for k in 0..100i128 {
                    let payload = t * 1_000 + k;
                    let out = r
                        .invoke("echo", &MValue::Record(vec![MValue::Int(payload)]))
                        .unwrap();
                    if out != MValue::Record(vec![MValue::Int(payload)]) {
                        bad.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "every reply correlated to its own request"
    );
    server.shutdown();
}

#[test]
fn idempotent_calls_retry_through_transient_failures() {
    // A connection that fails the first two exchanges, then delegates.
    struct Flaky {
        inner: mockingbird::runtime::InMemoryConnection,
        failures_left: AtomicUsize,
    }
    impl Connection for Flaky {
        fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
            if self
                .failures_left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                return Err(RuntimeError::Transport("injected failure".into()));
            }
            self.inner.call(msg)
        }
    }

    let (d, op) = adder();
    let flaky = Flaky {
        inner: mockingbird::runtime::InMemoryConnection::new(d),
        failures_left: AtomicUsize::new(2),
    };
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op.clone());
    let remote = RemoteRef::new(Arc::new(flaky), b"obj".to_vec(), ops, Endian::Little)
        .with_options(CallOptions::new().with_retry(RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter: false,
        }));
    let out = remote
        .invoke("echo", &MValue::Record(vec![MValue::Int(11)]))
        .unwrap();
    assert_eq!(out, MValue::Record(vec![MValue::Int(11)]));
    assert!(
        remote.metrics().snapshot().retries >= 2,
        "both transient failures were retried"
    );

    // The same failure pattern on a *non*-idempotent operation fails
    // immediately: retries are opt-in per operation.
    let (d2, op2) = adder();
    let flaky2 = Flaky {
        inner: mockingbird::runtime::InMemoryConnection::new(d2),
        failures_left: AtomicUsize::new(1),
    };
    let mut nops = HashMap::new();
    let mut not_idempotent = op2;
    not_idempotent.idempotent = false;
    nops.insert("echo".to_string(), not_idempotent);
    let remote2 = RemoteRef::new(Arc::new(flaky2), b"obj".to_vec(), nops, Endian::Little)
        .with_options(CallOptions::new().with_retry(RetryPolicy::retries(3)));
    let err = remote2
        .invoke("echo", &MValue::Record(vec![MValue::Int(1)]))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Transport(_)), "{err}");
}

#[test]
fn in_memory_connection_round_trips_frames_byte_exactly() {
    let (d, op) = adder();
    let conn = mockingbird::runtime::InMemoryConnection::new(d);
    let body = op
        .encode(
            op.args_ty,
            &MValue::Record(vec![MValue::Int(9)]),
            Endian::Big,
        )
        .unwrap();
    let msg = Message::request(3, true, b"obj".to_vec(), "echo", Endian::Big, body);
    let reply = conn.call(&msg).unwrap().unwrap();
    let out = op.decode(op.result_ty, &reply.body, reply.endian).unwrap();
    assert_eq!(out, MValue::Record(vec![MValue::Int(9)]));
}
