//! Cross-crate property tests: random Mtypes and values driven through
//! the whole pipeline (comparer → plan → wire) must round-trip. Each
//! property runs over a deterministic stream of seeds so failures
//! replay exactly.

use mockingbird_rng::StdRng;
use std::sync::Arc;

use mockingbird::comparer::{Comparer, Mode, RuleSet};
use mockingbird::corpus::{isomorphic_variant, random_mtype, sample_value};
use mockingbird::mtype::MtypeGraph;
use mockingbird::plan::CoercionPlan;
use mockingbird::values::mvalue::typecheck;
use mockingbird::values::Endian;
use mockingbird::wire::{CdrReader, CdrWriter};

const CASES: u64 = 48;

/// Random type → isomorphic variant → plan → random value converts
/// forward, converts back, and the round trip is the identity.
#[test]
fn plan_round_trips_random_values() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MtypeGraph::new();
        let ty = random_mtype(&mut g, &mut rng, 3);
        let mut h = MtypeGraph::new();
        let var = isomorphic_variant(&g, ty, &mut h);
        let corr = Comparer::new(&g, &h)
            .compare(ty, var, Mode::Equivalence)
            .expect("isomorphic variants must match");
        let plan = CoercionPlan::new(&g, &h, corr, RuleSet::full(), Mode::Equivalence);
        for round in 0..4 {
            let _ = round;
            let v = sample_value(&g, ty, &mut rng, 3);
            typecheck(&g, ty, &v).unwrap();
            let converted = plan.convert(&v).unwrap();
            typecheck(&h, var, &converted)
                .unwrap_or_else(|e| panic!("converted value must inhabit the variant: {e}"));
            let back = plan.convert_back(&converted).unwrap();
            typecheck(&g, ty, &back).unwrap();
            // Duplicate (hash-consed) Choice alternatives are
            // structurally indistinguishable, so conversion may
            // canonicalise their indices; the round trip must reach a
            // fixpoint and preserve the converted image exactly.
            assert_eq!(plan.convert(&back).unwrap(), converted, "seed {seed}");
            let back2 = plan.convert_back(&converted).unwrap();
            assert_eq!(back2, back, "seed {seed}");
        }
    }
}

/// Random values survive CDR in both byte orders.
#[test]
fn cdr_round_trips_random_values() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MtypeGraph::new();
        let ty = random_mtype(&mut g, &mut rng, 3);
        let v = sample_value(&g, ty, &mut rng, 4);
        for endian in [Endian::Little, Endian::Big] {
            let mut w = CdrWriter::new(endian);
            w.put_value(&g, ty, &v).unwrap();
            let bytes = w.into_bytes();
            let mut r = CdrReader::new(&bytes, endian);
            assert_eq!(&r.get_value(&g, ty).unwrap(), &v, "seed {seed}");
            assert_eq!(r.remaining(), 0, "seed {seed}");
        }
    }
}

/// MBP is fully self-describing: encode/decode without the type.
#[test]
fn mbp_round_trips_random_values() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MtypeGraph::new();
        let ty = random_mtype(&mut g, &mut rng, 3);
        let v = sample_value(&g, ty, &mut rng, 4);
        let bytes = mockingbird::wire::mbp::encode(&v);
        assert_eq!(
            mockingbird::wire::mbp::decode(&bytes).unwrap(),
            v,
            "seed {seed}"
        );
    }
}

/// Conversion composes with marshalling: convert → encode → decode →
/// convert back is the identity.
#[test]
fn convert_then_wire_then_back() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MtypeGraph::new();
        let ty = random_mtype(&mut g, &mut rng, 2);
        let mut h = MtypeGraph::new();
        let var = isomorphic_variant(&g, ty, &mut h);
        let corr = Comparer::new(&g, &h)
            .compare(ty, var, Mode::Equivalence)
            .expect("isomorphic");
        let plan = Arc::new(CoercionPlan::new(
            &g,
            &h,
            corr,
            RuleSet::full(),
            Mode::Equivalence,
        ));
        let v = sample_value(&g, ty, &mut rng, 3);
        let wire_value = plan.convert(&v).unwrap();
        let mut w = CdrWriter::new(Endian::Big);
        w.put_value(&h, var, &wire_value).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, Endian::Big);
        let decoded = r.get_value(&h, var).unwrap();
        // CDR normalises Choice-chain lists into List values and the
        // plan canonicalises duplicate Choice alternatives; the round
        // trip must reach a fixpoint with the same wire image.
        let back = plan.convert_back(&decoded).unwrap();
        typecheck(&g, ty, &back).unwrap();
        let reconverted = plan.convert(&back).unwrap();
        let mut w2 = CdrWriter::new(Endian::Big);
        w2.put_value(&h, var, &reconverted).unwrap();
        assert_eq!(w2.into_bytes(), bytes, "seed {seed}");
    }
}

/// Strict (pure Amadio–Cardelli) accepts identical builds and the
/// full rules accept everything strict accepts.
#[test]
fn strict_is_a_subrelation_of_full() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MtypeGraph::new();
        let ty = random_mtype(&mut g, &mut rng, 3);
        let mut h = MtypeGraph::new();
        let mut rng2 = StdRng::seed_from_u64(seed);
        let ty2 = random_mtype(&mut h, &mut rng2, 3);
        let strict = Comparer::with_rules(&g, &h, RuleSet::strict()).equivalent(ty, ty2);
        assert!(strict, "same seed builds identical types (seed {seed})");
        assert!(Comparer::new(&g, &h).equivalent(ty, ty2), "seed {seed}");
    }
}
