//! E2: the Lotus Notes feasibility study (paper §5).
//!
//! "The full Notes API consists of several thousand methods, of which
//! this limited prototype covered a small, but representative, set of 30
//! classes. The feasibility of covering the complete API using
//! Mockingbird was demonstrated." The corpus reproduces the 30-class
//! subset; these tests demonstrate the same feasibility: every class
//! interface matches after scripted annotation and stubs adapt method
//! calls across the permuted method orderings.

use std::sync::Arc;

use mockingbird::comparer::{Comparer, Mode, RuleSet};
use mockingbird::corpus::notes::{notes_api, NOTES_CLASSES};
use mockingbird::mtype::MtypeGraph;
use mockingbird::plan::CoercionPlan;
use mockingbird::stubgen::InterfaceStub;
use mockingbird::stype::lower::Lowerer;
use mockingbird::stype::script::apply_script;
use mockingbird::values::MValue;

#[test]
fn all_thirty_classes_match_after_batch_annotation() {
    let mut pair = notes_api();
    apply_script(&mut pair.java, &pair.script).unwrap();
    let mut g = MtypeGraph::new();
    let mut matched = 0;
    for name in NOTES_CLASSES {
        let c = Lowerer::new(&pair.cxx, &mut g).lower_named(name).unwrap();
        let j = Lowerer::new(&pair.java, &mut g).lower_named(name).unwrap();
        assert!(
            Comparer::new(&g, &g)
                .compare(c, j, Mode::Equivalence)
                .is_ok(),
            "{name}"
        );
        matched += 1;
    }
    assert_eq!(matched, 30);
}

#[test]
fn interface_stub_adapts_a_permuted_method_table() {
    let mut pair = notes_api();
    apply_script(&mut pair.java, &pair.script).unwrap();
    let mut g = MtypeGraph::new();
    // NotesDateTime (index 10): methods in reverse order on the Java
    // side; the stub must map them back.
    let j = Lowerer::new(&pair.java, &mut g)
        .lower_named("NotesDateTime")
        .unwrap();
    let c = Lowerer::new(&pair.cxx, &mut g)
        .lower_named("NotesDateTime")
        .unwrap();
    let corr = Comparer::new(&g, &g)
        .compare(j, c, Mode::Equivalence)
        .unwrap();
    let plan = CoercionPlan::new(&g, &g, corr, RuleSet::full(), Mode::Equivalence);
    let stub = InterfaceStub::new(Arc::new(plan)).unwrap();
    assert!(stub.method_count() >= 3);
    // Every Java method maps to some distinct C method.
    let mut targets: Vec<usize> = (0..stub.method_count())
        .map(|i| stub.target_method(i).unwrap())
        .collect();
    targets.sort_unstable();
    targets.dedup();
    assert_eq!(targets.len(), stub.method_count(), "mapping is a bijection");

    // Drive one method through the stub: the corpus gives every class a
    // zero-argument void method (opN); adapt a call to it.
    let mut drove = false;
    for m in 0..stub.method_count() {
        let result = stub.call_method(m, &[], &|_right_m, _args| Ok(MValue::Record(vec![])));
        if let Ok(out) = result {
            if out == MValue::Record(vec![]) {
                drove = true;
                break;
            }
        }
    }
    assert!(drove, "at least one zero-argument void method adapts");
}

#[test]
fn unannotated_factory_methods_fail_then_succeed() {
    let pair = notes_api();
    let mut g = MtypeGraph::new();
    let c = Lowerer::new(&pair.cxx, &mut g)
        .lower_named("NotesSession")
        .unwrap();
    let j = Lowerer::new(&pair.java, &mut g)
        .lower_named("NotesSession")
        .unwrap();
    let err = Comparer::new(&g, &g)
        .compare(c, j, Mode::Equivalence)
        .unwrap_err();
    assert!(!err.reason.is_empty());

    let mut pair2 = notes_api();
    apply_script(&mut pair2.java, &pair2.script).unwrap();
    let mut g2 = MtypeGraph::new();
    let c2 = Lowerer::new(&pair2.cxx, &mut g2)
        .lower_named("NotesSession")
        .unwrap();
    let j2 = Lowerer::new(&pair2.java, &mut g2)
        .lower_named("NotesSession")
        .unwrap();
    assert!(Comparer::new(&g2, &g2)
        .compare(c2, j2, Mode::Equivalence)
        .is_ok());
}

#[test]
fn the_factory_chain_is_deep_but_terminates() {
    // NotesSession transitively references all 30 classes through its
    // factory chain; comparison must stay fast (coinduction, not
    // unfolding).
    let mut pair = notes_api();
    apply_script(&mut pair.java, &pair.script).unwrap();
    let mut g = MtypeGraph::new();
    let c = Lowerer::new(&pair.cxx, &mut g)
        .lower_named("NotesSession")
        .unwrap();
    let j = Lowerer::new(&pair.java, &mut g)
        .lower_named("NotesSession")
        .unwrap();
    let start = std::time::Instant::now();
    assert!(Comparer::new(&g, &g)
        .compare(c, j, Mode::Equivalence)
        .is_ok());
    assert!(
        start.elapsed().as_secs() < 5,
        "deep factory chains compare in bounded time"
    );
}
