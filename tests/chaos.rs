//! Chaos: the supervised runtime under deterministic fault injection.
//!
//! Every test that draws faults prints its seed; re-running with the
//! same seed replays the same schedule byte-for-byte, so any failure
//! here reproduces exactly.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mockingbird::mtype::{IntRange, MtypeGraph};
use mockingbird::runtime::dispatch::interface_fingerprint;
use mockingbird::runtime::transport::TcpConnection;
use mockingbird::runtime::{
    BreakerConfig, BreakerState, CallOptions, ChaosConnection, Connection, ConnectionPool,
    Connector, Dispatcher, HedgePolicy, InMemoryConnection, RemoteRef, RetryBudget, RetryPolicy,
    RuntimeError, Servant, ServerConfig, TcpServer, WireOp, WireServant,
};
use mockingbird::values::{Endian, MValue};
use mockingbird::wire::HandshakeInfo;

/// An idempotent echo servant and the op table a client needs to call
/// it. `delay` holds each dispatch for that long (server-side work).
fn echo_service(delay: Duration) -> (Arc<Dispatcher>, HashMap<String, WireOp>) {
    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let op = WireOp::new(graph, rec, rec).idempotent();
    let servant: Arc<dyn Servant> = Arc::new(move |_: &str, v: MValue| {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(v)
    });
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let d = Arc::new(Dispatcher::new());
    d.register(b"obj".to_vec(), WireServant::new(servant, ops.clone()));
    (d, ops)
}

fn payload(k: i128) -> MValue {
    MValue::Record(vec![MValue::Int(k)])
}

/// A loopback address whose port was just released: dials are refused.
fn refused_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);
    addr
}

#[test]
fn chaos_outcomes_replay_byte_for_byte_from_the_seed() {
    // The headline determinism property: for 64 seeds, two full runs of
    // the same call sequence produce identical client-visible outcomes
    // AND identical fault traces.
    for seed in 0..64u64 {
        let run = || {
            let (d, ops) = echo_service(Duration::ZERO);
            let chaos = Arc::new(ChaosConnection::with_fault_rate(
                Arc::new(InMemoryConnection::new(d)),
                seed,
                0.35,
            ));
            let remote =
                RemoteRef::new(chaos.clone(), b"obj".to_vec(), ops.clone(), Endian::Little);
            let outcomes: Vec<String> = (0..60)
                .map(|k| match remote.invoke("echo", &payload(k)) {
                    Ok(v) => format!("ok:{v:?}"),
                    Err(RuntimeError::Transport(m)) => format!("transport:{m}"),
                    Err(e) => format!("other:{e}"),
                })
                .collect();
            (outcomes, chaos.trace())
        };
        let (o1, t1) = run();
        let (o2, t2) = run();
        assert_eq!(o1, o2, "outcomes diverged; reproduce with seed={seed}");
        assert_eq!(t1, t2, "fault traces diverged; reproduce with seed={seed}");
    }
}

#[test]
fn twenty_percent_faults_with_breaker_and_hedging_stay_above_99_percent() {
    // The X7 acceptance bar: at a 20% injected fault rate, idempotent
    // calls through the supervised pool (breaker + retry + hedging)
    // succeed ≥99% of the time and NEVER return a wrong payload.
    let seed = 0x0C4A_0520u64;
    println!("chaos seed: {seed:#x}");
    let (d, ops) = echo_service(Duration::ZERO);
    // Faults are injected below the pool: the chaos wrapper inherits the
    // in-memory dispatcher's registry, while retries/hedges land on the
    // pool's own registry.
    let service_metrics = Arc::clone(d.metrics());
    let dials = Arc::new(AtomicU64::new(0));
    let connector: Connector = Arc::new(move |_| {
        // Each (re)dial gets its own schedule, offset by the dial
        // index, so a torn-down endpoint comes back with fresh faults.
        let n = dials.fetch_add(1, Ordering::SeqCst);
        Ok(Arc::new(ChaosConnection::with_fault_rate(
            Arc::new(InMemoryConnection::new(d.clone())),
            seed + n,
            0.20,
        )) as Arc<dyn Connection>)
    });
    let pool = ConnectionPool::builder(vec![
        "127.0.0.1:1".parse().unwrap(),
        "127.0.0.1:2".parse().unwrap(),
    ])
    .with_slots(1)
    .with_connector(connector)
    .build()
    .unwrap();
    let remote = RemoteRef::new(Arc::new(pool), b"obj".to_vec(), ops, Endian::Little).with_options(
        CallOptions::new()
            .with_retry(RetryPolicy {
                max_retries: 5,
                initial_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(2),
                jitter: true,
            })
            .with_hedge(HedgePolicy::After(Duration::from_millis(3))),
    );

    let total = 400;
    let mut ok = 0u32;
    for k in 0..total {
        match remote.invoke("echo", &payload(i128::from(k))) {
            Ok(v) => {
                assert_eq!(
                    v,
                    payload(i128::from(k)),
                    "WRONG PAYLOAD at call {k}; reproduce with seed={seed:#x}"
                );
                ok += 1;
            }
            Err(RuntimeError::Transport(_) | RuntimeError::Timeout(_)) => {}
            Err(e) => panic!("unexpected error class at call {k}: {e} (seed={seed:#x})"),
        }
    }
    let rate = f64::from(ok) / f64::from(total);
    assert!(
        rate >= 0.99,
        "success rate {rate:.3} below 0.99; reproduce with seed={seed:#x}"
    );
    assert!(
        service_metrics.snapshot().faults_injected > 0,
        "a 20% rate over {total} calls injects faults"
    );
    assert!(
        remote.metrics().snapshot().retries > 0,
        "retries drove the recovery"
    );
}

#[test]
fn version_skew_is_rejected_at_connect_time() {
    let (d, ops) = echo_service(Duration::ZERO);
    let server_info = HandshakeInfo::new(d.interface_fingerprint(), 7);
    let mut server = TcpServer::bind_with(
        "127.0.0.1:0",
        d,
        ServerConfig::default().with_handshake(server_info),
    )
    .unwrap();

    // A client compiled against a *different* interface: one extra op
    // changes the nominal fingerprint, and the handshake refuses it.
    let mut skewed = ops.clone();
    skewed.insert("evict".to_string(), ops["echo"].clone());
    let skewed_info = HandshakeInfo::new(interface_fingerprint(&skewed), 7);
    let Err(err) = TcpConnection::connect_with(server.addr(), Some(&skewed_info)) else {
        panic!("a skewed peer must not connect");
    };
    assert!(matches!(err, RuntimeError::VersionSkew(_)), "{err}");
    assert!(server.metrics().snapshot().handshake_rejects > 0);

    // The matching client is unaffected and calls fine.
    let good = HandshakeInfo::new(interface_fingerprint(&ops), 7);
    let conn = TcpConnection::connect_with(server.addr(), Some(&good)).unwrap();
    assert!(conn.fused_allowed());
    let remote = RemoteRef::new(Arc::new(conn), b"obj".to_vec(), ops, Endian::Little);
    assert_eq!(remote.invoke("echo", &payload(4)).unwrap(), payload(4));
    server.shutdown();
}

#[test]
fn rules_skew_demotes_to_the_interpretive_path_but_still_serves() {
    let (d, ops) = echo_service(Duration::ZERO);
    let fp = d.interface_fingerprint();
    let mut server = TcpServer::bind_with(
        "127.0.0.1:0",
        d,
        ServerConfig::default().with_handshake(HandshakeInfo::new(fp, 1)),
    )
    .unwrap();

    // Same interface, different coercion-rules fingerprint: the peer is
    // compatible on shapes, so the handshake demotes rather than
    // rejects — fused programs stay off, calls interpret.
    let conn =
        TcpConnection::connect_with(server.addr(), Some(&HandshakeInfo::new(fp, 2))).unwrap();
    assert!(!conn.fused_allowed(), "rules skew disables the fused plane");
    assert!(server.metrics().snapshot().handshake_fallbacks > 0);
    let remote = RemoteRef::new(Arc::new(conn), b"obj".to_vec(), ops, Endian::Little);
    for k in 0..5 {
        assert_eq!(remote.invoke("echo", &payload(k)).unwrap(), payload(k));
    }
    server.shutdown();
}

#[test]
fn overload_sheds_are_typed_and_retries_ride_them_out() {
    // A deliberately tiny server: one worker, a one-deep queue, and a
    // servant that holds each dispatch 20 ms. A burst must overflow.
    let (d, ops) = echo_service(Duration::from_millis(20));
    let mut server = TcpServer::bind_with(
        "127.0.0.1:0",
        d,
        ServerConfig {
            max_queue: 1,
            max_in_flight: 2,
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Burst WITHOUT retry: some calls are shed with a typed error.
    let pool = Arc::new(ConnectionPool::connect(server.addr(), 2).unwrap());
    let remote = Arc::new(RemoteRef::new(pool, b"obj".to_vec(), ops, Endian::Little));
    let handles: Vec<_> = (0..12)
        .map(|k: i128| {
            let r = remote.clone();
            std::thread::spawn(move || match r.invoke("echo", &payload(k)) {
                Ok(v) => {
                    assert_eq!(v, payload(k), "shed pressure must never corrupt replies");
                    0u32
                }
                Err(RuntimeError::Overloaded(_)) => 1,
                Err(e) => panic!("unexpected error class: {e}"),
            })
        })
        .collect();
    let shed: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(shed > 0, "a 12-call burst into a 1-worker server sheds");
    assert!(
        server.metrics().snapshot().sheds > 0,
        "server counted its sheds"
    );
    assert!(
        remote.metrics().snapshot().overloads > 0,
        "clients saw typed sheds"
    );

    // The same burst WITH retry: every call eventually lands.
    let retrying = remote.clone();
    let handles: Vec<_> = (100..112)
        .map(|k: i128| {
            let r = retrying.clone();
            std::thread::spawn(move || {
                let opts = CallOptions::new().with_retry(RetryPolicy {
                    max_retries: 10,
                    initial_backoff: Duration::from_millis(10),
                    max_backoff: Duration::from_millis(60),
                    jitter: true,
                });
                let v = r.invoke_with("echo", &payload(k), &opts).unwrap();
                assert_eq!(v, payload(k));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn breaker_quarantines_a_dead_endpoint_while_the_live_one_serves() {
    let (d, ops) = echo_service(Duration::ZERO);
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
    let dead = refused_addr();

    let pool = ConnectionPool::builder(vec![dead, server.addr()])
        .with_slots(1)
        .with_breaker(BreakerConfig {
            consecutive_failures: 3,
            cooldown: Duration::from_secs(30),
            ..BreakerConfig::default()
        })
        .build()
        .unwrap();
    let pool = Arc::new(pool);
    let remote = RemoteRef::new(pool.clone(), b"obj".to_vec(), ops, Endian::Little).with_options(
        CallOptions::new().with_retry(RetryPolicy {
            max_retries: 4,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter: false,
        }),
    );

    // Retries route around the refused dials until the breaker trips;
    // from then on the dead endpoint is skipped outright.
    for k in 0..20 {
        assert_eq!(remote.invoke("echo", &payload(k)).unwrap(), payload(k));
    }
    assert_eq!(pool.breaker_state(0), BreakerState::Open);
    assert_eq!(pool.breaker_state(1), BreakerState::Closed);
    assert!(pool.metrics().snapshot().breaker_opens > 0);
    server.shutdown();
}

#[test]
fn hedging_routes_past_a_slow_endpoint() {
    let (slow_d, ops) = echo_service(Duration::from_millis(300));
    let (fast_d, _) = echo_service(Duration::ZERO);
    let mut slow = TcpServer::bind("127.0.0.1:0", slow_d).unwrap();
    let mut fast = TcpServer::bind("127.0.0.1:0", fast_d).unwrap();

    let pool = ConnectionPool::builder(vec![slow.addr(), fast.addr()])
        .with_slots(1)
        .build()
        .unwrap();
    let pool = Arc::new(pool);
    let remote = RemoteRef::new(pool.clone(), b"obj".to_vec(), ops, Endian::Little)
        .with_options(CallOptions::new().with_hedge(HedgePolicy::After(Duration::from_millis(10))));

    // Round-robin parks half the primaries on the 300 ms endpoint; the
    // hedge must cap every call well under that.
    for k in 0..8 {
        let start = Instant::now();
        assert_eq!(remote.invoke("echo", &payload(k)).unwrap(), payload(k));
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(200),
            "call {k} took {elapsed:?} despite hedging"
        );
    }
    let after = pool.metrics().snapshot();
    assert!(after.hedges_fired > 0, "hedges fired");
    assert!(after.hedges_won > 0, "a hedge won the race");
    slow.shutdown();
    fast.shutdown();
}

#[test]
fn hedges_do_not_fire_on_an_empty_retry_budget() {
    // With the pool's retry budget drained, hedge timers that expire
    // must NOT launch a second attempt — the call rides out its slow
    // primary instead of amplifying load on a struggling cluster.
    let (slow_d, ops) = echo_service(Duration::from_millis(60));
    let (fast_d, _) = echo_service(Duration::ZERO);
    let mut slow = TcpServer::bind("127.0.0.1:0", slow_d).unwrap();
    let mut fast = TcpServer::bind("127.0.0.1:0", fast_d).unwrap();

    let budget = Arc::new(RetryBudget::new(0, 16));
    let pool = ConnectionPool::builder(vec![slow.addr(), fast.addr()])
        .with_slots(1)
        .with_retry_budget(budget.clone())
        .build()
        .unwrap();
    let pool = Arc::new(pool);
    let remote = RemoteRef::new(pool.clone(), b"obj".to_vec(), ops, Endian::Little)
        .with_options(CallOptions::new().with_hedge(HedgePolicy::After(Duration::from_millis(5))));

    // Six calls keep the 0.1-token-per-success deposits safely below a
    // whole token, so the bucket stays unspendable throughout.
    for k in 0..6 {
        assert_eq!(remote.invoke("echo", &payload(k)).unwrap(), payload(k));
    }
    let after = pool.metrics().snapshot();
    assert_eq!(
        after.hedges_fired, 0,
        "no hedge may fire on an empty budget"
    );
    assert!(
        after.retry_budget_exhausted > 0,
        "expired hedge timers were refused by the budget"
    );
    assert_eq!(budget.balance(), 0);
    slow.shutdown();
    fast.shutdown();
}

#[test]
fn a_losing_hedge_refunds_its_budget_token() {
    // A hedge that fires but loses the race consumed no capacity worth
    // charging for: its token goes back, so a trickle of slow primaries
    // cannot bleed the budget dry.
    let (primary_d, ops) = echo_service(Duration::from_millis(40));
    let (hedge_d, _) = echo_service(Duration::from_millis(400));
    let mut primary = TcpServer::bind("127.0.0.1:0", primary_d).unwrap();
    let mut hedged = TcpServer::bind("127.0.0.1:0", hedge_d).unwrap();

    let budget = Arc::new(RetryBudget::new(1, 16));
    // Round-robin sends the first primary to the 40 ms endpoint; the
    // hedge lands on the 400 ms one and is guaranteed to lose.
    let pool = ConnectionPool::builder(vec![primary.addr(), hedged.addr()])
        .with_slots(1)
        .with_retry_budget(budget.clone())
        .build()
        .unwrap();
    let pool = Arc::new(pool);
    let remote = RemoteRef::new(pool.clone(), b"obj".to_vec(), ops, Endian::Little)
        .with_options(CallOptions::new().with_hedge(HedgePolicy::After(Duration::from_millis(5))));

    assert_eq!(remote.invoke("echo", &payload(7)).unwrap(), payload(7));
    let after = pool.metrics().snapshot();
    assert_eq!(after.hedges_fired, 1, "the hedge fired");
    assert_eq!(after.hedges_won, 0, "the primary won the race");
    assert_eq!(after.retry_budget_exhausted, 0);
    assert_eq!(
        budget.balance(),
        1,
        "the losing hedge returned its withdrawn token"
    );
    primary.shutdown();
    hedged.shutdown();
}
