//! The Java class-file route (paper §4: "the Java parser is a simple
//! extractor of type declarations from Java .class files").
//!
//! The fitter example again, but with the Java side arriving as binary
//! `.class` files instead of source — the path the prototype actually
//! used.

use mockingbird::lang_java::ClassSpec;
use mockingbird::{Mode, Session};

fn fitter_class_files() -> Vec<Vec<u8>> {
    vec![
        ClassSpec::new("Point")
            .field("x", "F")
            .field("y", "F")
            .method("<init>", "(FF)V")
            .method("getX", "()F")
            .method("getY", "()F")
            .write(),
        ClassSpec::new("Line")
            .field("start", "LPoint;")
            .field("end", "LPoint;")
            .method("<init>", "(LPoint;LPoint;)V")
            .write(),
        ClassSpec::new("PointVector")
            .extends("java.util.Vector")
            .write(),
        ClassSpec::new("JavaIdeal")
            .interface()
            .method("fitter", "(LPointVector;)LLine;")
            .write(),
    ]
}

#[test]
fn class_file_route_reaches_the_same_match() {
    let mut s = Session::new();
    s.load_c(
        "typedef float point[2];
         void fitter(point pts[], int count, point *start, point *end);",
    )
    .unwrap();
    let loaded = s.load_java_classes(&fitter_class_files()).unwrap();
    assert_eq!(loaded, 4);
    s.annotate(
        "annotate fitter.param(pts) length=param(count)
         annotate fitter.param(start) direction=out
         annotate fitter.param(end) direction=out
         annotate Line.field(start) non-null no-alias
         annotate Line.field(end) non-null no-alias
         annotate PointVector element=Point non-null
         annotate JavaIdeal.method(fitter).param(arg0) non-null
         annotate JavaIdeal.method(fitter).ret non-null",
    )
    .unwrap();
    let plan = s.compare("JavaIdeal", "fitter", Mode::Equivalence).unwrap();
    assert!(plan.len() >= 5);
}

#[test]
fn class_file_and_source_declarations_agree() {
    // The same class via both routes lowers to the same Mtype.
    let mut s = Session::new();
    s.load_java_classes(&[ClassSpec::new("BinPoint")
        .field("x", "F")
        .field("y", "F")
        .write()])
        .unwrap();
    s.load_java("public class SrcPoint { private float x; private float y; }")
        .unwrap();
    assert!(s.compare("BinPoint", "SrcPoint", Mode::Equivalence).is_ok());
}

#[test]
fn descriptor_vocabulary_through_the_session() {
    let blob = ClassSpec::new("Kitchen")
        .field("b", "Z")
        .field("y", "B")
        .field("s", "S")
        .field("c", "C")
        .field("i", "I")
        .field("j", "J")
        .field("f", "F")
        .field("d", "D")
        .field("name", "Ljava/lang/String;")
        .field("grid", "[[I")
        .field("tag", "Ljava/lang/Object;")
        .write();
    let mut s = Session::new();
    s.load_java_classes(&[blob]).unwrap();
    let shown = s.display_mtype("Kitchen").unwrap();
    assert!(shown.contains("Int{0..=1}"), "boolean: {shown}");
    assert!(shown.contains("Char{Unicode}"), "char + String: {shown}");
    assert!(shown.contains("Real{53,11}"), "double: {shown}");
    assert!(shown.contains("Dynamic"), "Object: {shown}");
}

#[test]
fn malformed_class_files_are_rejected_with_context() {
    let mut s = Session::new();
    let e = s.load_java_classes(&[vec![1, 2, 3]]).unwrap_err();
    assert!(e.to_string().contains("class file"), "{e}");
    let mut truncated = ClassSpec::new("T").field("x", "I").write();
    truncated.truncate(truncated.len() / 2);
    assert!(s.load_java_classes(&[truncated]).is_err());
}
