//! §6: exception support ("we are building support for certain
//! constructs, such as exceptions, unions, and the CORBA Any type").
//!
//! Declared exceptions — IDL `raises`, Java `throws` — lower into the
//! reply as a Choice whose alternative 0 is the normal return and whose
//! other alternatives are the exception structures. Checked failures
//! therefore travel in-band as data, cross languages structurally like
//! any other type, and round-trip the wire.

use mockingbird::values::MValue;
use mockingbird::{Mode, Session};

const IDL: &str = "
exception NotFound { long code; string what; };
interface Store {
  long lookup(in string key) raises (NotFound);
};";

const JAVA: &str = "
public class NotFoundExc {
    private int code;
    private String what;
}
public interface JStore {
    int lookup(String key) throws NotFoundExc;
}";

fn annotated_session() -> Session {
    let mut s = Session::new();
    s.load_idl(IDL).unwrap();
    s.load_java(JAVA).unwrap();
    s
}

#[test]
fn raises_lowers_into_a_reply_choice() {
    let mut s = annotated_session();
    let shown = s.display_mtype("Store").unwrap();
    // The *reply* port's payload is Choice(Record(normal-int), NotFound)
    // — distinguish it from the outer interface Choice by looking at the
    // inner port.
    assert!(
        shown.contains("port(Choice(Record(Int{"),
        "reply payload must be a Choice over the normal return: {shown}"
    );
    assert!(
        shown.contains("Char{Unicode}"),
        "NotFound carries its string: {shown}"
    );
    // Without the exception the reply is a plain Record.
    s.load_idl("interface Plain { long lookup(in string key); };")
        .unwrap();
    let plain = s.display_mtype("Plain").unwrap();
    assert!(plain.contains("port(Record(Int{"), "{plain}");
    assert!(!plain.contains("port(Choice(Record(Int{"), "{plain}");
}

#[test]
fn java_throws_matches_idl_raises() {
    let mut s = annotated_session();
    let plan = s
        .compare("JStore", "Store", Mode::Equivalence)
        .expect("matching exceptions make the interfaces equivalent");
    assert!(plan.len() >= 4);
}

#[test]
fn mismatched_exception_sets_do_not_match() {
    let mut s = Session::new();
    s.load_idl(IDL).unwrap();
    // A Java interface that declares no exceptions cannot match the
    // raising IDL operation.
    s.load_java("public interface NoThrow { int lookup(String key); }")
        .unwrap();
    assert!(s.compare("NoThrow", "Store", Mode::Equivalence).is_err());
}

#[test]
fn exception_values_convert_between_the_declarations() {
    let mut s = annotated_session();
    let plan = s.compare("JStore", "Store", Mode::Equivalence).unwrap();
    // The reply payload pair: locate it via the stub shape machinery.
    let j = s.mtype("JStore").unwrap();
    let i = s.mtype("Store").unwrap();
    let jshape = mockingbird::stubgen::FnShape::of_function(plan.left_graph(), j).unwrap();
    let ishape = mockingbird::stubgen::FnShape::of_function(plan.right_graph(), i).unwrap();

    // Normal return: alternative 0 wrapping the output record.
    let ok = MValue::Choice {
        index: 0,
        value: Box::new(MValue::Record(vec![MValue::Int(42)])),
    };
    let converted = plan
        .convert_pair(jshape.output, ishape.output, &ok)
        .unwrap();
    assert_eq!(converted, ok, "normal replies pass through");

    // Exceptional return: alternative 1 carrying NotFoundExc{code, what}.
    let exc = MValue::Choice {
        index: 1,
        value: Box::new(MValue::Record(vec![
            MValue::Int(404),
            MValue::string("no such key"),
        ])),
    };
    let converted = plan
        .convert_pair(jshape.output, ishape.output, &exc)
        .unwrap();
    assert_eq!(converted, exc, "exception payloads convert structurally");
    // And backwards.
    assert_eq!(
        plan.convert_pair_back(jshape.output, ishape.output, &converted)
            .unwrap(),
        exc
    );
}

#[test]
fn exception_replies_cross_the_wire() {
    use mockingbird::values::Endian;
    use mockingbird::wire::{CdrReader, CdrWriter};

    let mut s = annotated_session();
    let i = s.mtype("Store").unwrap();
    let shape = mockingbird::stubgen::FnShape::of_function(s.graph(), i).unwrap();
    let exc = MValue::Choice {
        index: 1,
        value: Box::new(MValue::Record(vec![
            MValue::Int(404),
            MValue::string("missing"),
        ])),
    };
    for endian in [Endian::Little, Endian::Big] {
        let mut w = CdrWriter::new(endian);
        w.put_value(s.graph(), shape.output, &exc).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, endian);
        assert_eq!(r.get_value(s.graph(), shape.output).unwrap(), exc);
    }
}

#[test]
fn project_files_preserve_throws() {
    let s = annotated_session();
    let dir = std::env::temp_dir().join("mockingbird-exc-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("exc.mbproj.json");
    s.save_project("exc", &path).unwrap();
    let mut restored = Session::load_project(&path).unwrap();
    assert!(restored
        .compare("JStore", "Store", Mode::Equivalence)
        .is_ok());
    std::fs::remove_file(path).ok();
}
