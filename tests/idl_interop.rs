//! F3–F4: the IDL route (paper §2, Figs. 3–4).
//!
//! Both ways of writing the interface in CORBA IDL must parse, the
//! traditional IDL compiler's *imposed* Java translation must match the
//! paper's Fig. 4, and Mockingbird must prove the native declarations
//! interoperable with either IDL — plus a real remote invocation with
//! GIOP/CDR where the IDL declaration defines the wire.

use std::collections::HashMap;
use std::sync::Arc;

use mockingbird::baselines::{c_to_java, generate_java};
use mockingbird::runtime::transport::TcpConnection;
use mockingbird::runtime::{Node, RemoteRef, RuntimeError, Servant, TcpServer};
use mockingbird::stubgen::{FunctionStub, RemoteStub};
use mockingbird::values::{Endian, MValue};
use mockingbird::{Mode, Session};

const FIG3A: &str = "
interface JavaFriendly {
  struct Point { float x; float y; };
  struct Line { Point start; Point end; };
  typedef sequence<Point> PointVector;
  Line fitter(in PointVector pts);
};";

const FIG3B: &str = "
interface CFriendly {
  typedef float Point[2];
  typedef sequence<Point> pointseq;
  void fitter(in pointseq pts, in long count,
              out Point start, out Point end);
};";

const FIG2_C: &str = "typedef float cpoint[2];
void fitter(cpoint pts[], int count, cpoint *start, cpoint *end);";

const JAVA: &str = "
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }";

const SCRIPT: &str = "
annotate fitter.param(pts) length=param(count)
annotate fitter.param(start) direction=out
annotate fitter.param(end) direction=out
annotate Line.field(start) non-null no-alias
annotate Line.field(end) non-null no-alias
annotate PointVector element=Point non-null
annotate JavaIdeal.method(fitter).param(pts) non-null
annotate JavaIdeal.method(fitter).ret non-null
annotate CFriendly.method(fitter).param(pts) length=param(count)";

fn full_session() -> Session {
    let mut s = Session::new();
    s.load_idl(FIG3A).unwrap();
    s.load_idl(FIG3B).unwrap();
    s.load_c(FIG2_C).unwrap();
    s.load_java(JAVA).unwrap();
    s.annotate(SCRIPT).unwrap();
    s
}

#[test]
fn f4_imposed_java_matches_the_paper() {
    let s = full_session();
    // Fig. 4 upper half: the imposed final Point class.
    let units = generate_java(s.universe(), "JavaFriendly.Point");
    let (_, point) = &units[0];
    assert!(point.contains("public final class Point {"));
    assert!(point.contains("public float x;"));
    assert!(point.contains("public float y;"));
    // Fig. 4 lower half: the imposed interfaces.
    let (_, iface) = &generate_java(s.universe(), "JavaFriendly")[0];
    assert!(iface.contains("extends org.omg.CORBA.Object"));
    assert!(iface.contains("Line fitter(Point[] pts);"));
    let (_, cface) = &generate_java(s.universe(), "CFriendly")[0];
    assert!(cface.contains("void fitter(float[][] pts"));
    assert!(cface.contains("CFriendlyPackage.PointHolder start"));
    // The X2Y tool's output imposes C shapes the same way (§2).
    let x2y = c_to_java(s.universe(), "fitter").unwrap();
    assert!(x2y.contains("int count"));
}

#[test]
fn every_pairing_of_the_four_declarations_matches() {
    let mut s = full_session();
    let decls = ["JavaIdeal", "fitter", "CFriendly", "JavaFriendly"];
    for (i, left) in decls.iter().enumerate() {
        for right in decls.iter().skip(i) {
            let plan = s
                .compare(left, right, Mode::Equivalence)
                .unwrap_or_else(|e| panic!("{left} vs {right}: {e}"));
            assert!(!plan.is_empty(), "{left} vs {right}");
        }
    }
}

#[test]
fn remote_invocation_with_idl_defined_wire() {
    let mut s = full_session();
    // "If one declaration is an IDL, Mockingbird generates a
    // network-enabled stub obeying the network architecture implied by
    // the IDL" (§1): the wire types come from CFriendly.
    let wire_op = s.wire_op("CFriendly").unwrap();

    // Server: a C-declared implementation behind a CFriendly wire.
    let server_plan = s.compare("CFriendly", "fitter", Mode::Equivalence).unwrap();
    let server_stub = Arc::new(FunctionStub::new(Arc::new(server_plan)).unwrap());
    let servant_stub = server_stub.clone();
    let servant: Arc<dyn Servant> = Arc::new(move |_op: &str, args: MValue| {
        // args arrive in CFriendly wire shape; adapt onto the C function.
        let MValue::Record(items) = &args else {
            return Err(RuntimeError::Conversion("bad args".into()));
        };
        let inputs: Vec<MValue> = items.clone();
        servant_stub
            .call(&inputs, &|cargs| {
                let MValue::Record(items) = cargs else {
                    return Err("bad".into());
                };
                let MValue::List(pts) = &items[0] else {
                    return Err("bad".into());
                };
                Ok(MValue::Record(vec![
                    pts.first().cloned().ok_or("empty")?,
                    pts.last().cloned().ok_or("empty")?,
                ]))
            })
            .map_err(|e| RuntimeError::Application(e.to_string()))
    });
    let node = Node::new("server");
    let mut ops = HashMap::new();
    ops.insert("fitter".to_string(), wire_op.clone());
    node.register_object(b"svc".to_vec(), servant, ops);
    let mut server = TcpServer::bind("127.0.0.1:0", node.dispatcher()).unwrap();

    // Client: JavaIdeal-declared, adapted onto the CFriendly wire.
    let client_plan = s
        .compare("JavaIdeal", "CFriendly", Mode::Equivalence)
        .unwrap();
    let client_stub = FunctionStub::new(Arc::new(client_plan)).unwrap();
    let conn = Arc::new(TcpConnection::connect(server.addr()).unwrap());
    let mut cops = HashMap::new();
    cops.insert("fitter".to_string(), wire_op);
    let remote = Arc::new(RemoteRef::new(conn, b"svc".to_vec(), cops, Endian::Big));
    let stub = RemoteStub::new(client_stub, remote, "fitter");

    let pts = MValue::List(vec![
        MValue::Record(vec![MValue::Real(9.0), MValue::Real(8.0)]),
        MValue::Record(vec![MValue::Real(7.0), MValue::Real(6.0)]),
    ]);
    let out = stub.call(&[pts]).unwrap();
    assert_eq!(
        out,
        MValue::Record(vec![MValue::Record(vec![
            MValue::Record(vec![MValue::Real(9.0), MValue::Real(8.0)]),
            MValue::Record(vec![MValue::Real(7.0), MValue::Real(6.0)]),
        ])]),
        "the Line returns in Java shape through two adapters and the wire"
    );
    server.shutdown();
}

#[test]
fn subtype_interop_one_way() {
    // A JavaIdeal-shaped *message* (not function) against a Dynamic
    // sink: any record is a subtype of Dynamic.
    let mut s = full_session();
    let plan = s.compare("Point", "Point", Mode::Subtype).unwrap();
    assert!(plan
        .convert(&MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]))
        .is_ok());
    assert!(plan
        .convert_back(&MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]))
        .is_err());
}
