//! F6: the tool anatomy (paper Fig. 6) — project files and the
//! annotate/compare loop.
//!
//! "Mockingbird can parse C/C++ declarations, Java class files, CORBA
//! IDL, or project files (representing a previously saved session with
//! the tool). ... At any point, the programmer can save the current
//! state of the parsed and annotated declarations in a project file for
//! later use."

use mockingbird::{Mode, Session};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("mockingbird-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn all_four_input_kinds_coexist_in_one_session() {
    let mut s = Session::new();
    s.load_c("typedef float point[2];").unwrap();
    s.load_java("public class Point { private float x; private float y; }")
        .unwrap();
    s.load_idl("struct IdlPoint { float x; float y; };")
        .unwrap();
    // Java class files are the fourth kind.
    let blob = mockingbird::lang_java::ClassSpec::new("BinPoint")
        .field("x", "F")
        .field("y", "F")
        .write();
    s.load_java_classes(&[blob]).unwrap();
    // All four spellings of a point are mutually equivalent.
    let mut pairs = 0;
    for (l, r) in [
        ("point", "Point"),
        ("point", "IdlPoint"),
        ("point", "BinPoint"),
        ("Point", "IdlPoint"),
        ("Point", "BinPoint"),
        ("IdlPoint", "BinPoint"),
    ] {
        assert!(s.compare(l, r, Mode::Equivalence).is_ok(), "{l} vs {r}");
        pairs += 1;
    }
    assert_eq!(pairs, 6);
}

#[test]
fn saved_session_resumes_where_it_left_off() {
    let path = scratch("resume.mbproj.json");
    {
        let mut s = Session::new();
        s.load_c("typedef float point[2];\nvoid draw(point *p, int n);")
            .unwrap();
        s.load_java("public class Canvas { private int width; private int height; }")
            .unwrap();
        // Half-finished annotation state.
        s.annotate("annotate draw.param(p) length=param(n)")
            .unwrap();
        s.save_project("wip", &path).unwrap();
    }
    let mut s = Session::load_project(&path).unwrap();
    // The annotation survived; the remaining work continues.
    let shown = s.display_mtype("draw").unwrap();
    assert!(
        shown.contains("Rec#L("),
        "length annotation survived: {shown}"
    );
    s.annotate("annotate Canvas.field(width) range=0..4096")
        .unwrap();
    let canvas = s.display_mtype("Canvas").unwrap();
    assert!(canvas.contains("Int{0..=4096}"), "{canvas}");
    std::fs::remove_file(path).ok();
}

#[test]
fn project_files_are_versioned_json() {
    let path = scratch("versioned.mbproj.json");
    let mut s = Session::new();
    s.load_c("typedef int handle;").unwrap();
    s.save_project("v", &path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"version\": 1"));
    assert!(text.contains("\"handle\""));
    // Corrupt the version: load must fail cleanly.
    let bad = text.replace("\"version\": 1", "\"version\": 42");
    std::fs::write(&path, bad).unwrap();
    assert!(Session::load_project(&path).is_err());
    std::fs::remove_file(path).ok();
}

#[test]
fn iterative_annotate_compare_loop_converges() {
    // The Fig. 6 loop: compare, read the diagnostics, annotate, repeat.
    let mut s = Session::new();
    s.load_c("typedef float vec3[3];\nstruct CBody { vec3 pos; vec3 vel; unsigned int id; };")
        .unwrap();
    s.load_java(
        "public class JBody {
           private int id;
           private float[] pos;
           private float[] vel;
         }",
    )
    .unwrap();
    // Round 1: Java arrays are indefinite, C arrays fixed; id signs differ.
    let e1 = s.compare("JBody", "CBody", Mode::Equivalence).unwrap_err();
    assert!(e1.to_string().contains("types do not match"));
    // Round 2: fix the arrays.
    s.annotate(
        "annotate JBody.field(pos) length=static(3)
         annotate JBody.field(vel) length=static(3)",
    )
    .unwrap();
    let e2 = s.compare("JBody", "CBody", Mode::Equivalence).unwrap_err();
    assert!(e2.to_string().contains("types do not match"));
    // Round 3: reconcile the integer ranges (paper §3.1's annotation).
    s.annotate(
        "annotate JBody.field(id) range=0..2147483647
         annotate CBody.field(id) range=0..2147483647",
    )
    .unwrap();
    assert!(s.compare("JBody", "CBody", Mode::Equivalence).is_ok());
}

#[test]
fn dot_export_for_the_mtype_diagram_pane() {
    let mut s = Session::new();
    s.load_java("public class Node { private int v; private Node next; }")
        .unwrap();
    let dot = s.dot("Node").unwrap();
    assert!(dot.starts_with("digraph Node {"));
    assert!(dot.contains("Recursive"));
}
