//! Session-level ablation and robustness checks.
//!
//! The paper's contribution over plain Amadio–Cardelli is the
//! isomorphism rule set (§4); running the fitter example under
//! [`RuleSet::strict`] shows exactly which paper claims die without it.

use mockingbird::comparer::RuleSet;
use mockingbird::values::MValue;
use mockingbird::{Mode, Session};

const FIG2_C: &str = "typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);";

const FIG1_5_JAVA: &str = "
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }";

const SCRIPT: &str = "
annotate fitter.param(pts) length=param(count)
annotate fitter.param(start) direction=out
annotate fitter.param(end) direction=out
annotate Line.field(start) non-null no-alias
annotate Line.field(end) non-null no-alias
annotate PointVector element=Point non-null
annotate JavaIdeal.method(fitter).param(pts) non-null
annotate JavaIdeal.method(fitter).ret non-null";

#[test]
fn strict_rules_cannot_match_the_fitter_example() {
    // Even fully annotated, the pure Amadio–Cardelli comparer rejects
    // the pair: the Java side groups the four output reals as a Line and
    // wraps the invocation in a (singleton) method Choice, both of which
    // need the isomorphism rules.
    let mut s = Session::with_rules(RuleSet::strict());
    s.load_c(FIG2_C).unwrap();
    s.load_java(FIG1_5_JAVA).unwrap();
    s.annotate(SCRIPT).unwrap();
    assert!(
        s.compare("JavaIdeal", "fitter", Mode::Equivalence).is_err(),
        "the paper's headline example depends on the isomorphism rules"
    );
    // The full rule set accepts it (the control arm).
    let mut full = Session::new();
    full.load_c(FIG2_C).unwrap();
    full.load_java(FIG1_5_JAVA).unwrap();
    full.annotate(SCRIPT).unwrap();
    assert!(full
        .compare("JavaIdeal", "fitter", Mode::Equivalence)
        .is_ok());
}

#[test]
fn strict_rules_still_match_identical_declarations() {
    let mut s = Session::with_rules(RuleSet::strict());
    s.load_c("struct P1 { float x; float y; };").unwrap();
    s.load_idl("struct P2 { float x; float y; };").unwrap();
    assert!(s.compare("P1", "P2", Mode::Equivalence).is_ok());
    // But reordered fields need commutativity.
    s.load_idl("struct P3 { float y; float x; };").unwrap();
    assert!(
        s.compare("P1", "P3", Mode::Equivalence).is_ok(),
        "same-typed fields permute trivially"
    );
    s.load_c("struct Q1 { int a; float b; };").unwrap();
    s.load_idl("struct Q2 { float b; long a; };").unwrap();
    assert!(s.compare("Q1", "Q2", Mode::Equivalence).is_err());
}

#[test]
fn conversion_depth_guard_fails_cleanly_not_by_stack_overflow() {
    // A pathologically deep nested-record value must produce an error,
    // not a crash.
    let mut s = Session::new();
    s.load_java("public class Cell { private int v; }").unwrap();
    let plan = s.compare("Cell", "Cell", Mode::Equivalence).unwrap();
    // Build a value nested far beyond any sane declaration.
    let mut v = MValue::Int(1);
    for _ in 0..5000 {
        v = MValue::Record(vec![v]);
    }
    assert!(plan.convert(&v).is_err(), "depth guard engages");
}

#[test]
fn subtype_session_comparisons() {
    let mut s = Session::new();
    s.load_java("public class Narrow { private short v; }")
        .unwrap();
    s.load_idl("struct Wide { long v; };").unwrap();
    // short ⊆ long: one-way only.
    let plan = s.compare("Narrow", "Wide", Mode::Subtype).unwrap();
    assert_eq!(
        plan.convert(&MValue::Record(vec![MValue::Int(7)])).unwrap(),
        MValue::Record(vec![MValue::Int(7)])
    );
    assert!(s.compare("Wide", "Narrow", Mode::Subtype).is_err());
    assert!(s.compare("Narrow", "Wide", Mode::Equivalence).is_err());
}

#[test]
fn diagnostics_stay_bounded_on_large_graphs() {
    // Mismatch displays are capped: a dense corpus mismatch must not
    // produce megabyte error strings.
    use mockingbird::corpus::visualage;
    let pair = visualage(30, 9);
    let mut s = Session::new();
    for d in pair.cxx.iter() {
        s.universe_mut().insert(d.clone()).unwrap();
    }
    let mut s2 = Session::new();
    for d in pair.java.iter() {
        s2.universe_mut().insert(d.clone()).unwrap();
    }
    // Compare a C++ class against the *unannotated* Java one via a fresh
    // combined session (rename to avoid collisions).
    let mut combined = Session::new();
    for d in pair.cxx.iter() {
        combined.universe_mut().insert(d.clone()).unwrap();
    }
    for d in pair.java.iter() {
        let mut renamed = d.clone();
        renamed.name = format!("J{}", d.name);
        combined.universe_mut().insert(renamed).unwrap();
    }
    let name = &pair.class_names[0];
    let err = combined
        .compare(name, &format!("J{name}"), Mode::Equivalence)
        .unwrap_err();
    let text = err.to_string();
    assert!(
        text.len() < 8_192,
        "diagnostics must be capped, got {} chars",
        text.len()
    );
}
