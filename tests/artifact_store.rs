//! The artifact store end to end: warm cold-starts from segment files,
//! hostile store files failing closed, cluster-warm caches over real TCP
//! (`MBAR`), and the `mbc --store` seam.
//!
//! Unit tests in `crates/artifact` cover each corruption in isolation;
//! here the corrupt store feeds a real batch compile, the forged peer is
//! a real socket, and the CLI drives the whole persistence loop.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use mockingbird::artifact::{
    ArtifactId, ArtifactStore, FetchReply, FetchRequest, MemoryStore, SegmentStore, XferRecord,
};
use mockingbird::comparer::{CompareCache, RuleSet};
use mockingbird::corpus::marshal_corpus;
use mockingbird::runtime::{fetch_artifacts, Dispatcher, MetricsRegistry, ServerConfig, TcpServer};
use mockingbird::values::Endian;
use mockingbird::wire::{HandshakeInfo, HandshakeVerdict, Message, MessageKind, ProgramCache};
use mockingbird::{BatchCompiler, BatchOptions};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mb-store-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small compiled corpus: the batch report plus the compiler (whose
/// caches hold every verdict and wire program the run produced).
fn compiled_corpus(classes: usize) -> (mockingbird::corpus::MarshalCorpus, BatchCompiler) {
    let corpus = marshal_corpus(classes, 42);
    let bc = BatchCompiler::new(corpus.graph.clone());
    let report = bc.compile(&corpus.pairs, &BatchOptions::default());
    assert!(report.stats.programs.compiles > 0, "cold run must compile");
    (corpus, bc)
}

#[test]
fn warm_segment_store_cold_start_compiles_nothing() {
    let dir = scratch("warm");
    let (corpus, bc) = compiled_corpus(30);
    let store = SegmentStore::open(&dir).unwrap();
    bc.cache().store_into(&store);
    bc.programs().store_into(&store);
    assert!(store.commit().unwrap() > 0);
    drop((store, bc));

    // A fresh "process": nothing but the store directory.
    let store = SegmentStore::open(&dir).unwrap();
    assert_eq!(store.stats().integrity_failures, 0);
    let cache = Arc::new(CompareCache::new());
    let programs = Arc::new(ProgramCache::new());
    cache.load_from(&store);
    programs.load_from(&store);
    let bc = BatchCompiler::new(corpus.graph.clone())
        .with_cache(cache)
        .with_programs(programs);
    let report = bc.compile(&corpus.pairs, &BatchOptions::default());
    assert_eq!(
        report.stats.programs.compiles, 0,
        "every program must come from the store"
    );
    assert_eq!(report.stats.cache.misses, 0, "every verdict must be warm");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_segment_fails_closed_and_batch_recovers_by_compiling() {
    let dir = scratch("corrupt");
    let (corpus, bc) = compiled_corpus(20);
    let store = SegmentStore::open(&dir).unwrap();
    bc.cache().store_into(&store);
    bc.programs().store_into(&store);
    store.commit().unwrap();
    drop((store, bc));

    // Flip a byte in the middle of the segment: decode stops at the bad
    // record, everything before it survives, nothing after it does.
    let seg = dir.join("seg-000001.mbas");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&seg, &bytes).unwrap();

    let store = SegmentStore::open(&dir).unwrap();
    assert_eq!(store.stats().integrity_failures, 1);
    let full: usize = corpus.pairs.len();
    assert!(store.len() < 2 * full, "corruption must cost records");

    // The store never lies: whatever loaded is genuine, and the batch
    // recompiles the rest rather than trusting damaged bytes.
    let cache = Arc::new(CompareCache::new());
    let programs = Arc::new(ProgramCache::new());
    cache.load_from(&store);
    programs.load_from(&store);
    let bc = BatchCompiler::new(corpus.graph.clone())
        .with_cache(cache)
        .with_programs(programs);
    let report = bc.compile(&corpus.pairs, &BatchOptions::default());
    assert_eq!(report.stats.mismatched, 0, "results stay correct");

    // Truncation likewise opens (fail closed, not refuse-to-open).
    let shorter = &bytes[..bytes.len() - 7];
    std::fs::write(&seg, shorter).unwrap();
    let store = SegmentStore::open(&dir).unwrap();
    assert!(store.stats().integrity_failures >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn peer_fetch_over_tcp_reaches_zero_compile_steady_state() {
    let (corpus, bc) = compiled_corpus(25);
    let rules_fp = RuleSet::full().fingerprint();
    let info = HandshakeInfo::new(0xF17AA, rules_fp);

    // The peer: a real GIOP server fronting the warm store.
    let peer_store = Arc::new(MemoryStore::new());
    bc.cache().store_into(peer_store.as_ref());
    bc.programs().store_into(peer_store.as_ref());
    let mut server = TcpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(Dispatcher::new()),
        ServerConfig::default()
            .with_handshake(info)
            .with_artifact_store(peer_store.clone()),
    )
    .unwrap();

    // The joining node: empty store, one MBAR fetch.
    let local = MemoryStore::new();
    let metrics = MetricsRegistry::new();
    let outcome = fetch_artifacts(server.addr(), &info, &local, &metrics).unwrap();
    assert_eq!(outcome.rejected, 0);
    assert_eq!(outcome.fetched, peer_store.len());
    assert_eq!(outcome.peer_digest, peer_store.digest());
    assert_eq!(local.digest(), peer_store.digest());
    assert_eq!(metrics.snapshot().peer_fetches, outcome.fetched as u64);

    // Steady state: the joined node compiles nothing.
    let cache = Arc::new(CompareCache::new());
    let programs = Arc::new(ProgramCache::new());
    cache.load_from(&local);
    programs.load_from(&local);
    let bc = BatchCompiler::new(corpus.graph.clone())
        .with_cache(cache)
        .with_programs(programs);
    let report = bc.compile(&corpus.pairs, &BatchOptions::default());
    assert_eq!(report.stats.programs.compiles, 0);
    server.shutdown();
}

/// Reads one framed GIOP message off a raw socket: 12-byte preamble,
/// then the big-endian length it declares.
fn read_giop_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut hdr = [0u8; 12];
    stream.read_exact(&mut hdr).unwrap();
    let len = u32::from_be_bytes(hdr[8..12].try_into().unwrap()) as usize;
    let mut all = hdr.to_vec();
    all.resize(12 + len, 0);
    stream.read_exact(&mut all[12..]).unwrap();
    all
}

#[test]
fn forged_peer_record_is_rejected_by_content_hash() {
    use mockingbird::artifact::{ArtifactKind, StoreKey};
    let rules_fp = 7u64;
    let key = move |n: u64| StoreKey {
        kind: ArtifactKind::WireProgram,
        left_fp: n as u128,
        right_fp: (n as u128) << 8,
        subtype: false,
        rules_fp,
    };

    // A hostile peer on a raw socket: accepts the handshake, then ships
    // one genuine record and one whose body does not match its claimed
    // content id (a planted program).
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let peer = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let hello = Message::from_bytes(&read_giop_frame(&mut s)).unwrap();
        let MessageKind::Hello { info, .. } = hello.kind else {
            panic!("expected Hello first");
        };
        let accept = Message::hello(info, HandshakeVerdict::Accept, Endian::Little);
        s.write_all(&accept.to_bytes()).unwrap();

        let req_msg = Message::from_bytes(&read_giop_frame(&mut s)).unwrap();
        let MessageKind::Artifact {
            request_id,
            reply: false,
        } = req_msg.kind
        else {
            panic!("expected an Artifact request");
        };
        let req = FetchRequest::from_bytes(&req_msg.body).unwrap();
        let genuine = XferRecord {
            key: key(1),
            id: ArtifactId::of(b"honest program"),
            body: b"honest program".to_vec(),
        };
        let forged = XferRecord {
            key: key(2),
            id: ArtifactId::of(b"what the hash claims"),
            body: b"what actually ships".to_vec(),
        };
        assert!(!forged.verify());
        let reply = FetchReply {
            store_digest: 0xbad,
            records: vec![genuine, forged],
        };
        assert_eq!(req.rules_fp, rules_fp);
        let frame = Message::artifact(request_id, true, Endian::Little, reply.to_bytes());
        s.write_all(&frame.to_bytes()).unwrap();
    });

    let local = MemoryStore::new();
    let metrics = MetricsRegistry::new();
    let info = HandshakeInfo::new(0xF00D, rules_fp);
    let outcome = fetch_artifacts(addr, &info, &local, &metrics).unwrap();
    peer.join().unwrap();

    assert_eq!(outcome.fetched, 1, "the honest record lands");
    assert_eq!(outcome.rejected, 1, "the forged record is dropped");
    assert!(local.contains(&key(1)));
    assert!(!local.contains(&key(2)), "a planted program never enters");
    assert_eq!(metrics.snapshot().artifact_integrity_failures, 1);
}

#[test]
fn rules_disagreement_blocks_artifact_transfer() {
    let rules_fp = RuleSet::full().fingerprint();
    let peer_store = Arc::new(MemoryStore::new());
    let mut server = TcpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(Dispatcher::new()),
        // Same interface, different rules: the handshake verdict is
        // InterpretiveOnly, and artifacts never move.
        ServerConfig::default()
            .with_handshake(HandshakeInfo::new(0xF17AA, rules_fp ^ 1))
            .with_artifact_store(peer_store),
    )
    .unwrap();
    let local = MemoryStore::new();
    let metrics = MetricsRegistry::new();
    let info = HandshakeInfo::new(0xF17AA, rules_fp);
    let err = fetch_artifacts(server.addr(), &info, &local, &metrics).unwrap_err();
    assert!(
        err.to_string().contains("InterpretiveOnly"),
        "unexpected error: {err}"
    );
    assert!(local.is_empty());
    assert_eq!(metrics.snapshot().handshake_rejects, 1);
    server.shutdown();
}

fn mbc() -> Command {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/tests-e2e -> crates
    path.pop(); // crates -> repo root
    path.push("target");
    path.push(if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    });
    path.push("mbc");
    Command::new(path)
}

#[test]
fn mbc_store_flag_warms_the_next_run() {
    let dir = scratch("cli");
    let write = |name: &str, content: &str| -> String {
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p.to_string_lossy().into_owned()
    };
    let c = write(
        "fitter.c",
        "typedef float point[2];\nvoid fitter(point pts[], int count, point *start, point *end);\n",
    );
    let java = write(
        "app.java",
        "public class Point { private float x; private float y; }\n\
         public class Line { private Point start; private Point end; }\n\
         public class PointVector extends java.util.Vector;\n\
         public interface JavaIdeal { Line fitter(PointVector pts); }\n",
    );
    let script = write(
        "fitter.mba",
        "annotate fitter.param(pts) length=param(count)\n\
         annotate fitter.param(start) direction=out\n\
         annotate fitter.param(end) direction=out\n\
         annotate Line.field(start) non-null no-alias\n\
         annotate Line.field(end) non-null no-alias\n\
         annotate PointVector element=Point non-null\n\
         annotate JavaIdeal.method(fitter).param(pts) non-null\n\
         annotate JavaIdeal.method(fitter).ret non-null\n",
    );
    let pairs = write("pairs.txt", "JavaIdeal fitter\n");
    let store = dir.join("store").to_string_lossy().into_owned();

    // First run: cold, commits its artifacts to the store.
    let out = mbc()
        .args([
            "batch", &c, &java, "--script", &script, "--pairs", &pairs, "--store", &store,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("store: committed"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Second run: a fresh process, warmed entirely from the store.
    let out = mbc()
        .args([
            "batch", &c, &java, "--script", &script, "--pairs", &pairs, "--store", &store,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("artifacts restored:"), "{text}");
    assert!(text.contains("MATCH"), "{text}");
    // Nothing new to persist: no second commit message.
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("store: committed"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
