//! §6: semantic (hand-written) conversions composed with structural ones.
//!
//! "Perhaps one line is represented as a slope/intercept pair, and
//! another line, as two points, and the programmer wishes to convert
//! between the two representations. Dealing with such information
//! requires the programmer to provide hand-written conversions which
//! are then integrated with the automated structural ones. We are
//! currently designing mechanisms for composing these
//! programmer-supplied conversions with Mockingbird's structural ones."
//! (paper §6)
//!
//! This is that mechanism: a *semantic bridge* declares a pair matched
//! by assumption, the comparer composes it with structural matching,
//! and the coercion plan runs the registered converter at that pair.

use std::sync::Arc;

use mockingbird::values::MValue;
use mockingbird::{Mode, Session};

/// The two line representations of the paper's example, embedded in a
/// larger structure so the *composition* with structural conversion is
/// exercised (field reordering around the bridged pair).
const JAVA: &str = "
public class SlopeLine {
    private float slope;
    private float intercept;
}
public class Drawing {
    private int id;
    private SlopeLine guide;
}";

const C: &str = "
typedef struct PointLine { float x0; float y0; float x1; float y1; } PointLine;
typedef struct CDrawing { PointLine guide; int id; } CDrawing;";

const SCRIPT: &str = "
annotate Drawing.field(guide) non-null no-alias";

fn slope_line(slope: f64, intercept: f64) -> MValue {
    MValue::Record(vec![MValue::Real(slope), MValue::Real(intercept)])
}

fn point_line(x0: f64, y0: f64, x1: f64, y1: f64) -> MValue {
    MValue::Record(vec![
        MValue::Real(x0),
        MValue::Real(y0),
        MValue::Real(x1),
        MValue::Real(y1),
    ])
}

/// slope/intercept -> two canonical points (x = 0 and x = 1).
fn to_points(v: &MValue) -> Result<MValue, String> {
    let MValue::Record(items) = v else {
        return Err("expected slope/intercept".into());
    };
    let (MValue::Real(m), MValue::Real(b)) = (&items[0], &items[1]) else {
        return Err("expected two reals".into());
    };
    Ok(point_line(0.0, *b, 1.0, m + b))
}

/// two points -> slope/intercept.
fn to_slope(v: &MValue) -> Result<MValue, String> {
    let MValue::Record(items) = v else {
        return Err("expected four coords".into());
    };
    let coords: Vec<f64> = items
        .iter()
        .map(|x| match x {
            MValue::Real(r) => Ok(*r),
            _ => Err("expected reals".to_string()),
        })
        .collect::<Result<_, _>>()?;
    let (x0, y0, x1, y1) = (coords[0], coords[1], coords[2], coords[3]);
    if (x1 - x0).abs() < f64::EPSILON {
        return Err("vertical line has no slope/intercept form".into());
    }
    let slope = (y1 - y0) / (x1 - x0);
    Ok(slope_line(slope, y0 - slope * x0))
}

#[test]
fn structural_comparison_alone_rejects_the_pair() {
    let mut s = Session::new();
    s.load_java(JAVA).unwrap();
    s.load_c(C).unwrap();
    s.annotate(SCRIPT).unwrap();
    // SlopeLine is two reals, PointLine is four: no structural match.
    assert!(s
        .compare("SlopeLine", "PointLine", Mode::Equivalence)
        .is_err());
    assert!(s.compare("Drawing", "CDrawing", Mode::Equivalence).is_err());
}

#[test]
fn bridged_pair_composes_with_structural_conversion() {
    let mut s = Session::new();
    s.load_java(JAVA).unwrap();
    s.load_c(C).unwrap();
    s.annotate(SCRIPT).unwrap();

    // Declare the semantic bridge and let everything around it match
    // structurally (Drawing's fields are permuted vs CDrawing's).
    let mut plan = s
        .compare_with_bridges(
            "Drawing",
            "CDrawing",
            Mode::Equivalence,
            &[("SlopeLine", "PointLine")],
        )
        .expect("bridge makes the pair comparable");

    let sl = s.mtype("SlopeLine").unwrap();
    let pl = s.mtype("PointLine").unwrap();
    plan.register_semantic(sl, pl, Arc::new(to_points), Some(Arc::new(to_slope)));

    // Drawing { id: 7, guide: y = 2x + 1 }.
    let drawing = MValue::Record(vec![MValue::Int(7), slope_line(2.0, 1.0)]);
    let c_drawing = plan.convert(&drawing).unwrap();
    // CDrawing { guide: (0,1)-(1,3), id: 7 } — structural permutation
    // around the hand-written conversion.
    assert_eq!(
        c_drawing,
        MValue::Record(vec![point_line(0.0, 1.0, 1.0, 3.0), MValue::Int(7)])
    );

    // And back: the backward converter recovers slope/intercept.
    let back = plan.convert_back(&c_drawing).unwrap();
    assert_eq!(back, drawing);
}

#[test]
fn missing_converter_is_a_clear_error() {
    let mut s = Session::new();
    s.load_java(JAVA).unwrap();
    s.load_c(C).unwrap();
    s.annotate(SCRIPT).unwrap();
    let plan = s
        .compare_with_bridges(
            "Drawing",
            "CDrawing",
            Mode::Equivalence,
            &[("SlopeLine", "PointLine")],
        )
        .unwrap();
    let drawing = MValue::Record(vec![MValue::Int(1), slope_line(1.0, 0.0)]);
    let e = plan.convert(&drawing).unwrap_err();
    assert!(e.to_string().contains("register_semantic"), "{e}");
}

#[test]
fn converter_failures_propagate_with_context() {
    let mut s = Session::new();
    s.load_java(JAVA).unwrap();
    s.load_c(C).unwrap();
    s.annotate(SCRIPT).unwrap();
    let mut plan = s
        .compare_with_bridges(
            "Drawing",
            "CDrawing",
            Mode::Equivalence,
            &[("SlopeLine", "PointLine")],
        )
        .unwrap();
    let sl = s.mtype("SlopeLine").unwrap();
    let pl = s.mtype("PointLine").unwrap();
    plan.register_semantic(sl, pl, Arc::new(to_points), Some(Arc::new(to_slope)));

    // A vertical line in C shape cannot convert back to slope/intercept.
    let vertical = MValue::Record(vec![point_line(2.0, 0.0, 2.0, 5.0), MValue::Int(1)]);
    let e = plan.convert_back(&vertical).unwrap_err();
    assert!(e.to_string().contains("vertical line"), "{e}");
}

#[test]
fn one_way_bridge_without_backward_converter() {
    let mut s = Session::new();
    s.load_java(JAVA).unwrap();
    s.load_c(C).unwrap();
    s.annotate(SCRIPT).unwrap();
    let mut plan = s
        .compare_with_bridges(
            "Drawing",
            "CDrawing",
            Mode::Equivalence,
            &[("SlopeLine", "PointLine")],
        )
        .unwrap();
    let sl = s.mtype("SlopeLine").unwrap();
    let pl = s.mtype("PointLine").unwrap();
    plan.register_semantic(sl, pl, Arc::new(to_points), None);

    let drawing = MValue::Record(vec![MValue::Int(7), slope_line(0.5, 2.0)]);
    assert!(plan.convert(&drawing).is_ok());
    let c_drawing = plan.convert(&drawing).unwrap();
    let e = plan.convert_back(&c_drawing).unwrap_err();
    assert!(e.to_string().contains("no backward converter"), "{e}");
}
