//! End-to-end observability: per-node metric registries, propagated
//! trace contexts, and the metrics endpoint on [`TcpServer`].
//!
//! The trace tests drive real TCP servers and assert on the spans the
//! client- and server-side registries captured: one logical call keeps
//! one trace id across retries, hedged duplicates, and server dispatch.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mockingbird::mtype::{IntRange, MtypeGraph};
use mockingbird::runtime::{
    CallOptions, Connection, ConnectionPool, Dispatcher, HedgePolicy, InMemoryConnection,
    MetricsRegistry, RemoteRef, RetryPolicy, RuntimeError, Servant, SpanKind, TcpServer, WireOp,
    WireServant,
};
use mockingbird::values::{Endian, MValue};
use mockingbird::wire::Message;

/// An idempotent echo servant and the op table a client needs to call
/// it. `delay` holds each dispatch for that long (server-side work).
fn echo_service(delay: Duration) -> (Arc<Dispatcher>, HashMap<String, WireOp>) {
    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let op = WireOp::new(graph, rec, rec).idempotent();
    let servant: Arc<dyn Servant> = Arc::new(move |_: &str, v: MValue| {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(v)
    });
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let d = Arc::new(Dispatcher::new());
    d.register(b"obj".to_vec(), WireServant::new(servant, ops.clone()));
    (d, ops)
}

fn payload(k: i128) -> MValue {
    MValue::Record(vec![MValue::Int(k)])
}

/// One HTTP/1.0 request against a server's metrics listener.
fn scrape(server: &TcpServer, path: &str) -> String {
    let mut s = TcpStream::connect(server.metrics_addr()).unwrap();
    write!(s, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut reply = String::new();
    s.read_to_string(&mut reply).unwrap();
    let body_at = reply.find("\r\n\r\n").map(|k| k + 4).unwrap_or(0);
    reply.split_off(body_at)
}

#[test]
fn two_concurrent_nodes_report_disjoint_counts() {
    // The bug this API replaced: with process-global counters, one
    // node's report `reset()` raced every other node's workers. With
    // per-node registries, two clients hammering two servers at once
    // each see exactly their own calls.
    let (d_a, ops_a) = echo_service(Duration::ZERO);
    let (d_b, ops_b) = echo_service(Duration::ZERO);
    let mut server_a = TcpServer::bind("127.0.0.1:0", d_a).unwrap();
    let mut server_b = TcpServer::bind("127.0.0.1:0", d_b).unwrap();

    let client = |addr, ops| {
        let pool = Arc::new(ConnectionPool::connect(addr, 2).unwrap());
        Arc::new(RemoteRef::new(pool, b"obj".to_vec(), ops, Endian::Little))
    };
    let a = client(server_a.addr(), ops_a);
    let b = client(server_b.addr(), ops_b);

    let (calls_a, calls_b) = (40u64, 70u64);
    let ta = {
        let a = a.clone();
        std::thread::spawn(move || {
            for k in 0..calls_a {
                a.invoke("echo", &payload(i128::from(k))).unwrap();
            }
        })
    };
    let tb = {
        let b = b.clone();
        std::thread::spawn(move || {
            for k in 0..calls_b {
                b.invoke("echo", &payload(i128::from(k))).unwrap();
            }
        })
    };
    ta.join().unwrap();
    tb.join().unwrap();

    assert_eq!(a.metrics().snapshot().requests, calls_a);
    assert_eq!(b.metrics().snapshot().requests, calls_b);
    assert_eq!(
        a.metrics().client_histogram("echo").snapshot().count(),
        calls_a
    );
    assert_eq!(
        b.metrics().client_histogram("echo").snapshot().count(),
        calls_b
    );
    // Server-side dispatch histograms are just as disjoint.
    assert_eq!(
        server_a
            .metrics()
            .server_histogram("echo")
            .snapshot()
            .count(),
        calls_a
    );
    assert_eq!(
        server_b
            .metrics()
            .server_histogram("echo")
            .snapshot()
            .count(),
        calls_b
    );
    // And resetting one node cannot disturb the other.
    a.metrics().reset();
    assert_eq!(a.metrics().snapshot().requests, 0);
    assert_eq!(b.metrics().snapshot().requests, calls_b);
    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn hedged_call_keeps_one_trace_id_and_marks_the_winner() {
    // One endpoint answers in 300 ms, the other instantly; a 10 ms
    // hedge races a duplicate. The logical call must show ONE trace id
    // with TWO client attempt span ids under it, winner flagged.
    let (slow_d, ops) = echo_service(Duration::from_millis(300));
    let (fast_d, _) = echo_service(Duration::ZERO);
    let mut slow = TcpServer::bind("127.0.0.1:0", slow_d).unwrap();
    let mut fast = TcpServer::bind("127.0.0.1:0", fast_d).unwrap();

    let pool = Arc::new(
        ConnectionPool::builder(vec![slow.addr(), fast.addr()])
            .with_slots(1)
            .build()
            .unwrap(),
    );
    pool.metrics().set_tracing(true);
    let remote = RemoteRef::new(pool.clone(), b"obj".to_vec(), ops, Endian::Little)
        .with_options(CallOptions::new().with_hedge(HedgePolicy::After(Duration::from_millis(10))));

    // Round-robin parks one primary on the slow endpoint; run a couple
    // of calls so at least one hedges.
    for k in 0..2 {
        assert_eq!(remote.invoke("echo", &payload(k)).unwrap(), payload(k));
    }
    assert!(
        pool.metrics().snapshot().hedges_won > 0,
        "a hedge must win against a 300 ms primary"
    );

    // The losing (slow) attempt records its span only when the slow
    // server finally answers — wait for both attempts of some trace.
    let deadline = Instant::now() + Duration::from_secs(5);
    let hedged = loop {
        let spans = pool.metrics().spans().snapshot();
        let mut by_trace: HashMap<u128, Vec<_>> = HashMap::new();
        for s in spans {
            if s.kind == SpanKind::Client && !s.endpoint.is_empty() {
                by_trace.entry(s.trace_id).or_default().push(s);
            }
        }
        if let Some((_, attempts)) = by_trace.into_iter().find(|(_, a)| a.len() >= 2) {
            break attempts;
        }
        assert!(
            Instant::now() < deadline,
            "no trace accumulated two attempt spans"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(hedged.len(), 2, "primary + hedge duplicate");
    assert_ne!(hedged[0].span_id, hedged[1].span_id, "distinct span ids");
    assert_ne!(hedged[0].endpoint, hedged[1].endpoint, "distinct endpoints");
    assert_eq!(
        hedged.iter().filter(|s| s.winner).count(),
        1,
        "exactly one attempt won the race"
    );
    let winner = hedged.iter().find(|s| s.winner).unwrap();
    assert_eq!(
        winner.endpoint,
        fast.addr().to_string(),
        "the fast endpoint won"
    );
    // The root client span for the same logical call shares the trace.
    let trace_id = hedged[0].trace_id;
    let spans = pool.metrics().spans().snapshot();
    assert!(
        spans
            .iter()
            .any(|s| s.trace_id == trace_id && s.endpoint.is_empty()),
        "the logical-call root span carries the same trace id"
    );
    // And the dispatch on the winning server joined the same trace.
    assert!(
        fast.metrics()
            .spans()
            .snapshot()
            .iter()
            .any(|s| s.kind == SpanKind::Server && s.trace_id == trace_id),
        "the server span propagated the client's trace id"
    );
    slow.shutdown();
    fast.shutdown();
}

#[test]
fn retries_stay_inside_one_trace() {
    // A connection that fails the first exchange, then delegates. It
    // forwards the dispatcher's registry, so client and server spans
    // land in one log we can join.
    struct Flaky {
        inner: InMemoryConnection,
        failed: std::sync::atomic::AtomicBool,
    }
    impl Connection for Flaky {
        fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
            if !self.failed.swap(true, std::sync::atomic::Ordering::SeqCst) {
                return Err(RuntimeError::Transport("injected failure".into()));
            }
            self.inner.call(msg)
        }
        fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
            self.inner.metrics()
        }
    }

    let (d, ops) = echo_service(Duration::ZERO);
    let registry = Arc::clone(d.metrics());
    registry.set_tracing(true);
    let flaky = Flaky {
        inner: InMemoryConnection::new(d),
        failed: std::sync::atomic::AtomicBool::new(false),
    };
    let remote = RemoteRef::new(Arc::new(flaky), b"obj".to_vec(), ops, Endian::Little)
        .with_options(CallOptions::new().with_retry(RetryPolicy::retries(3)));
    assert_eq!(remote.invoke("echo", &payload(9)).unwrap(), payload(9));
    assert_eq!(remote.metrics().snapshot().retries, 1);

    let spans = registry.spans().snapshot();
    let roots: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Client)
        .collect();
    let servers: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Server)
        .collect();
    assert_eq!(roots.len(), 1, "one logical call, one client root span");
    assert_eq!(
        servers.len(),
        1,
        "only the retried attempt reached dispatch"
    );
    assert_eq!(
        roots[0].trace_id, servers[0].trace_id,
        "the retry reused the call's trace id"
    );
    // The server span hangs off the per-attempt child context, not the
    // root itself.
    assert_ne!(servers[0].parent_span_id, 0);
    assert_ne!(servers[0].parent_span_id, roots[0].span_id);
}

#[test]
fn prometheus_endpoint_is_well_formed_and_monotonic() {
    let (d, ops) = echo_service(Duration::ZERO);
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
    let pool = Arc::new(ConnectionPool::connect(server.addr(), 2).unwrap());
    let remote = RemoteRef::new(pool, b"obj".to_vec(), ops, Endian::Little);
    for k in 0..5 {
        remote.invoke("echo", &payload(k)).unwrap();
    }

    // Counter families must be unique and every sample line parseable.
    let parse = |text: &str| -> (Vec<String>, HashMap<String, f64>) {
        let mut families = Vec::new();
        let mut counters = HashMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().unwrap().to_string();
                let kind = it.next().unwrap();
                assert!(
                    matches!(kind, "counter" | "gauge" | "summary"),
                    "unknown family kind in {line:?}"
                );
                if kind == "counter" {
                    counters.insert(name.clone(), f64::NAN);
                }
                families.push(name);
            } else if !line.is_empty() {
                let (name, value) = line.rsplit_once(' ').expect("SAMPLE VALUE");
                let value: f64 = value.parse().expect("numeric sample");
                if let Some(v) = counters.get_mut(name) {
                    *v = value;
                }
            }
        }
        (families, counters)
    };
    let first = scrape(&server, "/metrics");
    let (families, counters1) = parse(&first);
    let mut unique = families.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), families.len(), "duplicate metric family");
    assert!(
        families.iter().any(|f| f == "mockingbird_requests_total"),
        "counter families exported"
    );
    // The mesh naming layer's counters ride the same scrape.
    for mesh_family in [
        "mockingbird_mesh_members_seen_total",
        "mockingbird_mesh_gossip_rounds_total",
        "mockingbird_mesh_resolutions_total",
        "mockingbird_mesh_failovers_total",
        "mockingbird_mesh_evictions_total",
    ] {
        assert!(
            families.iter().any(|f| f == mesh_family),
            "missing mesh family {mesh_family}"
        );
    }
    // So do the overload-resilience signals: the three shed/refusal
    // counters and the adaptive admission-limit gauge.
    for overload_family in [
        "mockingbird_deadline_expired_server_total",
        "mockingbird_retry_budget_exhausted_total",
        "mockingbird_brownout_sheds_total",
        "mockingbird_admission_limit",
    ] {
        assert!(
            families.iter().any(|f| f == overload_family),
            "missing overload family {overload_family}"
        );
    }

    // More traffic, then a second scrape: counters never go backwards.
    for k in 0..5 {
        remote.invoke("echo", &payload(100 + k)).unwrap();
    }
    let second = scrape(&server, "/metrics");
    let (_, counters2) = parse(&second);
    assert_eq!(counters1.len(), counters2.len());
    for (name, v1) in &counters1 {
        let v2 = counters2[name];
        assert!(v2 >= *v1, "counter {name} went backwards: {v1} -> {v2}");
    }
    assert!(
        counters2["mockingbird_bytes_received_total"]
            > counters1["mockingbird_bytes_received_total"],
        "the second burst moved the server's byte counters"
    );
    // The per-op dispatch summary counted both bursts.
    let served = second
        .lines()
        .find_map(|l| {
            l.strip_prefix(
                "mockingbird_op_latency_microseconds_count{side=\"server\",op=\"echo\"} ",
            )
        })
        .expect("server-side echo summary exported");
    assert!(served.parse::<u64>().unwrap() >= 10);

    // The JSON snapshot serves the same numbers for programmatic use.
    let json = scrape(&server, "/metrics.json");
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"counters\""));
    assert!(json.contains("\"server_ops\""));
    assert!(json.contains("\"echo\""));

    // Unknown paths 404 without wedging the listener.
    let miss = scrape(&server, "/nope");
    assert!(miss.contains("not found"));
    server.shutdown();
}
