//! E3: the collaboration framework study (paper §5) over a real wire.
//!
//! 21 message types declared as Java classes, send/receive stubs, and a
//! replicated-object update exchange between two sites over TCP — "it
//! supports messaging as well as remote invocation gracefully".

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mockingbird_rng::StdRng;

use mockingbird::corpus::collab::{collaboration, APP_CLASSES, MESSAGE_TYPES};
use mockingbird::corpus::sample_value;
use mockingbird::runtime::transport::TcpConnection;
use mockingbird::runtime::{Node, RemoteRef, TcpServer, WireOp};
use mockingbird::stubgen::MessagingStubs;
use mockingbird::values::mvalue::typecheck;
use mockingbird::values::{Endian, MValue};
use mockingbird::Session;

fn message_session() -> Session {
    let corpus = collaboration();
    let mut s = Session::new();
    for d in corpus.java.iter() {
        s.universe_mut().insert(d.clone()).unwrap();
    }
    s.annotate(&corpus.script).unwrap();
    s
}

#[test]
fn corpus_shape_matches_the_paper() {
    assert_eq!(MESSAGE_TYPES.len(), 21, "the 21 message types");
    assert_eq!(APP_CLASSES.len(), 22, "the 22 application classes");
}

#[test]
fn every_message_type_round_trips_the_wire() {
    let mut s = message_session();
    let mut rng = StdRng::seed_from_u64(99);
    for m in MESSAGE_TYPES {
        let ty = s.mtype(m).unwrap();
        let v = sample_value(s.graph(), ty, &mut rng, 4);
        typecheck(s.graph(), ty, &v).unwrap();
        for endian in [Endian::Little, Endian::Big] {
            let mut w = mockingbird::wire::CdrWriter::new(endian);
            w.put_value(s.graph(), ty, &v).unwrap();
            let bytes = w.into_bytes();
            let mut r = mockingbird::wire::CdrReader::new(&bytes, endian);
            assert_eq!(r.get_value(s.graph(), ty).unwrap(), v, "{m} via {endian:?}");
        }
        // The self-describing MBP format carries them too.
        let enc = mockingbird::wire::mbp::encode(&v);
        assert_eq!(
            mockingbird::wire::mbp::decode(&enc).unwrap(),
            v,
            "{m} via MBP"
        );
    }
}

#[test]
fn two_sites_exchange_updates_over_tcp() {
    let mut s = message_session();
    let mut ops: HashMap<String, WireOp> = HashMap::new();
    let graph = Arc::new(s.graph().clone());
    // Pre-lower all message types, then share one graph snapshot.
    let mut tys = HashMap::new();
    for m in MESSAGE_TYPES {
        tys.insert(m, s.mtype(m).unwrap());
    }
    let graph = {
        let _ = graph;
        Arc::new(s.graph().clone())
    };
    for m in MESSAGE_TYPES {
        ops.insert(m.to_string(), WireOp::new(graph.clone(), tys[m], tys[m]));
    }

    // Receiving site.
    let received: Arc<Mutex<Vec<(String, MValue)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handlers: HashMap<String, Arc<dyn Fn(MValue) + Send + Sync>> = HashMap::new();
    for m in MESSAGE_TYPES {
        let sink = received.clone();
        let name = m.to_string();
        handlers.insert(
            m.to_string(),
            Arc::new(move |v| sink.lock().unwrap().push((name.clone(), v))),
        );
    }
    let site_b = Node::new("b");
    site_b.register_object(
        b"collab".to_vec(),
        MessagingStubs::receive_servant(handlers),
        ops.clone(),
    );
    let mut server = TcpServer::bind("127.0.0.1:0", site_b.dispatcher()).unwrap();

    // Sending site: one sampled value per message type.
    let conn = Arc::new(TcpConnection::connect(server.addr()).unwrap());
    let remote = RemoteRef::new(conn, b"collab".to_vec(), ops, Endian::Little);
    let mut rng = StdRng::seed_from_u64(7);
    let mut sent = Vec::new();
    for m in MESSAGE_TYPES {
        let v = sample_value(&graph, tys[m], &mut rng, 3);
        remote.send(m, &v).unwrap();
        sent.push((m.to_string(), v));
    }

    // Oneway messages race the assertion; wait for delivery.
    for _ in 0..200 {
        if received.lock().unwrap().len() >= sent.len() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let got = received.lock().unwrap();
    assert_eq!(got.len(), sent.len(), "all 21 messages delivered");
    // TCP preserves order on one connection; payloads survive intact.
    for ((sm, sv), (gm, gv)) in sent.iter().zip(got.iter()) {
        assert_eq!(sm, gm);
        assert_eq!(sv, gv, "{sm} payload survives the wire");
    }
    drop(got);
    server.shutdown();
}

#[test]
fn unknown_message_types_are_refused_by_the_receiver() {
    let s = {
        let mut s = message_session();
        let _ = s.mtype("JoinSession").unwrap();
        s
    };
    let graph = Arc::new(s.graph().clone());
    let mut handlers: HashMap<String, Arc<dyn Fn(MValue) + Send + Sync>> = HashMap::new();
    handlers.insert("JoinSession".to_string(), Arc::new(|_| {}));
    let servant = MessagingStubs::receive_servant(handlers);
    assert!(servant.invoke("NotAMessage", MValue::Unit).is_err());
    let _ = graph;
}
