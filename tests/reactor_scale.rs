//! Connection-lifecycle soak tests for the reactor transport.
//!
//! The reactor's whole point is that connections are table slots, not
//! threads: churning thousands of client connections must leave the
//! process thread count flat and the server's slot table empty. These
//! tests are the regression net for the two lifecycle leaks the
//! thread-per-connection model hid — JoinHandles accumulating forever
//! in `conn_threads`, and reader threads lingering per client.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mockingbird::mtype::{IntRange, MtypeGraph};
use mockingbird::runtime::{
    Connection, Dispatcher, MultiplexedConnection, RuntimeError, Servant, TcpServer, WireOp,
    WireServant,
};
use mockingbird::values::{Endian, MValue};
use mockingbird::wire::{CdrWriter, Message, MessageKind, ReplyStatus};

fn echo_dispatcher() -> (
    Arc<Dispatcher>,
    Arc<MtypeGraph>,
    mockingbird::mtype::MtypeId,
) {
    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), WireOp::new(graph.clone(), rec, rec));
    let d = Arc::new(Dispatcher::new());
    d.register(b"echo".to_vec(), WireServant::new(servant, ops));
    (d, graph, rec)
}

fn echo_call(
    conn: &dyn Connection,
    graph: &MtypeGraph,
    rec: mockingbird::mtype::MtypeId,
    id: u32,
    v: i64,
) -> Result<(), RuntimeError> {
    let mut w = CdrWriter::new(Endian::Little);
    w.put_value(graph, rec, &MValue::Record(vec![MValue::Int(v as i128)]))
        .unwrap();
    let req = Message::request(
        id,
        true,
        b"echo".to_vec(),
        "echo",
        Endian::Little,
        w.into_bytes(),
    );
    let reply = conn.call(&req)?.expect("two-way call has a reply");
    let MessageKind::Reply { status, .. } = reply.kind else {
        panic!("expected a reply frame");
    };
    assert_eq!(status, ReplyStatus::NoException);
    Ok(())
}

/// The process's live thread count, from `/proc/self/status` on Linux.
/// Elsewhere returns `None` and the thread-flatness assertion is
/// skipped (the slot-count assertion still runs everywhere).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
}

#[test]
fn churn_soak_holds_threads_and_slots_flat() {
    let (d, graph, rec) = echo_dispatcher();
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
    let addr = server.addr();

    // Warm up: the client reactor thread, the server worker pool, and
    // the lazily-spawned runtime threads all exist after one exchange.
    {
        let conn = MultiplexedConnection::connect(addr).unwrap();
        echo_call(&conn, &graph, rec, 1, 1).unwrap();
    }
    let baseline_threads = thread_count();

    // Churn: open, call, close — 5000 times. Every iteration must
    // fully release its connection on both sides.
    const CHURN: u32 = 5_000;
    let started = Instant::now();
    for k in 0..CHURN {
        let conn = MultiplexedConnection::connect(addr).unwrap();
        echo_call(&conn, &graph, rec, k, i64::from(k)).unwrap();
        drop(conn);
    }
    let elapsed = started.elapsed();
    println!("churned {CHURN} connections in {elapsed:?}");

    // Threads: flat against the post-warmup baseline. The reactor adds
    // zero threads per connection; a small tolerance absorbs unrelated
    // runtime threads coming or going.
    if let (Some(before), Some(after)) = (baseline_threads, thread_count()) {
        assert!(
            after <= before + 4,
            "thread count grew under churn: {before} -> {after}"
        );
    }

    // Slots: the server prunes a connection the moment it sees the
    // close; poll briefly rather than racing the reactor's sweep.
    let mut open = server.open_connections();
    for _ in 0..200 {
        if open == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        open = server.open_connections();
    }
    assert_eq!(open, 0, "server slot table returned to empty after churn");
    server.shutdown();
}

#[test]
fn many_concurrent_connections_on_one_reactor() {
    let (d, graph, rec) = echo_dispatcher();
    let mut server = TcpServer::bind("127.0.0.1:0", d).unwrap();
    let addr = server.addr();

    // Hold a few hundred connections open at once — all on one client
    // reactor thread and one server reactor thread — and verify every
    // one still does a correct round trip.
    const CONNS: usize = 256;
    let conns: Vec<MultiplexedConnection> = (0..CONNS)
        .map(|_| MultiplexedConnection::connect(addr).unwrap())
        .collect();
    // The server sees every connection as a live slot.
    let mut open = server.open_connections();
    for _ in 0..200 {
        if open >= CONNS {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        open = server.open_connections();
    }
    assert_eq!(open, CONNS, "every connection occupies one slot");

    for (k, conn) in conns.iter().enumerate() {
        echo_call(conn, &graph, rec, k as u32, k as i64).unwrap();
    }

    drop(conns);
    let mut open = server.open_connections();
    for _ in 0..200 {
        if open == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        open = server.open_connections();
    }
    assert_eq!(open, 0, "all slots pruned after the batch close");
    server.shutdown();
}
