//! T1: Table 1 of the paper — the Mtype inventory.
//!
//! | Mtype     | Description                                            |
//! |-----------|--------------------------------------------------------|
//! | Character | Corresponds to character types, e.g. char.             |
//! | Integer   | Corresponds to integral types, e.g. int.               |
//! | Real      | Corresponds to floating point types, e.g. float.       |
//! | Unit      | Corresponds to void or null types.                     |
//! | Record    | Corresponds to aggregates, e.g struct.                 |
//! | Choice    | Corresponds to disjoint unions (variants), e.g union,  |
//! |           | and other places where alternatives arise.             |
//! | Recursive | Corresponds to types defined in terms of themselves.   |
//! | Port      | Used to implement functions, interfaces, etc.          |

use mockingbird::mtype::{IntRange, MtypeGraph, MtypeKind, RealPrecision, Repertoire};

/// One representative node per Table-1 row.
fn representatives(g: &mut MtypeGraph) -> Vec<mockingbird::mtype::MtypeId> {
    let ch = g.character(Repertoire::Latin1);
    let int = g.integer(IntRange::signed_bits(32));
    let real = g.real(RealPrecision::SINGLE);
    let unit = g.unit();
    let record = g.record(vec![int, real]);
    let choice = g.choice(vec![int, real]);
    let recursive = g.list_of(real);
    let port = g.port(record);
    vec![ch, int, real, unit, record, choice, recursive, port]
}

#[test]
fn the_eight_kinds_exist_with_their_table_1_descriptions() {
    let mut g = MtypeGraph::new();
    let reps = representatives(&mut g);
    let expected: [(&str, &str); 8] = [
        ("Character", "Corresponds to character types, e.g. char."),
        ("Integer", "Corresponds to integral types, e.g. int."),
        ("Real", "Corresponds to floating point types, e.g. float."),
        ("Unit", "Corresponds to void or null types."),
        ("Record", "Corresponds to aggregates, e.g. struct."),
        (
            "Choice",
            "Corresponds to disjoint unions (variants), e.g. union, \
             and other places where alternatives arise.",
        ),
        (
            "Recursive",
            "Corresponds to types defined in terms of themselves.",
        ),
        ("Port", "Used to implement functions, interfaces, etc."),
    ];
    assert_eq!(reps.len(), expected.len());
    for (id, (tag, desc)) in reps.iter().zip(expected) {
        let kind = g.kind(*id);
        assert_eq!(kind.tag(), tag);
        assert_eq!(kind.description(), desc);
    }
}

#[test]
fn table_order_constant_matches_the_paper() {
    assert_eq!(
        mockingbird::mtype::kind::TABLE1_TAGS,
        [
            "Character",
            "Integer",
            "Real",
            "Unit",
            "Record",
            "Choice",
            "Recursive",
            "Port"
        ]
    );
}

#[test]
fn parameterisation_matches_section_3_1() {
    // Integer Mtypes are "parameterized by range": a Java short.
    let mut g = MtypeGraph::new();
    let short = g.integer(IntRange::signed_bits(16));
    let MtypeKind::Integer(r) = g.kind(short) else {
        panic!()
    };
    assert_eq!(r.lo, -(1 << 15));
    assert_eq!(r.hi, (1 << 15) - 1);
    // Character Mtypes "parameterized by their glyph repertoires".
    let c = g.character(Repertoire::Unicode);
    assert!(matches!(
        g.kind(c),
        MtypeKind::Character(Repertoire::Unicode)
    ));
    // Real Mtypes "distinguished by their precision and exponent".
    let f = g.real(RealPrecision::SINGLE);
    let MtypeKind::Real(p) = g.kind(f) else {
        panic!()
    };
    assert_eq!((p.mantissa_bits, p.exponent_bits), (24, 8));
}

#[test]
fn the_dynamic_extension_is_a_ninth_kind() {
    // §6: "we support a dynamic type construct of our own which is
    // similar to Any".
    let mut g = MtypeGraph::new();
    let d = g.dynamic();
    assert_eq!(g.kind(d).tag(), "Dynamic");
    assert!(g.kind(d).description().contains("Any"));
}
